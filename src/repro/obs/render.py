"""ASCII renderers for observability artifacts (the ``mm-report`` view).

Everything renders to plain monospaced text, same as the paper-artifact
reports in :mod:`repro.measure.report` — greppable, diffable, and
pasteable into terminals, CI logs, and bug reports.

* :func:`ascii_timeseries` — a step plot of one ``(time, value)`` series.
* :func:`ascii_waterfall` — per-resource phase bars (DNS / connect / TLS
  / send / TTFB / download / compute), one row per resource.
* :func:`summary_table` / :func:`render_capture` / :func:`render_artifact`
  — the composed report.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.measure.report import format_table

__all__ = [
    "ascii_curve",
    "ascii_timeseries",
    "ascii_waterfall",
    "render_artifact",
    "render_capture",
    "summary_table",
]

#: Waterfall phase glyphs, in the order phases occur within a fetch.
PHASE_GLYPHS = (
    ("dns", "D"),
    ("connect", "C"),
    ("tls", "T"),
    ("send_wait", "="),
    ("ttfb", "-"),
    ("download", "#"),
    ("compute", "+"),
)


def _step_value(points: Sequence[Sequence[float]], t: float) -> float:
    """Value of a step series at time ``t`` (last point at or before)."""
    value = points[0][1]
    for time, v in points:
        if time > t:
            break
        value = v
    return value


def ascii_timeseries(
    points: Sequence[Sequence[float]],
    width: int = 64,
    height: int = 12,
    title: Optional[str] = None,
    unit: str = "",
) -> str:
    """Step plot of one time series as ASCII.

    Args:
        points: ``(time, value)`` pairs in non-decreasing time order.
        width / height: plot grid size.
        title: heading line.
        unit: y-axis unit label appended to the value labels.
    """
    if not points:
        raise ValueError("no points to plot")
    t_min = points[0][0]
    t_max = points[-1][0]
    if t_max <= t_min:
        t_max = t_min + 1e-9
    values = [v for __, v in points]
    v_min = min(values)
    v_max = max(values)
    if v_max <= v_min:
        v_max = v_min + 1.0
    grid = [[" "] * width for __ in range(height)]
    # One sample per column: the step value at the column's time. Columns
    # between points repeat the held value, which is exactly what a step
    # series means.
    for col in range(width):
        t = t_min + (t_max - t_min) * col / (width - 1 if width > 1 else 1)
        value = _step_value(points, t)
        row = int(round((1.0 - (value - v_min) / (v_max - v_min)) * (height - 1)))
        grid[row][col] = "*"
    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = max(len(f"{v_max:.6g}"), len(f"{v_min:.6g}"))
    for i, row_cells in enumerate(grid):
        if i == 0:
            label = f"{v_max:.6g}"
        elif i == height - 1:
            label = f"{v_min:.6g}"
        else:
            label = ""
        lines.append(f"{label.rjust(label_width)} |" + "".join(row_cells))
    lines.append(" " * label_width + " +" + "-" * width)
    left = f"{t_min:.3f}s"
    right = f"{t_max:.3f}s"
    pad = max(1, width - len(left) - len(right))
    lines.append(" " * (label_width + 2) + left + " " * pad + right)
    if unit:
        lines.append(" " * (label_width + 2) + f"[{unit}]")
    return "\n".join(lines)


def ascii_curve(
    points: Sequence[Sequence[float]],
    width: int = 64,
    height: int = 12,
    title: Optional[str] = None,
    x_label: str = "",
    y_label: str = "",
    mark: Optional[int] = None,
) -> str:
    """Line plot of an (x, y) curve as ASCII (generic axes).

    Unlike :func:`ascii_timeseries` (a *step* plot over virtual time),
    this renders measured points joined by linear interpolation — the
    capacity-curve view, where both axes are arbitrary quantities.

    Args:
        points: ``(x, y)`` pairs in non-decreasing x order (>= 2).
        width / height: plot grid size.
        title: heading line.
        x_label / y_label: axis labels (units included by the caller).
        mark: index of one point to highlight with ``K`` and a caption —
            the detected knee, typically.
    """
    if len(points) < 2:
        raise ValueError("need at least two points to plot a curve")
    xs = [float(x) for x, __ in points]
    ys = [float(y) for __, y in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if x_max <= x_min:
        x_max = x_min + 1e-9
    if y_max <= y_min:
        y_max = y_min + 1.0
    grid = [[" "] * width for __ in range(height)]

    def row_of(y: float) -> int:
        return int(round((1.0 - (y - y_min) / (y_max - y_min)) * (height - 1)))

    def col_of(x: float) -> int:
        return int(round((x - x_min) / (x_max - x_min) * (width - 1)))

    # One sample per column, linearly interpolated between measured
    # points, then the measured points themselves drawn on top.
    for col in range(width):
        x = x_min + (x_max - x_min) * col / (width - 1)
        for i in range(1, len(points)):
            if xs[i] >= x or i == len(points) - 1:
                x0, x1 = xs[i - 1], xs[i]
                y0, y1 = ys[i - 1], ys[i]
                frac = 0.0 if x1 <= x0 else min(1.0, max(0.0, (x - x0) / (x1 - x0)))
                grid[row_of(y0 + (y1 - y0) * frac)][col] = "."
                break
    for i, (x, y) in enumerate(zip(xs, ys)):
        glyph = "K" if mark is not None and i == mark else "*"
        grid[row_of(y)][col_of(x)] = glyph
    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = max(len(f"{y_max:.6g}"), len(f"{y_min:.6g}"))
    for i, row_cells in enumerate(grid):
        if i == 0:
            label = f"{y_max:.6g}"
        elif i == height - 1:
            label = f"{y_min:.6g}"
        else:
            label = ""
        lines.append(f"{label.rjust(label_width)} |" + "".join(row_cells))
    lines.append(" " * label_width + " +" + "-" * width)
    left = f"{x_min:.6g}"
    right = f"{x_max:.6g}"
    pad = max(1, width - len(left) - len(right))
    lines.append(" " * (label_width + 2) + left + " " * pad + right)
    captions = []
    if x_label or y_label:
        captions.append(
            f"[x: {x_label or '?'}  y: {y_label or '?'}]"
        )
    if mark is not None:
        captions.append(f"K = knee at x={xs[mark]:.6g}, y={ys[mark]:.6g}")
    if captions:
        lines.append(" " * (label_width + 2) + "  ".join(captions))
    return "\n".join(lines)


def _phase_segments(entry: Dict[str, object]) -> List[Tuple[str, float]]:
    """(glyph, duration) segments of one waterfall entry, in fetch order.

    The gap between discovery (plus any DNS charged to this resource)
    and issue is the scheduler/pool queue wait; it has no recorded phase
    of its own, so it renders as ``.`` to keep bars contiguous.
    """
    segments: List[Tuple[str, float]] = []
    dns = float(entry.get("dns", -1.0))
    if dns > 0.0:
        segments.append(("D", dns))
    issued = float(entry.get("issued", -1.0))
    if issued >= 0.0:
        queued = issued - float(entry["discovered"]) - max(dns, 0.0)
        if queued > 0.0:
            segments.append((".", queued))
    for phase, glyph in PHASE_GLYPHS:
        if phase == "dns":
            continue
        duration = float(entry.get(phase, -1.0))
        if duration > 0.0:
            segments.append((glyph, duration))
    return segments


def ascii_waterfall(
    entries: Sequence[Dict[str, object]],
    width: int = 64,
    max_rows: int = 40,
    title: Optional[str] = None,
) -> str:
    """Per-resource phase bars for one page load.

    Args:
        entries: waterfall entry records
            (:meth:`~repro.obs.waterfall.ResourceTiming.to_record` dicts).
        width: columns available for the time axis.
        max_rows: show at most this many resources (longest span kept
            implicitly by discovery order; a trailer notes the cut).
        title: heading line.

    Each row is one resource: leading blank space until the resource was
    discovered, then its phases — ``D`` DNS, ``.`` queued before issue,
    ``C`` connect, ``T`` TLS, ``=`` waiting to send, ``-`` waiting for
    first byte, ``#`` download, ``+`` compute. A failed fetch renders
    ``x`` over its span.
    """
    if not entries:
        raise ValueError("no waterfall entries to render")
    shown = list(entries[:max_rows])
    t0 = min(float(e["discovered"]) for e in shown)
    t_end = t0
    for e in shown:
        finished = float(e.get("finished", -1.0))
        t_end = max(t_end, finished if finished >= 0.0 else float(e["discovered"]))
    span = max(t_end - t0, 1e-9)
    scale = (width - 1) / span

    def col(t: float) -> int:
        return max(0, min(width - 1, int(round((t - t0) * scale))))

    name_width = min(40, max(len(_short_url(e)) for e in shown))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        f"{'resource'.ljust(name_width)} |{'0'.ljust(width - len(_fmt_ms(span)))}"
        f"{_fmt_ms(span)}"
    )
    lines.append(f"{'-' * name_width}-+{'-' * width}")
    for entry in shown:
        row = [" "] * width
        discovered = float(entry["discovered"])
        finished = float(entry.get("finished", -1.0))
        if entry.get("failed"):
            end = finished if finished >= 0.0 else t_end
            for c in range(col(discovered), col(end) + 1):
                row[c] = "x"
        else:
            cursor = discovered
            for glyph, duration in _phase_segments(entry):
                start_col = col(cursor)
                cursor += duration
                for c in range(start_col, col(cursor) + 1):
                    row[c] = glyph
            if finished >= 0.0 and col(finished) < width:
                # Make sure even sub-column fetches leave a mark.
                if row[col(finished)] == " ":
                    row[col(finished)] = "#"
        name = _short_url(entry).ljust(name_width)[:name_width]
        lines.append(f"{name} |{''.join(row)}")
    if len(entries) > max_rows:
        lines.append(f"... ({len(entries) - max_rows} more resources)")
    lines.append(
        "phases: D dns  . queued  C connect  T tls  = send-wait  - ttfb  "
        "# download  + compute  x failed"
    )
    return "\n".join(lines)


def _short_url(entry: Dict[str, object]) -> str:
    url = str(entry.get("url", "?"))
    for prefix in ("https://", "http://"):
        if url.startswith(prefix):
            url = url[len(prefix):]
            break
    return url if len(url) <= 40 else url[:37] + "..."


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1000:.0f}ms"


def summary_table(artifact) -> str:
    """Counters, gauges, and histogram summaries as one text table."""
    rows: List[List[str]] = []
    for name, value in sorted(artifact.counters.items()):
        rows.append([name, "counter", str(value)])
    for name, gauge in sorted(artifact.gauges.items()):
        at = gauge.get("time")
        suffix = f" @{at:.3f}s" if isinstance(at, (int, float)) else ""
        rows.append([name, "gauge", f"{gauge.get('value')}{suffix}"])
    for name, hist in sorted(artifact.histograms.items()):
        summary = hist.get("summary", {})
        if summary.get("count"):
            cell = (
                f"n={summary['count']:.0f} mean={summary['mean']:.6g} "
                f"p95={summary['p95']:.6g}"
            )
        else:
            cell = "n=0"
        rows.append([name, "histogram", cell])
    for name, points in sorted(artifact.series.items()):
        if points:
            values = [p[1] for p in points]
            cell = (
                f"n={len(points)} last={values[-1]:.6g} "
                f"max={max(values):.6g}"
            )
        else:
            cell = "n=0"
        rows.append([name, "series", cell])
    for name, waterfall in sorted(artifact.waterfalls.items()):
        rows.append([name, "waterfall", f"{len(waterfall.entries)} resources"])
    for name, capture in sorted(artifact.captures.items()):
        rows.append([
            name, "capture",
            f"seen={capture.get('total_seen')} "
            f"retained={len(capture.get('packets', []))}",
        ])
    if not rows:
        return "(empty artifact)"
    return format_table(["path", "kind", "value"], rows, title="instruments")


def render_capture(capture: Dict[str, object], limit: int = 20) -> str:
    """tcpdump-style text plus per-protocol totals for a capture record."""
    lines = [
        f"capture {capture.get('name', '?')!r} in namespace "
        f"{capture.get('namespace', '?')!r}: "
        f"{capture.get('total_seen')} packets seen, "
        f"{capture.get('total_bytes')} bytes, "
        f"{len(capture.get('packets', []))} retained "
        f"(cap {capture.get('max_packets')})"
    ]
    by_protocol = capture.get("by_protocol") or {}
    if by_protocol:
        lines.append("  " + "  ".join(
            f"{proto}={count}" for proto, count in sorted(by_protocol.items())
        ))
    packets = capture.get("packets") or []
    for entry in packets[:limit]:
        time, src, sport, dst, dport, protocol, size, flags = entry
        flag_text = f" [{flags}]" if flags else ""
        lines.append(
            f"  {time:.6f} {protocol} {src}:{sport} > {dst}:{dport} "
            f"len {size}{flag_text}"
        )
    if len(packets) > limit:
        lines.append(f"  ... ({len(packets) - limit} more retained)")
    return "\n".join(lines)


def render_artifact(
    artifact,
    series: Optional[Sequence[str]] = None,
    width: int = 64,
    height: int = 12,
    waterfalls: bool = True,
    captures: bool = True,
) -> str:
    """The full ``mm-report render`` view of one artifact.

    Args:
        artifact: a loaded :class:`~repro.obs.artifact.Artifact`.
        series: substrings selecting which series to plot (default: all
            non-empty series).
        width / height: plot dimensions.
        waterfalls / captures: include those sections.
    """
    sections: List[str] = []
    meta = {k: v for k, v in artifact.meta.items() if k != "version"}
    if meta:
        sections.append("meta: " + "  ".join(
            f"{k}={v}" for k, v in sorted(meta.items())
        ))
    sections.append(summary_table(artifact))
    for name in sorted(artifact.series):
        points = artifact.series[name]
        if not points:
            continue
        if series is not None and not any(s in name for s in series):
            continue
        sections.append(ascii_timeseries(
            points, width=width, height=height, title=name
        ))
    if waterfalls:
        for name in sorted(artifact.waterfalls):
            waterfall = artifact.waterfalls[name]
            if waterfall.entries:
                sections.append(ascii_waterfall(
                    waterfall.to_records(), width=width, title=name
                ))
    if captures:
        for name in sorted(artifact.captures):
            sections.append(render_capture(artifact.captures[name]))
    return "\n\n".join(sections)
