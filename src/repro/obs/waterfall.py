"""Per-load resource waterfalls (HAR-adjacent phase timelines).

The browser engine records one :class:`ResourceTiming` per fetched
resource: when it was discovered, when its request was handed to a
connection, and how long each phase took — DNS resolution, TCP connect,
TLS handshake, waiting to send, time to first byte, download, and
post-download compute (parse). Phase conventions follow HAR: DNS,
connect and TLS are charged to the resource that *triggered* them; a
resource reusing a warm connection shows zeros there.

All times are virtual seconds. Entries are mutable while a load is in
flight (the engine fills phases in as they complete) and plain data
afterwards, so waterfalls pickle across trial processes and serialise
into the JSONL artifact unchanged.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

__all__ = ["ResourceTiming", "Waterfall"]


@dataclass
class ResourceTiming:
    """Phase timeline of one resource fetch (virtual seconds).

    ``discovered`` and ``finished`` are absolute virtual times; the
    phase fields are durations. ``-1.0`` in a duration means "not
    applicable / never happened" (e.g. TLS on a plain connection, or a
    fetch that failed before reaching that phase).
    """

    url: str
    kind: str
    discovered: float
    issued: float = -1.0
    dns: float = -1.0
    connect: float = -1.0
    tls: float = -1.0
    send_wait: float = -1.0
    ttfb: float = -1.0
    download: float = -1.0
    compute: float = -1.0
    finished: float = -1.0
    size: int = 0
    failed: bool = False
    error: str = ""

    def to_record(self) -> Dict[str, object]:
        """Plain-dict form for JSONL export."""
        return asdict(self)

    @classmethod
    def from_record(cls, record: Dict[str, object]) -> "ResourceTiming":
        """Inverse of :meth:`to_record`."""
        return cls(**record)  # type: ignore[arg-type]

    @property
    def total(self) -> Optional[float]:
        """Discovery-to-finish wall span, if the fetch finished."""
        if self.finished < 0.0:
            return None
        return self.finished - self.discovered


class Waterfall:
    """All resource timelines of one page load, in discovery order."""

    __slots__ = ("name", "entries")

    def __init__(self, name: str) -> None:
        self.name = name
        self.entries: List[ResourceTiming] = []

    def start(self, url: str, kind: str, discovered: float) -> ResourceTiming:
        """Open a new entry (the engine fills the phases in later)."""
        entry = ResourceTiming(url=url, kind=kind, discovered=discovered)
        self.entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def to_records(self) -> List[Dict[str, object]]:
        """Plain-data form for snapshots and JSONL export."""
        return [entry.to_record() for entry in self.entries]

    @classmethod
    def from_records(
        cls, name: str, records: List[Dict[str, object]]
    ) -> "Waterfall":
        """Rebuild a waterfall from exported records."""
        waterfall = cls(name)
        waterfall.entries = [
            ResourceTiming.from_record(record) for record in records
        ]
        return waterfall

    def __repr__(self) -> str:
        return f"<Waterfall {self.name} resources={len(self.entries)}>"
