"""The metrics registry: observer-owned state, keyed by component path.

One :class:`MetricsRegistry` belongs to one
:class:`~repro.sim.simulator.Simulator` (attach it with
``sim.use_metrics(registry)`` or the :meth:`MetricsRegistry.install`
shorthand). Instrumented components look the registry up at construction
time and hold direct handles to their instruments, so the per-event cost
of an *enabled* probe is an attribute check plus a list append, and a
disabled probe costs a single ``is None`` check at construction.

Everything in here is observer-domain: instruments are plain data
(picklable, JSON-serialisable) and never touch the simulation — no
scheduling, no queue mutation, no simulator writes. ``mm-lint`` rule
REP007 enforces that statically for this whole package.

Instrument kinds:

* :class:`Counter` — monotonically increasing integer (drops, bytes).
* :class:`Gauge` — last-written value with its virtual timestamp.
* :class:`Histogram` — a bag of observations with summary statistics.
* :class:`TimeSeries` — ``(virtual time, value)`` points appended at
  existing event boundaries (queue depth, cwnd, pool occupancy). A
  step-valued series recorded at every change point is *exact* — richer
  than any periodic sampler, and free of sampling events.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.waterfall import Waterfall

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TimeSeries",
]


class Counter:
    """A monotonically increasing integer instrument."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        """Increase by ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative add {amount!r}")
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """Last-written value plus the virtual time it was written."""

    __slots__ = ("name", "value", "time")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None
        self.time: Optional[float] = None

    def set(self, value: float, time: float) -> None:
        """Record the instantaneous value at virtual ``time``."""
        self.value = value
        self.time = time

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value} @{self.time}>"


class Histogram:
    """A bag of observations with the summary statistics reports need."""

    __slots__ = ("name", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        """Add one observation."""
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    def summary(self) -> Dict[str, float]:
        """count / mean / min / p50 / p95 / max of the observations."""
        if not self.values:
            return {"count": 0}
        from repro.measure.stats import Sample

        sample = Sample(self.values)
        return {
            "count": float(len(sample)),
            "mean": sample.mean,
            "min": sample.minimum,
            "p50": sample.percentile(50.0),
            "p95": sample.percentile(95.0),
            "max": sample.maximum,
        }

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count}>"


class TimeSeries:
    """``(virtual time, value)`` points, appended at existing events."""

    __slots__ = ("name", "points")

    def __init__(self, name: str) -> None:
        self.name = name
        self.points: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        """Append one point (times must arrive in non-decreasing order,
        which event-driven recording guarantees for free). Kept to a
        bare append: this runs on simulation hot paths."""
        self.points.append((time, value))

    def record_changed(self, time: float, value: float) -> None:
        """Append only if ``value`` differs from the last recorded one —
        the natural, lossless form for step functions (cwnd, RTO, queue
        depth held across delivery opportunities)."""
        points = self.points
        if not points or points[-1][1] != value:
            points.append((time, value))

    @property
    def last(self) -> Optional[float]:
        """Most recently recorded value."""
        return self.points[-1][1] if self.points else None

    def __len__(self) -> int:
        return len(self.points)

    def __repr__(self) -> str:
        return f"<TimeSeries {self.name} n={len(self.points)}>"


class MetricsRegistry:
    """All instruments of one simulated world, keyed by component path.

    Paths are dotted component names (``linkshell.uplink.queue_depth``,
    ``tcp.server.1.2.3.4:443-100.64.0.2:9000.cwnd``). Accessors create
    on first use and return the same instrument thereafter, so
    instrumentation sites need no registration ceremony.

    The registry is plain picklable data: per-trial registries cross the
    :class:`~repro.measure.parallel.ParallelRunner` process boundary
    intact and re-assemble with :meth:`merge_trials`.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.series: Dict[str, TimeSeries] = {}
        self.waterfalls: Dict[str, Waterfall] = {}

    # ------------------------------------------------------------------ #
    # attachment

    @classmethod
    def install(cls, sim) -> "MetricsRegistry":
        """Create a registry and attach it to ``sim``.

        Shorthand for ``registry = MetricsRegistry();
        sim.use_metrics(registry)``. Attach *before* building the world:
        components capture their probe handles at construction.
        """
        registry = cls()
        sim.use_metrics(registry)
        return registry

    # ------------------------------------------------------------------ #
    # instrument accessors (create on first use)

    def counter(self, name: str) -> Counter:
        """The counter at ``name`` (created on first access)."""
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge at ``name`` (created on first access)."""
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram at ``name`` (created on first access)."""
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name)
        return instrument

    def timeseries(self, name: str) -> TimeSeries:
        """The time series at ``name`` (created on first access)."""
        instrument = self.series.get(name)
        if instrument is None:
            instrument = self.series[name] = TimeSeries(name)
        return instrument

    def waterfall(self, name: str) -> Waterfall:
        """The waterfall at ``name`` (created on first access)."""
        instrument = self.waterfalls.get(name)
        if instrument is None:
            instrument = self.waterfalls[name] = Waterfall(name)
        return instrument

    # ------------------------------------------------------------------ #
    # inspection and export

    def __len__(self) -> int:
        return (
            len(self.counters) + len(self.gauges) + len(self.histograms)
            + len(self.series) + len(self.waterfalls)
        )

    def names(self) -> List[str]:
        """All instrument paths, sorted (deterministic export order)."""
        return sorted(
            list(self.counters) + list(self.gauges) + list(self.histograms)
            + list(self.series) + list(self.waterfalls)
        )

    def snapshot(self) -> Dict[str, object]:
        """A plain-data (JSON-serialisable) snapshot of every instrument."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self.counters.items())
            },
            "gauges": {
                name: {"value": g.value, "time": g.time}
                for name, g in sorted(self.gauges.items())
            },
            "histograms": {
                name: h.summary() for name, h in sorted(self.histograms.items())
            },
            "series": {
                name: [[t, v] for t, v in s.points]
                for name, s in sorted(self.series.items())
            },
            "waterfalls": {
                name: w.to_records()
                for name, w in sorted(self.waterfalls.items())
            },
        }

    # ------------------------------------------------------------------ #
    # trial re-assembly

    @classmethod
    def merge_trials(
        cls, registries: Iterable[Optional["MetricsRegistry"]]
    ) -> "MetricsRegistry":
        """Re-assemble per-trial registries into one, in trial order.

        Each trial's instruments are namespaced under ``trial<i>.`` so
        independent worlds never collide; a missing registry (trial run
        without instrumentation) contributes nothing but keeps its index.
        """
        merged = cls()
        for index, registry in enumerate(registries):
            if registry is None:
                continue
            prefix = f"trial{index}."
            for name, c in registry.counters.items():
                merged.counter(prefix + name).add(c.value)
            for name, g in registry.gauges.items():
                if g.value is not None and g.time is not None:
                    merged.gauge(prefix + name).set(g.value, g.time)
            for name, h in registry.histograms.items():
                merged.histogram(prefix + name).values.extend(h.values)
            for name, s in registry.series.items():
                merged.timeseries(prefix + name).points.extend(s.points)
            for name, w in registry.waterfalls.items():
                merged.waterfall(prefix + name).entries.extend(w.entries)
        return merged

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry counters={len(self.counters)} "
            f"gauges={len(self.gauges)} histograms={len(self.histograms)} "
            f"series={len(self.series)} waterfalls={len(self.waterfalls)}>"
        )
