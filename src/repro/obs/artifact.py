"""JSONL artifact export/import for observability data.

One artifact file is one run: a ``meta`` line followed by one line per
instrument, each a self-describing JSON object. JSONL (rather than one
JSON document) keeps artifacts appendable, streamable, and diffable —
two runs of the same seed produce byte-identical files, so artifacts can
be committed, uploaded from CI, and compared with ``diff``.

Line kinds::

    {"kind": "meta",      "version": 1, ...caller fields...}
    {"kind": "counter",   "name": ..., "value": ...}
    {"kind": "gauge",     "name": ..., "value": ..., "time": ...}
    {"kind": "histogram", "name": ..., "summary": {...}, "values": [...]}
    {"kind": "series",    "name": ..., "points": [[t, v], ...]}
    {"kind": "waterfall", "name": ..., "entries": [{...}, ...]}
    {"kind": "capture",   "name": ..., "packets": [...], "total_seen": ...}

``capture`` lines carry :class:`~repro.net.capture.PacketCapture`
traces (see :func:`capture_to_record`), giving the previously isolated
capture tap the same export path as every other probe.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import ReproError
from repro.fsutil import atomic_write_text
from repro.obs.registry import MetricsRegistry
from repro.obs.waterfall import Waterfall

__all__ = [
    "Artifact",
    "artifact_bytes",
    "capture_to_record",
    "read_artifact",
    "write_artifact",
]

#: Artifact schema version (bump on incompatible line-shape changes).
ARTIFACT_VERSION = 1


def capture_to_record(capture, name: str = "capture") -> Dict[str, object]:
    """Flatten a :class:`~repro.net.capture.PacketCapture` for export.

    Retains what the capture retained (its bounded trace) plus the
    counters that kept counting past the bound, so overflow is visible
    in the artifact: ``total_seen`` may exceed ``len(packets)``.
    """
    return {
        "kind": "capture",
        "name": name,
        "namespace": capture.namespace.name,
        "max_packets": capture.max_packets,
        "total_seen": capture.total_seen,
        "total_bytes": capture.total_bytes,
        "by_protocol": dict(sorted(capture.by_protocol.items())),
        "packets": [list(entry) for entry in capture.packets],
    }


class Artifact:
    """A loaded observability artifact (the read-side counterpart of
    :func:`write_artifact`)."""

    def __init__(self) -> None:
        self.meta: Dict[str, object] = {}
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, Dict[str, object]] = {}
        self.histograms: Dict[str, Dict[str, object]] = {}
        self.series: Dict[str, List[List[float]]] = {}
        self.waterfalls: Dict[str, Waterfall] = {}
        self.captures: Dict[str, Dict[str, object]] = {}

    def series_points(self, name: str) -> List[List[float]]:
        """The points of one series.

        Raises:
            KeyError: with the available names, when ``name`` is absent.
        """
        try:
            return self.series[name]
        except KeyError:
            raise KeyError(
                f"no series {name!r} in artifact; available: "
                f"{', '.join(sorted(self.series)) or '(none)'}"
            ) from None

    def __repr__(self) -> str:
        return (
            f"<Artifact counters={len(self.counters)} "
            f"series={len(self.series)} waterfalls={len(self.waterfalls)} "
            f"captures={len(self.captures)}>"
        )


def artifact_bytes(
    registry: Optional[MetricsRegistry] = None,
    meta: Optional[Dict[str, object]] = None,
    captures: Optional[Dict[str, object]] = None,
) -> bytes:
    """The exact bytes :func:`write_artifact` would write.

    Split out so byte-identity checks (the determinism sanitizer's
    artifact check) compare serialisations without touching the
    filesystem — and cannot drift from the on-disk format.
    """
    lines: List[str] = []

    def emit(record: Dict[str, object]) -> None:
        lines.append(json.dumps(record, sort_keys=True, separators=(",", ":")))

    header: Dict[str, object] = {"kind": "meta", "version": ARTIFACT_VERSION}
    if meta:
        header.update(meta)
    emit(header)

    if registry is not None:
        for name, counter in sorted(registry.counters.items()):
            emit({"kind": "counter", "name": name, "value": counter.value})
        for name, gauge in sorted(registry.gauges.items()):
            emit({
                "kind": "gauge", "name": name,
                "value": gauge.value, "time": gauge.time,
            })
        for name, histogram in sorted(registry.histograms.items()):
            emit({
                "kind": "histogram", "name": name,
                "summary": histogram.summary(),
                "values": list(histogram.values),
            })
        for name, series in sorted(registry.series.items()):
            emit({
                "kind": "series", "name": name,
                "points": [[t, v] for t, v in series.points],
            })
        for name, waterfall in sorted(registry.waterfalls.items()):
            emit({
                "kind": "waterfall", "name": name,
                "entries": waterfall.to_records(),
            })

    if captures:
        for name, capture in sorted(captures.items()):
            if isinstance(capture, dict):
                record = dict(capture)
                record["kind"] = "capture"
                record["name"] = name
            else:
                record = capture_to_record(capture, name)
            emit(record)

    return ("\n".join(lines) + "\n").encode("utf-8")


def write_artifact(
    path: Union[str, Path],
    registry: Optional[MetricsRegistry] = None,
    meta: Optional[Dict[str, object]] = None,
    captures: Optional[Dict[str, object]] = None,
) -> Path:
    """Write one run's observability data as a JSONL artifact.

    Args:
        path: output file (parent directories are created).
        registry: the run's metrics registry (None writes meta/captures
            only).
        meta: extra fields for the ``meta`` line (experiment name, seed,
            scenario parameters — caller's choice; no wall-clock fields
            are added, so identical runs produce identical artifacts).
        captures: name -> :class:`~repro.net.capture.PacketCapture`
            instances (or pre-flattened records from
            :func:`capture_to_record`) to export alongside.

    Returns:
        The path written.
    """
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    # Atomic (temp + fsync + rename): a run killed mid-export leaves the
    # previous artifact intact rather than a torn JSONL that half-parses.
    atomic_write_text(
        out,
        artifact_bytes(registry, meta, captures).decode("utf-8"),
    )
    return out


def read_artifact(path: Union[str, Path]) -> Artifact:
    """Load a JSONL artifact written by :func:`write_artifact`.

    Raises:
        ReproError: on a malformed line or an unsupported version.
    """
    artifact = Artifact()
    text = Path(path).read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ReproError(
                f"{path}:{lineno}: not valid JSON: {exc}"
            ) from exc
        kind = record.get("kind")
        if kind == "meta":
            version = record.get("version")
            if version != ARTIFACT_VERSION:
                raise ReproError(
                    f"{path}:{lineno}: unsupported artifact version "
                    f"{version!r} (expected {ARTIFACT_VERSION})"
                )
            artifact.meta = {
                k: v for k, v in record.items() if k != "kind"
            }
        elif kind == "counter":
            artifact.counters[record["name"]] = record["value"]
        elif kind == "gauge":
            artifact.gauges[record["name"]] = {
                "value": record["value"], "time": record["time"],
            }
        elif kind == "histogram":
            artifact.histograms[record["name"]] = {
                "summary": record["summary"], "values": record["values"],
            }
        elif kind == "series":
            artifact.series[record["name"]] = record["points"]
        elif kind == "waterfall":
            artifact.waterfalls[record["name"]] = Waterfall.from_records(
                record["name"], record["entries"]
            )
        elif kind == "capture":
            artifact.captures[record["name"]] = {
                k: v for k, v in record.items() if k != "kind"
            }
        else:
            raise ReproError(
                f"{path}:{lineno}: unknown artifact line kind {kind!r}"
            )
    return artifact
