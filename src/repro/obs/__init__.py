"""repro.obs — deterministic observability for the simulated toolkit.

Every reproduced artifact used to emit only end-of-run page-load-time
samples; when a number drifted there was no way to see *why*. This
subsystem makes the emulator's internals archivable per run:

* :class:`~repro.obs.registry.MetricsRegistry` — counters, gauges,
  histograms, virtual-time series, and resource waterfalls keyed by
  component path (``linkshell.uplink.queue_depth``), attached
  per-:class:`~repro.sim.simulator.Simulator` via
  :meth:`~repro.sim.simulator.Simulator.use_metrics` so forked trials
  stay independent;
* probes instrumented into the link emulator, TCP, the HTTP server's
  worker pool, and the browser engine — all pull-based or fired on
  existing events, never scheduling work of their own;
* :mod:`~repro.obs.artifact` — JSONL export/import of a registry
  snapshot (plus :class:`~repro.net.capture.PacketCapture` traces);
* :mod:`~repro.obs.render` — ASCII time-series, waterfall, and summary
  renderers, exposed through the ``mm-report`` console script.

The contract is **zero observer effect**: with a registry attached, the
executed event stream is bit-identical to an uninstrumented run (probes
only read simulation state and append to observer-owned storage).
``mm-lint`` rule REP007 enforces this statically over this package, and
``python -m repro.analysis.sanitizer --obs-check`` enforces it at
runtime by digest comparison.

Attach the registry *before* building the simulated world — components
capture their probe handles at construction time::

    sim = Simulator(seed=0)
    registry = MetricsRegistry.install(sim)
    # ... build shells / browser, run ...
    write_artifact("run.jsonl", registry)
"""

from repro.obs.artifact import (
    Artifact,
    capture_to_record,
    read_artifact,
    write_artifact,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
)
from repro.obs.render import (
    ascii_timeseries,
    ascii_waterfall,
    render_artifact,
    render_capture,
    summary_table,
)
from repro.obs.waterfall import ResourceTiming, Waterfall

__all__ = [
    "Artifact",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ResourceTiming",
    "TimeSeries",
    "Waterfall",
    "ascii_timeseries",
    "ascii_waterfall",
    "capture_to_record",
    "read_artifact",
    "render_artifact",
    "render_capture",
    "summary_table",
    "write_artifact",
]
