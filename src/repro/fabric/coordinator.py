"""The fabric coordinator: shard, dispatch, merge — byte-identical.

:func:`run_fabric` is the distributed sibling of
:func:`~repro.measure.supervise.run_supervised`: the same sweep contract
(per-trial outcome taxonomy, bounded retry, checkpoint/resume journal),
executed by sharding trial indices across workers obtained from a
pluggable :class:`~repro.fabric.backend.FabricBackend`.

**The byte-identity guarantee.** Because trials are deterministic pure
functions of their index (DESIGN.md §6), *where* a trial runs cannot
change its result. The coordinator assigns shards round-robin
(``todo[k::shards]``), but merges outcomes purely by trial index — so
the :class:`~repro.measure.supervise.SweepResult` sample, the combined
event-stream digest, and the rewritten journal are byte-identical to a
serial ``run_supervised`` of the same sweep, for any shard count, any
backend, and any interleaving of worker completions. Tests assert this
literally (``tests/fabric/``) and CI re-proves it on every push.

**Failure model.** A worker that dies mid-shard (crash, SIGKILL, broken
transport) forfeits only its *unreported* trials: those are reassigned to
a fresh replacement worker up to ``worker_retries`` times, then recorded
as ``crashed`` — the same taxonomy ``run_supervised`` uses for a dead
pool worker. A stalled worker (no outcome within ``progress_deadline``
wall seconds) is killed by the coordinator's watchdog and handled the
same way. Completed trials are never re-run: each outcome is journaled
(fsync'd) the moment it arrives.
"""

from __future__ import annotations

import glob
import os
import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import FabricError, ProtocolError
from repro.fabric.backend import FabricBackend, WorkerHandle
from repro.fabric.protocol import PROTOCOL_VERSION, read_message, write_message
from repro.measure.journal import TrialJournal, merge_journals
from repro.measure.runner import DEFAULT_TRIAL_TIMEOUT
from repro.measure.supervise import (
    SweepResult,
    TrialOutcome,
    _journal_record,
    _unwrap_journal_payload,
)
from repro.obs.registry import MetricsRegistry

__all__ = [
    "FabricResult",
    "run_fabric",
]


class FabricResult(SweepResult):
    """A :class:`SweepResult` plus the fabric's own observability.

    Everything inherited (sample, digest, counts, to_dict) is computed
    from the outcomes alone, so it compares equal to a serial sweep's.

    Attributes:
        metrics: harness-side instruments under the ``fabric.`` prefix —
            shards, workers spawned, crashes, trials completed / resumed
            / reassigned, wall seconds, trials per second.
        shards: the shard count the sweep ran with.
    """

    def __init__(self, outcomes: List[TrialOutcome],
                 metrics: MetricsRegistry, shards: int) -> None:
        super().__init__(outcomes)
        self.metrics = metrics
        self.shards = shards

    def __repr__(self) -> str:
        return super().__repr__().replace(
            "<SweepResult", f"<FabricResult shards={self.shards}")


@dataclass
class _ShardState:
    """Coordinator-side record of one live worker and its shard."""

    seq: int                      # worker sequence number (sidecar name)
    handle: WorkerHandle
    remaining: List[int]          # assigned trials not yet reported
    last_progress: float          # wall clock of the last outcome
    configured: bool = False      # hello handshake completed
    kill_reason: Optional[str] = None
    thread: Optional[threading.Thread] = None
    sidecar: Optional[str] = None

    def fail_message(self, fallback: str) -> str:
        return self.kill_reason or fallback


_Event = Tuple[int, str, Any]


def _reader(seq: int, handle: WorkerHandle,
            events: "queue.Queue[_Event]") -> None:
    """Pump one worker's messages into the coordinator's event queue.

    One thread per worker: a blocking read only ever stalls its own
    worker's lane, and worker death surfaces as an ``eof``/``broken``
    event instead of a hung coordinator.
    """
    try:
        while True:
            kind, data = read_message(handle.rfile)
            events.put((seq, kind, data))
            if kind in ("done", "error"):
                return
    except EOFError:
        events.put((seq, "eof", None))
    except (ProtocolError, OSError, ValueError) as exc:
        events.put((seq, "broken", str(exc)))


def run_fabric(
    backend: FabricBackend,
    trials: int,
    shards: int = 2,
    timeout: float = DEFAULT_TRIAL_TIMEOUT,
    allow_failures: bool = False,
    retries: int = 1,
    worker_retries: int = 1,
    journal: Optional[Union[str, TrialJournal]] = None,
    run_key: Optional[str] = None,
    capture_digest: bool = False,
    progress_deadline: Optional[float] = None,
    worker_journals: bool = False,
    metrics: Optional[MetricsRegistry] = None,
) -> FabricResult:
    """Run a sweep sharded across fabric workers; merge byte-identically.

    Args:
        backend: where workers come from (local fork, subprocess,
            remote). Spawned backends carry their own
            :class:`~repro.fabric.worker.FactorySpec`.
        trials: number of independent trials (indices ``0..trials-1``).
        shards: how many workers to split the pending trials across.
            Sharding is round-robin by index; the merge is by index, so
            the shard count never shows in the output.
        timeout: virtual-time budget per trial (as ``run_supervised``).
        allow_failures: forwarded to each trial.
        retries: *in-worker* retry budget per trial (the serial retry
            loop each worker runs; same meaning as ``run_supervised``).
        worker_retries: how many replacement workers a trial may be
            reassigned to after worker deaths before it is recorded as
            ``crashed``.
        journal: a :class:`TrialJournal` or path. Completed trials are
            replayed, not re-run; new outcomes are checkpointed as they
            stream in; the journal is compacted (``rewrite``) on return,
            so its bytes match a serial run's journal.
        run_key: stamps/validates the journal.
        capture_digest: capture per-trial event-stream digests so
            :attr:`SweepResult.digest` proves cross-backend equivalence.
        progress_deadline: wall-clock seconds a worker may go without
            reporting an outcome before the watchdog kills it (None
            disables). This is a *harness* deadline — the per-trial
            virtual ``timeout`` still governs simulated time.
        worker_journals: also have each worker checkpoint to a
            ``<journal>.shard<seq>`` sidecar, merged into the main
            journal on the next resume (defense in depth for a killed
            *coordinator*; the coordinator already journals every
            streamed outcome itself).
        metrics: registry for ``fabric.*`` instruments (created when
            None; returned on the result either way).

    Returns:
        A :class:`FabricResult` whose sample, digest, and journal are
        byte-identical to ``run_supervised(...)`` over the same sweep.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials!r}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards!r}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries!r}")
    if worker_retries < 0:
        raise ValueError(
            f"worker_retries must be >= 0, got {worker_retries!r}")
    if progress_deadline is not None and progress_deadline <= 0:
        raise ValueError(
            f"progress_deadline must be positive, got {progress_deadline!r}")

    if metrics is None:
        metrics = MetricsRegistry()
    started = time.monotonic()

    if journal is not None and not isinstance(journal, TrialJournal):
        journal = TrialJournal(journal, key=run_key)
    if journal is not None:
        leftover = sorted(glob.glob(journal.path + ".shard*"))
        if leftover:
            merged = merge_journals(journal, leftover)
            metrics.counter("fabric.sidecar_trials_merged").add(merged)
            for path in leftover:
                os.remove(path)

    outcomes: Dict[int, TrialOutcome] = {}
    pending: List[int] = []
    for trial in range(trials):
        if journal is not None and trial in journal:
            entry = journal.completed[trial]
            status, attempts, result = _unwrap_journal_payload(entry)
            outcomes[trial] = TrialOutcome(
                trial=trial, status=status, attempts=attempts, error=None,
                result=result, from_journal=True,
                digest=journal.digest_for(trial),
            )
        else:
            pending.append(trial)
    metrics.counter("fabric.shards").add(shards)
    metrics.counter("fabric.trials_from_journal").add(len(outcomes))

    if pending:
        _run_sharded(
            backend, pending, shards, timeout, allow_failures, retries,
            worker_retries, capture_digest, progress_deadline,
            worker_journals, journal, outcomes, metrics,
        )

    if journal is not None:
        # Canonical form: header + one record per trial, in trial order —
        # byte-identical to an uninterrupted serial run's journal.
        journal.rewrite()

    elapsed = time.monotonic() - started
    completed = sum(1 for o in outcomes.values()
                    if o.succeeded and not o.from_journal)
    metrics.gauge("fabric.wall_seconds").set(elapsed, 0.0)
    if elapsed > 0:
        metrics.gauge("fabric.trials_per_s").set(completed / elapsed, 0.0)
    return FabricResult(
        [outcomes[trial] for trial in range(trials)], metrics, shards)


def _run_sharded(
    backend: FabricBackend,
    pending: List[int],
    shards: int,
    timeout: float,
    allow_failures: bool,
    retries: int,
    worker_retries: int,
    capture_digest: bool,
    progress_deadline: Optional[float],
    worker_journals: bool,
    journal: Optional[TrialJournal],
    outcomes: Dict[int, TrialOutcome],
    metrics: MetricsRegistry,
) -> None:
    """Dispatch pending trials across workers and merge their streams."""
    events: "queue.Queue[_Event]" = queue.Queue()
    active: Dict[int, _ShardState] = {}
    next_seq = 0
    #: trial -> number of workers it has been assigned to so far
    assignments: Dict[int, int] = {}
    spec = backend.factory_spec()
    if backend.needs_factory_spec and spec is None:
        raise FabricError(
            f"{type(backend).__name__} spawns fresh workers but carries "
            f"no factory spec"
        )

    def start_shard(indices: List[int]) -> None:
        nonlocal next_seq
        seq = next_seq
        next_seq += 1
        handle = backend.start_worker(seq)
        sidecar = None
        if worker_journals and journal is not None:
            sidecar = f"{journal.path}.shard{seq}"
        state = _ShardState(
            seq=seq, handle=handle, remaining=list(indices),
            last_progress=time.monotonic(), sidecar=sidecar,
        )
        state.thread = threading.Thread(
            target=_reader, args=(seq, handle, events),
            name=f"fabric-reader-{seq}", daemon=True,
        )
        state.thread.start()
        active[seq] = state
        for trial in indices:
            assignments[trial] = assignments.get(trial, 0) + 1
        metrics.counter("fabric.workers_spawned").add(1)

    def configure(state: _ShardState, hello: Any) -> None:
        if not isinstance(hello, dict) or \
                hello.get("protocol") != PROTOCOL_VERSION:
            raise FabricError(
                f"worker {state.handle.pid} speaks protocol "
                f"{hello.get('protocol') if isinstance(hello, dict) else hello!r}, "
                f"coordinator speaks {PROTOCOL_VERSION} — refusing the "
                f"whole sweep (a version skew is systemic, not a crash)"
            )
        config: Dict[str, Any] = {
            "protocol": PROTOCOL_VERSION,
            "timeout": timeout,
            "allow_failures": allow_failures,
            "retries": retries,
            "capture_digest": capture_digest,
            "journal": state.sidecar,
            "run_key": journal.key if journal is not None else None,
        }
        if backend.needs_factory_spec:
            config["factory"] = (spec.spec, spec.kwargs)
        write_message(state.handle.wfile, ("config", config))
        write_message(state.handle.wfile, ("run", list(state.remaining)))
        state.configured = True

    def retire(state: _ShardState, failure: Optional[str]) -> None:
        """Tear a worker down; reassign or quarantine its leftovers."""
        del active[state.seq]
        state.handle.kill()
        state.handle.wait()
        state.handle.close()
        if failure is None:
            return
        metrics.counter("fabric.worker_crashes").add(1)
        reassign: List[int] = []
        for trial in state.remaining:
            if assignments.get(trial, 1) <= worker_retries:
                reassign.append(trial)
            else:
                outcomes[trial] = TrialOutcome(
                    trial=trial, status="crashed",
                    attempts=assignments.get(trial, 1),
                    error=f"trial {trial}: {failure}", result=None,
                )
                metrics.counter("fabric.trials_crashed").add(1)
        if reassign:
            metrics.counter("fabric.trials_reassigned").add(len(reassign))
            start_shard(reassign)

    # Initial round-robin sharding. The scheme is irrelevant to the
    # output (the merge is by trial index); round-robin just balances
    # shard sizes within one trial of each other.
    for k in range(shards):
        shard_indices = pending[k::shards]
        if shard_indices:
            start_shard(shard_indices)

    try:
        while active:
            try:
                seq, kind, data = events.get(timeout=0.25)
            except queue.Empty:
                _watchdog(active, progress_deadline)
                continue
            state = active.get(seq)
            if state is None:
                continue  # stale event from an already-retired worker
            if kind == "hello":
                try:
                    configure(state, data)
                except (BrokenPipeError, OSError) as exc:
                    retire(state, f"worker died during handshake: {exc}")
            elif kind == "outcome":
                if not isinstance(data, TrialOutcome):
                    retire(state, f"worker sent a "
                                  f"{type(data).__name__} outcome")
                    continue
                outcomes[data.trial] = data
                _journal_record(journal, data)
                if data.trial in state.remaining:
                    state.remaining.remove(data.trial)
                state.last_progress = time.monotonic()
                metrics.counter("fabric.trials_completed").add(1)
            elif kind == "done":
                if state.remaining:
                    retire(state, f"worker finished with "
                                  f"{len(state.remaining)} trials "
                                  f"unreported")
                else:
                    retire(state, None)
            elif kind == "error":
                retire(state, f"worker error: {data}")
            elif kind in ("eof", "broken"):
                detail = "worker stream ended mid-shard" if kind == "eof" \
                    else f"worker stream broke: {data}"
                retire(state, state.fail_message(detail))
            _watchdog(active, progress_deadline)
    finally:
        for state in list(active.values()):
            state.handle.kill()
            state.handle.wait()
            state.handle.close()

    for trial in pending:  # safety net: no trial leaves without a fate
        if trial not in outcomes:
            outcomes[trial] = TrialOutcome(
                trial=trial, status="crashed",
                attempts=assignments.get(trial, 1),
                error=f"trial {trial}: lost by the fabric (worker "
                      f"retired without reporting it)", result=None,
            )
            metrics.counter("fabric.trials_crashed").add(1)

    if worker_journals and journal is not None:
        for path in glob.glob(journal.path + ".shard*"):
            os.remove(path)


def _watchdog(active: Dict[int, _ShardState],
              progress_deadline: Optional[float]) -> None:
    """Kill workers that have gone silent past the progress deadline.

    The kill closes the worker's side of the stream, so the reader
    thread surfaces an eof/broken event and the normal crash path
    (reassign or quarantine) takes over — one failure path, not two.
    """
    if progress_deadline is None:
        return
    now = time.monotonic()
    for state in active.values():
        if state.kill_reason is not None:
            continue
        if now - state.last_progress > progress_deadline:
            state.kill_reason = (
                f"no outcome for {progress_deadline}s (wall clock); "
                f"worker killed by the fabric watchdog"
            )
            state.handle.kill()
