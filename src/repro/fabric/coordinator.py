"""The fabric coordinator: shard, dispatch, merge — byte-identical.

:func:`run_fabric` is the distributed sibling of
:func:`~repro.measure.supervise.run_supervised`: the same sweep contract
(per-trial outcome taxonomy, bounded retry, checkpoint/resume journal),
executed by sharding trial indices across workers obtained from a
pluggable :class:`~repro.fabric.backend.FabricBackend`.

**The byte-identity guarantee.** Because trials are deterministic pure
functions of their index (DESIGN.md §6), *where* a trial runs cannot
change its result. The coordinator assigns shards round-robin
(``todo[k::shards]``), but merges outcomes purely by trial index — so
the :class:`~repro.measure.supervise.SweepResult` sample, the combined
event-stream digest, and the rewritten journal are byte-identical to a
serial ``run_supervised`` of the same sweep, for any shard count, any
backend, and any interleaving of worker completions. Tests assert this
literally (``tests/test_fabric/``) and CI re-proves it on every push —
including under injected harness faults (:mod:`repro.fabric.faults`).

**Failure model** (DESIGN.md §13 has the full fault × detection ×
recovery matrix):

* A worker that *dies* mid-shard (crash, SIGKILL, torn transport, read
  deadline) forfeits only its unreported trials: those are reassigned
  to a replacement worker up to ``worker_retries`` times, then recorded
  as ``crashed``. Trials that already have an outcome — journaled the
  moment they arrive — are never re-run.
* A worker that goes *silent* is distinguished from one that is merely
  slow by heartbeats: with ``heartbeat`` set, workers pulse liveness
  frames on a wall-clock timer even mid-trial, so ``progress_deadline``
  measures silence, not slowness. A wedged worker (alive, accepting
  work, never replying — the half-open connection) misses its beats,
  is SIGKILLed by the watchdog, and its trials reassigned.
* A *spawn failure* is retried with capped exponential backoff and
  seeded jitter (``spawn_retries`` attempts); hosts that crash
  ``quarantine_after`` times consecutively are quarantined, and their
  trials are *redistributed* to live workers — the sweep degrades to
  fewer shards instead of aborting. Quarantined hosts surface on
  :attr:`FabricResult.quarantined_hosts`.
* Outcome frames *eaten by the wire* (drop, resync'd corruption) are
  detected by the per-batch ``done`` message — the worker says how many
  trials it ran; any still-unreported trial is redelivered to the same
  live worker (bounded), because re-running a pure function is always
  safe.
* Near sweep end, ``speculate=True`` duplicates still-unfinished trials
  onto idle workers (MapReduce-style speculative execution). The first
  outcome per trial wins, duplicates are discarded unjournaled, and the
  sweep returns as soon as every trial has an outcome — stragglers stop
  setting the makespan, and determinism makes the duplicate's bytes
  identical anyway.
"""

from __future__ import annotations

import glob
import os
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from repro.errors import FabricError, ProtocolError
from repro.fabric.backend import FabricBackend, WorkerHandle
from repro.fabric.health import BackoffPolicy, HostHealth
from repro.fabric.protocol import PROTOCOL_VERSION, read_message, write_message
from repro.measure.journal import TrialJournal, merge_journals
from repro.measure.runner import DEFAULT_TRIAL_TIMEOUT
from repro.measure.supervise import (
    SweepResult,
    TrialOutcome,
    _journal_record,
    _unwrap_journal_payload,
)
from repro.obs.registry import MetricsRegistry

__all__ = [
    "FabricResult",
    "run_fabric",
]

#: How many damaged frames one read_message call may resync past in the
#: coordinator's reader threads (checksum skips + magic scans).
_READ_RESYNC = 8

#: How many times a live worker may be asked to redeliver outcomes the
#: wire ate before the coordinator gives up on its stream.
_MAX_REDELIVERIES = 3


class FabricResult(SweepResult):
    """A :class:`SweepResult` plus the fabric's own observability.

    Everything inherited (sample, digest, counts, to_dict) is computed
    from the outcomes alone, so it compares equal to a serial sweep's.

    Attributes:
        metrics: harness-side instruments under the ``fabric.`` prefix —
            shards, workers spawned, crashes, trials completed / resumed
            / reassigned / redelivered, spawn retries, heartbeats,
            speculative wins/losses, wall seconds, trials per second.
        shards: the shard count the sweep ran with.
        quarantined_hosts: hosts evicted for consecutive crashes, mapped
            to the crash streak that evicted them (empty when none — the
            degraded-but-complete signal).
    """

    def __init__(self, outcomes: List[TrialOutcome],
                 metrics: MetricsRegistry, shards: int,
                 quarantined_hosts: Optional[Dict[str, int]] = None) -> None:
        super().__init__(outcomes)
        self.metrics = metrics
        self.shards = shards
        self.quarantined_hosts = dict(quarantined_hosts or {})

    def __repr__(self) -> str:
        return super().__repr__().replace(
            "<SweepResult", f"<FabricResult shards={self.shards}")


@dataclass
class _ShardState:
    """Coordinator-side record of one live worker and its trials."""

    seq: int                      # worker sequence number (sidecar name)
    handle: WorkerHandle
    host: str                     # backend host key (health bookkeeping)
    remaining: List[int]          # assigned trials not yet reported
    last_progress: float          # wall clock of the last outcome
    last_heartbeat: float = 0.0   # wall clock of the last heartbeat
    configured: bool = False      # hello handshake completed
    batches_sent: int = 0
    batches_done: int = 0
    redeliveries: int = 0
    kill_reason: Optional[str] = None
    thread: Optional[threading.Thread] = None
    sidecar: Optional[str] = None
    stats: Dict[str, int] = field(default_factory=dict)

    def last_beat(self) -> float:
        """Latest evidence of life (outcome or heartbeat)."""
        return max(self.last_progress, self.last_heartbeat)

    def fail_message(self, fallback: str) -> str:
        return self.kill_reason or fallback


_Event = Tuple[int, str, Any]


def _reader(seq: int, handle: WorkerHandle, events: "queue.Queue[_Event]",
            io_deadline: Optional[float], stats: Dict[str, int]) -> None:
    """Pump one worker's messages into the coordinator's event queue.

    One thread per worker: a blocking read only ever stalls its own
    worker's lane, and worker death surfaces as an ``eof``/``broken``
    event instead of a hung coordinator. With an ``io_deadline`` even
    the blocking read is bounded (half-open connections become
    ``broken`` events); damaged frames are resync'd up to
    :data:`_READ_RESYNC` per read and counted in ``stats``.
    """
    try:
        while True:
            kind, data = read_message(handle.rfile, timeout=io_deadline,
                                      resync=_READ_RESYNC, stats=stats)
            events.put((seq, kind, data))
            if kind == "error":
                return
    except EOFError:
        events.put((seq, "eof", None))
    except (ProtocolError, OSError, ValueError) as exc:
        events.put((seq, "broken", str(exc)))


def run_fabric(
    backend: FabricBackend,
    trials: int,
    shards: int = 2,
    timeout: float = DEFAULT_TRIAL_TIMEOUT,
    allow_failures: bool = False,
    retries: int = 1,
    worker_retries: int = 1,
    journal: Optional[Union[str, TrialJournal]] = None,
    run_key: Optional[str] = None,
    capture_digest: bool = False,
    progress_deadline: Optional[float] = None,
    worker_journals: bool = False,
    metrics: Optional[MetricsRegistry] = None,
    heartbeat: Optional[float] = None,
    io_deadline: Optional[float] = None,
    spawn_retries: int = 2,
    spawn_backoff: Optional[BackoffPolicy] = None,
    quarantine_after: int = 3,
    speculate: bool = False,
    speculate_copies: int = 1,
) -> FabricResult:
    """Run a sweep sharded across fabric workers; merge byte-identically.

    Args:
        backend: where workers come from (local fork, subprocess,
            remote). Spawned backends carry their own
            :class:`~repro.fabric.worker.FactorySpec`.
        trials: number of independent trials (indices ``0..trials-1``).
        shards: how many workers to split the pending trials across.
            Sharding is round-robin by index; the merge is by index, so
            the shard count never shows in the output.
        timeout: virtual-time budget per trial (as ``run_supervised``).
        allow_failures: forwarded to each trial.
        retries: *in-worker* retry budget per trial (the serial retry
            loop each worker runs; same meaning as ``run_supervised``).
        worker_retries: how many replacement workers a trial may be
            reassigned to after worker deaths before it is recorded as
            ``crashed``.
        journal: a :class:`TrialJournal` or path. Completed trials are
            replayed, not re-run; new outcomes are checkpointed as they
            stream in; the journal is compacted (``rewrite``) on return,
            so its bytes match a serial run's journal.
        run_key: stamps/validates the journal.
        capture_digest: capture per-trial event-stream digests so
            :attr:`SweepResult.digest` proves cross-backend equivalence.
        progress_deadline: wall-clock seconds a worker may go without
            evidence of life before the watchdog kills it (None
            disables). With ``heartbeat`` set this measures *silence* —
            a slow trial keeps beating and is left alone; without
            heartbeats it measures time between outcomes, so a long
            trial can be killed as stalled. Harness wall time only; the
            per-trial virtual ``timeout`` still governs simulated time.
        worker_journals: also have each worker checkpoint to a
            ``<journal>.shard<seq>`` sidecar, merged into the main
            journal on the next resume (defense in depth for a killed
            *coordinator*; the coordinator already journals every
            streamed outcome itself).
        metrics: registry for ``fabric.*`` instruments (created when
            None; returned on the result either way).
        heartbeat: wall seconds between worker liveness pulses (None
            disables). Choose well under ``progress_deadline`` so
            several beats fit in one watchdog window.
        io_deadline: per-frame read/write deadline (wall seconds) on the
            coordinator's side of every worker stream. Bounds even the
            reader threads: a half-open connection becomes a retire
            instead of a hang. Must exceed ``heartbeat`` (beats are what
            keep an idle stream alive under a deadline).
        spawn_retries: extra attempts when ``backend.start_worker``
            fails, spaced by ``spawn_backoff``.
        spawn_backoff: the backoff policy between spawn retries
            (default: :class:`BackoffPolicy` with its seeded jitter).
        quarantine_after: consecutive crashes (spawn failures or worker
            deaths) after which a host is quarantined and the sweep
            degrades to the remaining workers.
        speculate: near sweep end, duplicate still-unfinished trials
            onto idle workers; first outcome wins, byte-identity is
            unaffected (trials are pure functions of their index).
        speculate_copies: how many speculative duplicates one trial may
            get.

    Returns:
        A :class:`FabricResult` whose sample, digest, and journal are
        byte-identical to ``run_supervised(...)`` over the same sweep.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials!r}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards!r}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries!r}")
    if worker_retries < 0:
        raise ValueError(
            f"worker_retries must be >= 0, got {worker_retries!r}")
    if progress_deadline is not None and progress_deadline <= 0:
        raise ValueError(
            f"progress_deadline must be positive, got {progress_deadline!r}")
    if heartbeat is not None and heartbeat <= 0:
        raise ValueError(f"heartbeat must be positive, got {heartbeat!r}")
    if io_deadline is not None and io_deadline <= 0:
        raise ValueError(
            f"io_deadline must be positive, got {io_deadline!r}")
    if io_deadline is not None and heartbeat is not None \
            and io_deadline <= heartbeat:
        raise ValueError(
            f"io_deadline ({io_deadline!r}) must exceed the heartbeat "
            f"interval ({heartbeat!r}): beats are what keep an idle "
            f"stream alive under a read deadline")
    if spawn_retries < 0:
        raise ValueError(
            f"spawn_retries must be >= 0, got {spawn_retries!r}")
    if speculate_copies < 1:
        raise ValueError(
            f"speculate_copies must be >= 1, got {speculate_copies!r}")

    if metrics is None:
        metrics = MetricsRegistry()
    health = HostHealth(quarantine_after=quarantine_after)
    backoff = spawn_backoff if spawn_backoff is not None else BackoffPolicy()
    started = time.monotonic()

    if journal is not None and not isinstance(journal, TrialJournal):
        journal = TrialJournal(journal, key=run_key)
    if journal is not None:
        # Surface resume-time damage instead of silently swallowing it:
        # records the journal reader had to drop (torn tail, bitrot).
        metrics.counter("fabric.journal_records_dropped").add(
            journal.dropped_records)
        leftover = sorted(glob.glob(journal.path + ".shard*"))
        if leftover:
            merged = merge_journals(journal, leftover)
            metrics.counter("fabric.sidecar_trials_merged").add(merged)
            for path in leftover:
                os.remove(path)

    outcomes: Dict[int, TrialOutcome] = {}
    pending: List[int] = []
    for trial in range(trials):
        if journal is not None and trial in journal:
            entry = journal.completed[trial]
            status, attempts, result = _unwrap_journal_payload(entry)
            outcomes[trial] = TrialOutcome(
                trial=trial, status=status, attempts=attempts, error=None,
                result=result, from_journal=True,
                digest=journal.digest_for(trial),
            )
        else:
            pending.append(trial)
    metrics.counter("fabric.shards").add(shards)
    metrics.counter("fabric.trials_from_journal").add(len(outcomes))

    if pending:
        _run_sharded(
            backend, pending, shards, timeout, allow_failures, retries,
            worker_retries, capture_digest, progress_deadline,
            worker_journals, journal, outcomes, metrics,
            heartbeat, io_deadline, spawn_retries, backoff, health,
            speculate, speculate_copies,
        )

    if journal is not None:
        # Canonical form: header + one record per trial, in trial order —
        # byte-identical to an uninterrupted serial run's journal.
        journal.rewrite()

    elapsed = time.monotonic() - started
    completed = sum(1 for o in outcomes.values()
                    if o.succeeded and not o.from_journal)
    metrics.gauge("fabric.wall_seconds").set(elapsed, 0.0)
    if elapsed > 0:
        metrics.gauge("fabric.trials_per_s").set(completed / elapsed, 0.0)
    return FabricResult(
        [outcomes[trial] for trial in range(trials)], metrics, shards,
        quarantined_hosts=health.quarantined)


def _run_sharded(
    backend: FabricBackend,
    pending: List[int],
    shards: int,
    timeout: float,
    allow_failures: bool,
    retries: int,
    worker_retries: int,
    capture_digest: bool,
    progress_deadline: Optional[float],
    worker_journals: bool,
    journal: Optional[TrialJournal],
    outcomes: Dict[int, TrialOutcome],
    metrics: MetricsRegistry,
    heartbeat: Optional[float],
    io_deadline: Optional[float],
    spawn_retries: int,
    backoff: BackoffPolicy,
    health: HostHealth,
    speculate: bool,
    speculate_copies: int,
) -> None:
    """Dispatch pending trials across workers and merge their streams."""
    events: "queue.Queue[_Event]" = queue.Queue()
    active: Dict[int, _ShardState] = {}
    spent: List[_ShardState] = []   # retired states, closed at the end
    next_seq = 0
    #: trial -> number of workers it has been assigned to so far
    assignments: Dict[int, int] = {}
    #: trial -> speculative duplicate count / owning worker seqs
    spec_copies: Dict[int, int] = {}
    spec_seqs: Dict[int, Set[int]] = {}
    max_gap = 0.0
    spec = backend.factory_spec()
    if backend.needs_factory_spec and spec is None:
        raise FabricError(
            f"{type(backend).__name__} spawns fresh workers but carries "
            f"no factory spec"
        )

    def crash_trial(trial: int, reason: str) -> None:
        outcomes[trial] = TrialOutcome(
            trial=trial, status="crashed",
            attempts=assignments.get(trial, 1),
            error=f"trial {trial}: {reason}", result=None,
        )
        metrics.counter("fabric.trials_crashed").add(1)

    def degrade(indices: List[int], reason: str) -> None:
        """A shard could not be (re)spawned: push its trials onto the
        least-loaded live worker instead of aborting; with no live
        worker left, the trials crash (the sweep still returns)."""
        indices = [t for t in indices if t not in outcomes]
        if not indices:
            return
        live = [st for st in active.values() if st.kill_reason is None]
        if live:
            target = min(live, key=lambda st: len(st.remaining))
            metrics.counter("fabric.shards_degraded").add(1)
            metrics.counter("fabric.trials_redistributed").add(len(indices))
            queue_batch(target, indices)
        else:
            for trial in indices:
                crash_trial(trial, reason)

    def queue_batch(state: _ShardState, indices: List[int]) -> None:
        """Hand extra trials to a live worker (it runs batches in
        arrival order). Before the handshake the batch just joins the
        initial assignment."""
        fresh = [t for t in indices if t not in state.remaining]
        state.remaining.extend(fresh)
        for trial in indices:
            assignments[trial] = assignments.get(trial, 0) + 1
        if state.configured:
            send_run(state, indices)

    def send_run(state: _ShardState, indices: List[int]) -> bool:
        try:
            write_message(state.handle.wfile, ("run", list(indices)),
                          timeout=io_deadline)
            state.batches_sent += 1
            return True
        except (ProtocolError, OSError, ValueError) as exc:
            retire(state, f"worker unreachable for a new batch: {exc}")
            return False

    def start_shard(indices: List[int],
                    deferred: Optional[List[Tuple[List[int], str]]] = None,
                    ) -> None:
        """Spawn a worker for ``indices``, with backoff-retry and host
        quarantine; on total failure degrade (or defer the degrade, for
        the initial sharding where later shards may still spawn)."""
        nonlocal next_seq
        indices = [t for t in indices if t not in outcomes]
        if not indices:
            return
        seq = next_seq
        next_seq += 1
        host = backend.host_key(seq)
        if not health.usable(host):
            reason = f"host {host!r} is quarantined"
            if deferred is not None:
                deferred.append((indices, reason))
            else:
                degrade(indices, reason)
            return
        handle: Optional[WorkerHandle] = None
        for attempt in range(spawn_retries + 1):
            try:
                handle = backend.start_worker(seq)
                break
            except FabricError as exc:
                if health.record_crash(host):
                    metrics.counter("fabric.hosts_quarantined").add(1)
                if attempt >= spawn_retries or not health.usable(host):
                    metrics.counter("fabric.spawn_failures").add(1)
                    reason = (f"cannot spawn worker on {host!r} after "
                              f"{attempt + 1} attempts: {exc}")
                    if deferred is not None:
                        deferred.append((indices, reason))
                    else:
                        degrade(indices, reason)
                    return
                metrics.counter("fabric.spawn_retries").add(1)
                backoff.sleep(attempt)
        assert handle is not None
        sidecar = None
        if worker_journals and journal is not None:
            sidecar = f"{journal.path}.shard{seq}"
        state = _ShardState(
            seq=seq, handle=handle, host=host, remaining=list(indices),
            last_progress=time.monotonic(), sidecar=sidecar,
        )
        state.thread = threading.Thread(
            target=_reader, args=(seq, handle, events, io_deadline,
                                  state.stats),
            name=f"fabric-reader-{seq}", daemon=True,
        )
        state.thread.start()
        active[seq] = state
        for trial in indices:
            assignments[trial] = assignments.get(trial, 0) + 1
        metrics.counter("fabric.workers_spawned").add(1)

    def configure(state: _ShardState, hello: Any) -> None:
        if not isinstance(hello, dict) or \
                hello.get("protocol") != PROTOCOL_VERSION:
            raise FabricError(
                f"worker {state.handle.pid} speaks protocol "
                f"{hello.get('protocol') if isinstance(hello, dict) else hello!r}, "
                f"coordinator speaks {PROTOCOL_VERSION} — refusing the "
                f"whole sweep (a version skew is systemic, not a crash)"
            )
        config: Dict[str, Any] = {
            "protocol": PROTOCOL_VERSION,
            "timeout": timeout,
            "allow_failures": allow_failures,
            "retries": retries,
            "capture_digest": capture_digest,
            "journal": state.sidecar,
            "run_key": journal.key if journal is not None else None,
            "heartbeat": heartbeat,
        }
        if backend.needs_factory_spec:
            config["factory"] = (spec.spec, spec.kwargs)
        write_message(state.handle.wfile, ("config", config),
                      timeout=io_deadline)
        state.configured = True
        send_run(state, state.remaining)

    def retire(state: _ShardState, failure: Optional[str]) -> None:
        """Tear a worker down; reassign or quarantine its leftovers.

        Streams are closed later (at sweep end, once the reader thread
        has drained): a wedged stream's reader can be blocked forever,
        and closing its fd out from under it would let the fd number be
        reused mid-read.
        """
        if state.seq not in active:
            return
        del active[state.seq]
        spent.append(state)
        state.handle.kill()
        state.handle.wait()
        if failure is None:
            return
        metrics.counter("fabric.worker_crashes").add(1)
        if health.record_crash(state.host):
            metrics.counter("fabric.hosts_quarantined").add(1)
        reassign: List[int] = []
        for trial in state.remaining:
            if trial in outcomes:
                # Already answered — by a speculative duplicate or an
                # earlier copy of a redelivered batch. Re-running it
                # would waste a worker and double-journal the trial.
                continue
            if assignments.get(trial, 1) <= worker_retries:
                reassign.append(trial)
            else:
                crash_trial(trial, failure)
        if reassign:
            metrics.counter("fabric.trials_reassigned").add(len(reassign))
            start_shard(reassign)

    def shutdown_worker(state: _ShardState) -> None:
        """End a finished worker's conversation politely; escalate to
        SIGKILL only if it lingers."""
        if state.seq in active:
            del active[state.seq]
        spent.append(state)
        try:
            write_message(state.handle.wfile, ("shutdown", None),
                          timeout=io_deadline if io_deadline else 5.0)
        except (ProtocolError, OSError, ValueError):
            pass
        try:
            state.handle.wfile.close()
        except (OSError, ValueError):
            pass
        if state.handle.wait(timeout=5.0) is None and state.handle.alive():
            state.handle.kill()
            state.handle.wait()

    def speculative_batch() -> List[int]:
        """Unfinished trials an idle worker may duplicate."""
        batch = []
        for trial in pending:
            if trial in outcomes:
                continue
            if spec_copies.get(trial, 0) >= speculate_copies:
                continue
            batch.append(trial)
        return batch

    def worker_idle(state: _ShardState) -> None:
        """All the worker's batches are done and nothing is owed:
        speculate on stragglers or send it home."""
        batch = speculative_batch() if speculate else []
        if batch:
            for trial in batch:
                spec_copies[trial] = spec_copies.get(trial, 0) + 1
                spec_seqs.setdefault(trial, set()).add(state.seq)
            metrics.counter("fabric.speculative_trials").add(len(batch))
            queue_batch(state, batch)
        else:
            shutdown_worker(state)

    def watchdog() -> None:
        """Retire workers silent past the progress deadline.

        Silence is measured from the last *evidence of life* — outcome
        or heartbeat — so with heartbeats on, a slow-but-alive worker
        is never killed; a wedged one (or a half-open pipe) is. Idle
        workers (nothing owed) are exempt. Retiring here, not via the
        reader thread, matters: a wedged stream's reader may never wake
        to deliver an eof."""
        if progress_deadline is None:
            return
        now = time.monotonic()
        for state in list(active.values()):
            if state.kill_reason is not None or not state.remaining:
                continue
            if now - state.last_beat() > progress_deadline:
                state.kill_reason = (
                    f"no outcome or heartbeat for {progress_deadline}s "
                    f"(wall clock); worker killed by the fabric watchdog"
                )
                metrics.counter("fabric.watchdog_kills").add(1)
                retire(state, state.kill_reason)

    # Initial round-robin sharding. The scheme is irrelevant to the
    # output (the merge is by trial index); round-robin just balances
    # shard sizes within one trial of each other. Spawn failures are
    # deferred until every shard has had its chance, so early failures
    # degrade onto later successes.
    deferred: List[Tuple[List[int], str]] = []
    for k in range(shards):
        shard_indices = pending[k::shards]
        if shard_indices:
            start_shard(shard_indices, deferred=deferred)
    for indices, reason in deferred:
        degrade(indices, reason)

    try:
        while active and any(t not in outcomes for t in pending):
            try:
                seq, kind, data = events.get(timeout=0.25)
            except queue.Empty:
                watchdog()
                continue
            state = active.get(seq)
            if state is None:
                continue  # stale event from an already-retired worker
            now = time.monotonic()
            if kind == "hello":
                try:
                    configure(state, data)
                except (ProtocolError, BrokenPipeError, OSError) as exc:
                    retire(state, f"worker died during handshake: {exc}")
            elif kind == "heartbeat":
                max_gap = max(max_gap, now - state.last_beat())
                state.last_heartbeat = now
                metrics.counter("fabric.heartbeats").add(1)
            elif kind == "outcome":
                if not isinstance(data, TrialOutcome):
                    retire(state, f"worker sent a "
                                  f"{type(data).__name__} outcome")
                    continue
                max_gap = max(max_gap, now - state.last_beat())
                state.last_progress = now
                health.record_success(state.host)
                if data.trial not in outcomes:
                    outcomes[data.trial] = data
                    _journal_record(journal, data)
                    metrics.counter("fabric.trials_completed").add(1)
                    if seq in spec_seqs.get(data.trial, ()):
                        metrics.counter("fabric.speculative_wins").add(1)
                elif data.trial in spec_copies:
                    # A duplicate landed after the race was decided;
                    # discard it (first outcome won, bytes identical).
                    metrics.counter("fabric.speculative_losses").add(1)
                for other in active.values():
                    if data.trial in other.remaining:
                        other.remaining.remove(data.trial)
            elif kind == "done":
                state.batches_done += 1
                if state.batches_done >= state.batches_sent:
                    state.remaining = [t for t in state.remaining
                                       if t not in outcomes]
                    if state.remaining:
                        # The worker ran everything it was given, yet
                        # trials are unreported: the wire ate outcome
                        # frames (drop, resync'd corruption). Pure
                        # functions re-run safely — redeliver, bounded.
                        if state.redeliveries >= _MAX_REDELIVERIES:
                            retire(state, f"worker lost outcomes for "
                                          f"{len(state.remaining)} trials "
                                          f"after {state.redeliveries} "
                                          f"redeliveries")
                        else:
                            state.redeliveries += 1
                            metrics.counter(
                                "fabric.trials_redelivered").add(
                                    len(state.remaining))
                            send_run(state, state.remaining)
                    else:
                        worker_idle(state)
            elif kind == "error":
                retire(state, f"worker error: {data}")
            elif kind in ("eof", "broken"):
                detail = "worker stream ended mid-shard" if kind == "eof" \
                    else f"worker stream broke: {data}"
                retire(state, state.fail_message(detail))
            watchdog()
    finally:
        for state in list(active.values()):
            state.handle.kill()
            state.handle.wait()
            spent.append(state)
        active.clear()
        for state in spent:
            if state.thread is not None:
                state.thread.join(timeout=2.0)
            if state.thread is None or not state.thread.is_alive():
                # A still-blocked reader (wedged stream) keeps its fds:
                # closing them would free the numbers for reuse under a
                # live read. The thread is a daemon; the leak is bounded
                # by the handful of wedges a sweep can see.
                state.handle.close()

    metrics.counter("fabric.frames_resynced").add(
        sum(state.stats.get("resyncs", 0) for state in spent))
    metrics.gauge("fabric.heartbeat_gap_max").set(max_gap, 0.0)

    for trial in pending:  # safety net: no trial leaves without a fate
        if trial not in outcomes:
            crash_trial(trial, "lost by the fabric (worker retired "
                               "without reporting it)")

    if worker_journals and journal is not None:
        for path in glob.glob(journal.path + ".shard*"):
            os.remove(path)
