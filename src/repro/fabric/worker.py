"""The fabric worker: runs batches of trials, streams outcomes back.

A worker is one process executing a conversation over the wire protocol
(:mod:`repro.fabric.protocol`): hello → config → then a *batch loop* —
each ``run`` message answered by a stream of ``outcome`` messages and a
per-batch ``done``, until ``shutdown`` (or a clean EOF) ends the
conversation. The same :func:`worker_loop` body runs under every
backend — forked with an inherited factory closure
(:class:`~repro.fabric.backend.LocalBackend`), launched as
``mm-fabric worker`` over pipes
(:class:`~repro.fabric.backend.SubprocessBackend`), or launched through
an SSH-shaped transport (:class:`~repro.fabric.backend.RemoteBackend`).

The batch loop (protocol v2) is what makes the fabric's fault tolerance
possible: the coordinator can *redeliver* trials whose outcome frames
the wire ate, push *speculative* copies of straggler trials to idle
workers, and *rebalance* a dead peer's remaining trials onto live ones —
all without respawning anything. Alongside the trial work, a
:class:`~repro.fabric.health.HeartbeatSender` daemon thread pulses
``heartbeat`` frames on a wall-clock period (sharing this module's write
lock so frames never interleave), which is how the coordinator tells a
slow worker from a wedged one.

Trial semantics are *identical to the serial supervised sweep*
(:func:`repro.measure.supervise.run_supervised`): the same
:func:`~repro.measure.runner.run_trial` unit, the same bounded-retry
loop, the same :class:`~repro.measure.supervise.TrialOutcome` taxonomy,
and the same optional per-trial event-stream digest. That shared core is
what makes the fabric's byte-identical-to-serial guarantee a matter of
construction rather than luck.
"""

from __future__ import annotations

import importlib
import os
import threading
from dataclasses import dataclass, field
from typing import Any, BinaryIO, Dict, Iterable, Iterator, Optional

from repro.errors import FabricError, ProtocolError, ReproError
from repro.fabric.health import HeartbeatSender
from repro.fabric.protocol import PROTOCOL_VERSION, read_message, write_message
from repro.measure.journal import TrialJournal
from repro.measure.runner import ScenarioFactory, run_trial
from repro.measure.supervise import TrialOutcome, _success_outcome

__all__ = [
    "FactorySpec",
    "run_shard",
    "worker_loop",
]


@dataclass(frozen=True)
class FactorySpec:
    """A scenario factory named by import path (for spawned workers).

    Workers launched as fresh processes (subprocess, remote) cannot
    inherit a closure, so the factory travels as data: ``spec`` is
    ``"package.module:attribute"`` naming a *builder* callable, and
    ``kwargs`` are the keyword arguments the builder is called with to
    produce the actual :data:`~repro.measure.runner.ScenarioFactory`.

    Example:
        >>> FactorySpec("repro.fabric.scenarios:replay_smoke",
        ...             {"scale": 0.4}).spec
        'repro.fabric.scenarios:replay_smoke'
    """

    spec: str
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def resolve(self) -> ScenarioFactory:
        """Import the builder and call it; raise :class:`FabricError`
        with the offending spec on any failure."""
        module_name, sep, attr = self.spec.partition(":")
        if not sep or not module_name or not attr:
            raise FabricError(
                f"malformed factory spec {self.spec!r} "
                f"(expected 'package.module:attribute')"
            )
        try:
            module = importlib.import_module(module_name)
            builder = getattr(module, attr)
        except (ImportError, AttributeError) as exc:
            raise FabricError(
                f"cannot resolve factory spec {self.spec!r}: {exc}"
            ) from exc
        factory = builder(**self.kwargs)
        if not callable(factory):
            raise FabricError(
                f"factory spec {self.spec!r} built a non-callable "
                f"{type(factory).__name__}"
            )
        return factory


def run_shard(
    factory: ScenarioFactory,
    indices: Iterable[int],
    timeout: float,
    allow_failures: bool = False,
    retries: int = 1,
    capture_digest: bool = False,
    journal: Optional[TrialJournal] = None,
) -> Iterator[TrialOutcome]:
    """Run a shard's trials in order, yielding each outcome as it lands.

    Mirrors the serial path of :func:`run_supervised` exactly: first
    successful attempt → ``ok``; success after failures → ``retried``;
    retry budget exhausted → ``quarantined``. When a ``journal`` is
    given, every *successful* outcome is checkpointed (fsync'd) before
    it is yielded — so a worker that dies after journaling trial N never
    makes the coordinator re-run N, it merges the sidecar instead.
    """
    for trial in indices:
        error = None
        outcome: Optional[TrialOutcome] = None
        for attempt in range(1, retries + 2):
            try:
                result = run_trial(factory, trial, timeout, allow_failures,
                                   capture_digest=capture_digest)
            except ReproError as exc:
                error = str(exc)
                continue
            outcome = _success_outcome(trial, attempt, result)
            break
        if outcome is None:
            outcome = TrialOutcome(
                trial=trial, status="quarantined", attempts=retries + 1,
                error=error, result=None,
            )
        if journal is not None and outcome.succeeded:
            journal.append(
                outcome.trial,
                {"status": outcome.status, "attempts": outcome.attempts,
                 "result": outcome.result},
                digest=outcome.digest,
            )
        yield outcome


def worker_loop(
    rfile: BinaryIO,
    wfile: BinaryIO,
    factory: Optional[ScenarioFactory] = None,
) -> int:
    """Drive one worker conversation over a stream pair.

    Args:
        rfile: coordinator → worker byte stream.
        wfile: worker → coordinator byte stream.
        factory: an inherited factory closure (fork backends); spawned
            workers leave it None and receive a :class:`FactorySpec`
            in their config instead.

    Returns:
        Process exit status (0 on a completed conversation — a
        ``shutdown`` message or a clean EOF after config).

    The config may carry ``"heartbeat"`` (wall seconds between liveness
    pulses, 0/absent disables them); all frames to the coordinator go
    out under one lock so heartbeats never interleave with outcomes.
    """
    write_lock = threading.Lock()

    def send(message):
        with write_lock:
            write_message(wfile, message)

    send(("hello", {"protocol": PROTOCOL_VERSION, "pid": os.getpid()}))
    heartbeat: Optional[HeartbeatSender] = None
    journal = None
    configured = False
    try:
        kind, config = read_message(rfile)
        if kind != "config":
            raise ProtocolError(f"expected config, got {kind!r}")
        if config.get("protocol") != PROTOCOL_VERSION:
            raise ProtocolError(
                f"coordinator speaks protocol "
                f"{config.get('protocol')!r}, worker speaks "
                f"{PROTOCOL_VERSION}"
            )
        if factory is None:
            spec = config.get("factory")
            if spec is None:
                raise FabricError(
                    "spawned worker received no factory spec "
                    "(only fork backends can inherit a closure)"
                )
            factory = spec.resolve() if isinstance(spec, FactorySpec) \
                else FactorySpec(*spec).resolve()
        if config.get("journal"):
            journal = TrialJournal(config["journal"],
                                   key=config.get("run_key"))
        interval = float(config.get("heartbeat") or 0)
        if interval > 0:
            heartbeat = HeartbeatSender(
                wfile, write_lock, interval=interval,
                payload={"pid": os.getpid()},
            ).start()
        configured = True
        batch = 0
        while True:
            kind, data = read_message(rfile)
            if kind == "shutdown":
                return 0
            if kind != "run":
                raise ProtocolError(f"expected run or shutdown, got {kind!r}")
            completed = 0
            for outcome in run_shard(
                factory,
                list(data),
                timeout=config.get("timeout", 600.0),
                allow_failures=bool(config.get("allow_failures", False)),
                retries=int(config.get("retries", 1)),
                capture_digest=bool(config.get("capture_digest", False)),
                journal=journal,
            ):
                send(("outcome", outcome))
                completed += 1
            send(("done", {"trials": completed, "batch": batch}))
            batch += 1
    except (EOFError, BrokenPipeError):
        # Coordinator went away. After config that is a normal end of
        # conversation (v1 coordinators, torn-down sweeps); before it,
        # the worker never got to work.
        return 0 if configured else 1
    except ReproError as exc:
        try:
            send(("error", str(exc)))
        except (OSError, ValueError):
            pass
        return 1
    finally:
        if heartbeat is not None:
            heartbeat.stop()
        if journal is not None:
            journal.close()
