"""Deterministic harness-fault injection for the fabric.

:class:`FabricFaultPlan` is the harness-side sibling of
:class:`repro.chaos.plan.FaultPlan`: where a chaos plan breaks the
*simulated* network inside a trial, a fabric fault plan breaks the
*measurement harness itself* — the wire between coordinator and worker,
the spawn path, the worker process. Same idiom throughout: frozen
dataclause clauses, a ``type``-tagged JSON form
(``to_json``/``from_json``), deterministic order-based matching, and a
seed so any stochastic clause replays identically.

Faults are injected by :class:`FaultyBackend`, a wrapper around any real
:class:`~repro.fabric.backend.FabricBackend`. It interposes a *frame
pump* — a thread that relays protocol frames between the real worker
pipe and a fresh OS pipe — per afflicted direction, so the coordinator
still reads a genuine file descriptor (its select()-based deadlines stay
accurate) while the pump drops, delays, corrupts, or truncates frames in
flight. A *wedge* is the pump going silent while both pipe ends stay
open — a true half-open connection, the failure mode that used to hang
``read_message`` forever. Because the worker process underneath is real
and untouched (except by :class:`KillWorker`), everything the robustness
machinery then does — reassign, respawn, speculate — exercises the
production paths, not test doubles.

Clause catalogue:

* :class:`FrameFault` — drop / delay / corrupt / truncate wire frames,
  selected deterministically (skip the first ``skip`` matching frames,
  afflict the next ``count``) or stochastically (``rate``, seeded).
* :class:`SpawnFault` — fail the first ``fail_first`` spawn attempts
  for a shard (or all shards), exercising backoff-retry and quarantine.
* :class:`KillWorker` — SIGKILL the worker after ``after_outcomes``
  outcome frames have crossed the wire (kill "at trial N").
* :class:`WedgeWorker` — after ``after_outcomes`` outcomes, the worker's
  frames (heartbeats included) stop arriving; the process stays alive
  and keeps computing into the void.
"""

from __future__ import annotations

import json
import os
import pickle
import random
import threading
import time
from dataclasses import asdict, dataclass, fields
from typing import Any, BinaryIO, Dict, Optional, Tuple, Type, Union

from repro.errors import ChaosError, FabricError
from repro.fabric.backend import FabricBackend, WorkerHandle
from repro.fabric.protocol import _HEADER, _MAGIC
from repro.fabric.worker import FactorySpec
from repro.sim.random import stable_seed

__all__ = [
    "FabricFaultPlan",
    "FaultyBackend",
    "FrameFault",
    "KillWorker",
    "SpawnFault",
    "WedgeWorker",
]

#: Wire directions a frame clause can afflict: coordinator → worker,
#: worker → coordinator, or both.
FRAME_DIRECTIONS = ("c2w", "w2c", "both")

#: What a matched frame suffers.
FRAME_ACTIONS = ("drop", "delay", "corrupt", "truncate")


def _check_shard(shard: Optional[int]) -> None:
    if shard is not None and shard < 0:
        raise ChaosError(f"shard must be >= 0 or None, got {shard!r}")


@dataclass(frozen=True)
class FrameFault:
    """Afflict protocol frames on one leg of one (or every) worker wire.

    Matching is deterministic and order-based, exactly like
    :class:`~repro.chaos.plan.ServerFaultClause`: frames on the clause's
    direction whose message kind is in ``kinds`` (None matches all) are
    counted per worker; the first ``skip`` pass through, the next
    ``count`` (None = all from there on) are afflicted. Alternatively
    set ``rate`` for seeded stochastic selection — each matching frame
    is afflicted with that probability, drawn from a
    :class:`random.Random` keyed on (plan seed, shard, direction), so
    the same plan and seed replay the same casualty list.

    Actions:

    * ``"drop"`` — the frame vanishes; the stream stays intact. Lost
      *outcomes* are recovered by the coordinator's redelivery path.
    * ``"delay"`` — the frame is held ``delay`` wall seconds before
      forwarding (heartbeats included — a big enough delay looks like a
      wedge, by design).
    * ``"corrupt"`` — one payload byte is flipped, checksum left stale;
      the receiver sees a checksum mismatch (and resyncs, if allowed).
    * ``"truncate"`` — half the frame is written, then the pipe closes:
      the receiver's read dies mid-frame.
    """

    action: str = "drop"
    direction: str = "w2c"
    shard: Optional[int] = None
    kinds: Optional[Tuple[str, ...]] = None
    skip: int = 0
    count: Optional[int] = 1
    rate: Optional[float] = None
    delay: float = 0.2

    def __post_init__(self) -> None:
        if self.action not in FRAME_ACTIONS:
            raise ChaosError(
                f"frame action must be one of {FRAME_ACTIONS}, "
                f"got {self.action!r}"
            )
        if self.direction not in FRAME_DIRECTIONS:
            raise ChaosError(
                f"frame direction must be one of {FRAME_DIRECTIONS}, "
                f"got {self.direction!r}"
            )
        _check_shard(self.shard)
        if self.kinds is not None and not isinstance(self.kinds, tuple):
            object.__setattr__(self, "kinds", tuple(self.kinds))
        if self.skip < 0:
            raise ChaosError(f"skip must be >= 0, got {self.skip!r}")
        if self.count is not None and self.count < 1:
            raise ChaosError(
                f"count must be >= 1 or None, got {self.count!r}"
            )
        if self.rate is not None and not 0.0 < self.rate <= 1.0:
            raise ChaosError(f"rate must be in (0, 1], got {self.rate!r}")
        if self.action == "delay" and self.delay <= 0.0:
            raise ChaosError(f"delay must be > 0, got {self.delay!r}")

    def afflicts(self, direction: str, shard: int) -> bool:
        return (self.direction in (direction, "both")
                and self.shard in (None, shard))


@dataclass(frozen=True)
class SpawnFault:
    """Fail the first ``fail_first`` spawn attempts for a shard.

    ``shard=None`` afflicts every shard independently (each gets its own
    failure budget). Exercises the coordinator's backoff-retry spawn
    path and, with ``fail_first`` past the retry budget, host
    quarantine and shard degradation.
    """

    shard: Optional[int] = None
    fail_first: int = 1

    def __post_init__(self) -> None:
        _check_shard(self.shard)
        if self.fail_first < 1:
            raise ChaosError(
                f"fail_first must be >= 1, got {self.fail_first!r}"
            )


@dataclass(frozen=True)
class KillWorker:
    """SIGKILL the shard's worker after ``after_outcomes`` outcomes.

    ``after_outcomes=0`` kills on the first frame (before any trial
    completes). The coordinator sees the stream tear and must reassign
    the worker's unreported trials.
    """

    shard: int = 0
    after_outcomes: int = 0

    def __post_init__(self) -> None:
        if self.shard < 0:
            raise ChaosError(f"shard must be >= 0, got {self.shard!r}")
        if self.after_outcomes < 0:
            raise ChaosError(
                f"after_outcomes must be >= 0, got {self.after_outcomes!r}"
            )


@dataclass(frozen=True)
class WedgeWorker:
    """Silence the shard's wire after ``after_outcomes`` outcomes.

    The worker process stays alive and keeps computing; its frames
    (heartbeats included) simply stop arriving, and the pipe never
    closes — the half-open connection. Only missed heartbeats can
    detect this.
    """

    shard: int = 0
    after_outcomes: int = 0

    def __post_init__(self) -> None:
        if self.shard < 0:
            raise ChaosError(f"shard must be >= 0, got {self.shard!r}")
        if self.after_outcomes < 0:
            raise ChaosError(
                f"after_outcomes must be >= 0, got {self.after_outcomes!r}"
            )


#: Any clause a fabric fault plan can hold.
FabricClause = Union[FrameFault, SpawnFault, KillWorker, WedgeWorker]

#: JSON tag -> clause class (the serialized form's discriminator).
_CLAUSE_KINDS: Dict[str, Type] = {
    "frame": FrameFault,
    "spawn": SpawnFault,
    "kill": KillWorker,
    "wedge": WedgeWorker,
}

_KIND_BY_TYPE: Dict[Type, str] = {
    cls: tag for tag, cls in _CLAUSE_KINDS.items()
}

#: Schema version stamped into serialized fabric fault plans.
PLAN_FORMAT_VERSION = 1


@dataclass(frozen=True)
class FabricFaultPlan:
    """A named, seeded schedule of harness faults.

    Pure data, like its chaos sibling: picklable, JSON-round-trippable,
    reviewable. The ``seed`` drives every stochastic clause (``rate``
    frame faults); deterministic clauses ignore it.
    """

    clauses: Tuple[FabricClause, ...] = ()
    name: str = "fabric-chaos"
    seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.clauses, tuple):
            object.__setattr__(self, "clauses", tuple(self.clauses))
        for clause in self.clauses:
            if type(clause) not in _KIND_BY_TYPE:
                raise ChaosError(
                    f"not a fabric fault clause: {clause!r} (expected one "
                    f"of {sorted(c.__name__ for c in _KIND_BY_TYPE)})"
                )

    # ------------------------------------------------------------------ #
    # selection

    def frame_clauses(self, direction: str,
                      shard: int) -> Tuple[FrameFault, ...]:
        """Frame clauses afflicting ``direction`` for ``shard``."""
        if direction not in ("c2w", "w2c"):
            raise ChaosError(
                f"direction must be 'c2w' or 'w2c', got {direction!r}"
            )
        return tuple(
            clause for clause in self.clauses
            if isinstance(clause, FrameFault)
            and clause.afflicts(direction, shard)
        )

    def spawn_budget(self, shard: int) -> int:
        """Total injected spawn failures owed for ``shard``."""
        return sum(
            clause.fail_first for clause in self.clauses
            if isinstance(clause, SpawnFault)
            and clause.shard in (None, shard)
        )

    def kill_clause(self, shard: int) -> Optional[KillWorker]:
        for clause in self.clauses:
            if isinstance(clause, KillWorker) and clause.shard == shard:
                return clause
        return None

    def wedge_clause(self, shard: int) -> Optional[WedgeWorker]:
        for clause in self.clauses:
            if isinstance(clause, WedgeWorker) and clause.shard == shard:
                return clause
        return None

    # ------------------------------------------------------------------ #
    # serialization (mirrors chaos.FaultPlan)

    def to_dict(self) -> dict:
        """Plain-data form (stable key order; JSON-ready)."""
        return {
            "version": PLAN_FORMAT_VERSION,
            "name": self.name,
            "seed": self.seed,
            "clauses": [
                {"type": _KIND_BY_TYPE[type(clause)], **asdict(clause)}
                for clause in self.clauses
            ],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize to JSON (sorted keys: equal plans are equal text)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "FabricFaultPlan":
        """Inverse of :meth:`to_dict`; validates every clause."""
        if not isinstance(data, dict):
            raise ChaosError(
                f"fabric fault plan must be an object, got {type(data)}"
            )
        version = data.get("version", PLAN_FORMAT_VERSION)
        if version != PLAN_FORMAT_VERSION:
            raise ChaosError(
                f"unsupported fabric-fault-plan version {version!r} "
                f"(this build reads version {PLAN_FORMAT_VERSION})"
            )
        clauses = []
        for index, entry in enumerate(data.get("clauses", ())):
            if not isinstance(entry, dict) or "type" not in entry:
                raise ChaosError(
                    f"clause {index} must be an object with a 'type' key"
                )
            entry = dict(entry)
            tag = entry.pop("type")
            clause_cls = _CLAUSE_KINDS.get(tag)
            if clause_cls is None:
                raise ChaosError(
                    f"clause {index}: unknown type {tag!r} (expected one "
                    f"of {sorted(_CLAUSE_KINDS)})"
                )
            known = {f.name for f in fields(clause_cls)}
            unknown = set(entry) - known
            if unknown:
                raise ChaosError(
                    f"clause {index} ({tag}): unknown fields "
                    f"{sorted(unknown)}"
                )
            if "kinds" in entry and entry["kinds"] is not None:
                entry["kinds"] = tuple(entry["kinds"])
            try:
                clauses.append(clause_cls(**entry))
            except TypeError as exc:
                raise ChaosError(f"clause {index} ({tag}): {exc}") from None
        return cls(
            clauses=tuple(clauses),
            name=data.get("name", "fabric-chaos"),
            seed=int(data.get("seed", 0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "FabricFaultPlan":
        """Parse a plan from JSON text."""
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ChaosError(
                f"fabric fault plan is not valid JSON: {exc}"
            ) from None
        return cls.from_dict(data)

    def __len__(self) -> int:
        return len(self.clauses)

    def __repr__(self) -> str:
        kinds = ", ".join(_KIND_BY_TYPE[type(c)] for c in self.clauses)
        return f"<FabricFaultPlan {self.name!r} seed={self.seed} [{kinds}]>"


# ---------------------------------------------------------------------- #
# injection


def _read_exact(stream: BinaryIO, n: int) -> bytes:
    """Read exactly n bytes; b"" on clean EOF, short bytes on torn EOF."""
    chunks = b""
    while len(chunks) < n:
        chunk = stream.read(n - len(chunks))
        if not chunk:
            return chunks
        chunks += chunk
    return chunks


class _FramePump(threading.Thread):
    """Relay protocol frames from ``src`` to raw fd ``dst_fd``, applying
    the shard's frame clauses plus any kill/wedge clause in transit.

    Runs as a daemon; exits (closing both ends, unless wedged) when the
    source stream ends or a truncation clause fires.
    """

    def __init__(self, src: BinaryIO, dst_fd: int,
                 clauses: Tuple[FrameFault, ...],
                 rng: random.Random,
                 counters: Dict[str, int],
                 lock: threading.Lock,
                 handle: Optional[WorkerHandle] = None,
                 kill: Optional[KillWorker] = None,
                 wedge: Optional[WedgeWorker] = None,
                 name: str = "fabric-fault-pump") -> None:
        super().__init__(daemon=True, name=name)
        self._src = src
        self._dst_fd = dst_fd
        self._clauses = clauses
        self._rng = rng
        self._counters = counters
        self._lock = lock
        self._handle = handle
        self._kill = kill
        self._wedge = wedge
        self._matched = {id(clause): 0 for clause in clauses}
        self._outcomes = 0
        self._wedged = False
        self._killed = False

    def _count(self, key: str) -> None:
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + 1

    def _clause_for(self, kind: Optional[str]) -> Optional[FrameFault]:
        """First clause afflicting this frame, stepping match counters."""
        for clause in self._clauses:
            if clause.kinds is not None and kind not in clause.kinds:
                continue
            if clause.rate is not None:
                if self._rng.random() < clause.rate:
                    return clause
                continue
            seen = self._matched[id(clause)]
            self._matched[id(clause)] = seen + 1
            if seen < clause.skip:
                continue
            if (clause.count is None
                    or seen < clause.skip + clause.count):
                return clause
        return None

    def _forward(self, frame: bytes) -> None:
        view = memoryview(frame)
        while view:
            written = os.write(self._dst_fd, view)
            view = view[written:]

    def _close_dst(self) -> None:
        try:
            os.close(self._dst_fd)
        except OSError:
            pass

    def run(self) -> None:
        try:
            self._pump()
        except (OSError, ValueError):
            self._close_dst()

    def _pump(self) -> None:
        while True:
            header = _read_exact(self._src, _HEADER.size)
            if len(header) < _HEADER.size:
                # Source ended (cleanly or mid-frame). Relay whatever
                # arrived so the receiver sees the same tear — unless
                # wedged, where silence must persist.
                if header and not self._wedged:
                    self._forward(header)
                if not self._wedged:
                    self._close_dst()
                return
            magic, length, _checksum = _HEADER.unpack(header)
            if magic != _MAGIC or length > 64 * 1024 * 1024:
                # Not a frame boundary we understand; relay verbatim and
                # fall back to byte-pump mode (no more frame parsing).
                if not self._wedged:
                    self._forward(header)
                    while True:
                        chunk = self._src.read(65536)
                        if not chunk:
                            self._close_dst()
                            return
                        self._forward(chunk)
                return
            payload = _read_exact(self._src, length)
            torn = len(payload) < length
            kind: Optional[str] = None
            try:
                message = pickle.loads(payload) if not torn else None
                if isinstance(message, tuple) and message:
                    kind = message[0]
            except Exception:
                kind = None
            if self._wedged:
                # Drain silently; the worker keeps producing into the
                # void and both pipe ends stay open.
                if torn:
                    return
                continue
            clause = None if torn else self._clause_for(kind)
            frame = header + payload
            if clause is None:
                self._forward(frame)
            elif clause.action == "drop":
                self._count("frames_dropped")
            elif clause.action == "delay":
                self._count("frames_delayed")
                time.sleep(clause.delay)
                self._forward(frame)
            elif clause.action == "corrupt":
                self._count("frames_corrupted")
                at = _HEADER.size + length // 2
                frame = (frame[:at]
                         + bytes([frame[at] ^ 0xFF])
                         + frame[at + 1:])
                self._forward(frame)
            elif clause.action == "truncate":
                self._count("frames_truncated")
                self._forward(frame[:_HEADER.size + max(1, length // 2)])
                self._close_dst()
                return
            if torn:
                self._close_dst()
                return
            if kind == "outcome":
                self._outcomes += 1
            if (self._kill is not None and not self._killed
                    and self._outcomes >= self._kill.after_outcomes):
                self._killed = True
                self._count("workers_killed")
                if self._handle is not None:
                    self._handle.kill()
            if (self._wedge is not None and not self._wedged
                    and self._outcomes >= self._wedge.after_outcomes):
                self._wedged = True
                self._count("workers_wedged")


class FaultyBackend(FabricBackend):
    """Wrap a real backend, injecting a :class:`FabricFaultPlan`.

    Transparent to the coordinator: ``start_worker`` returns handles
    whose streams are real OS pipes (deadline select() stays accurate),
    with frame pumps interposed only on afflicted directions. Spawn
    faults surface as ordinary :class:`~repro.errors.FabricError`\\ s
    from ``start_worker`` — indistinguishable from a real SSH failure,
    which is the point.

    Attributes:
        injected: live counters of every fault actually delivered
            (``frames_dropped``, ``frames_delayed``, ``frames_corrupted``,
            ``frames_truncated``, ``spawn_failures``, ``workers_killed``,
            ``workers_wedged``) — the soak's ground truth that the run
            really was afflicted.
    """

    def __init__(self, backend: FabricBackend, plan: FabricFaultPlan,
                 seed: Optional[int] = None) -> None:
        self.backend = backend
        self.plan = plan
        self.seed = plan.seed if seed is None else seed
        self.needs_factory_spec = backend.needs_factory_spec
        self.injected: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._spawn_attempts: Dict[int, int] = {}

    def factory_spec(self) -> Optional[FactorySpec]:
        return self.backend.factory_spec()

    def host_key(self, shard: int) -> str:
        return self.backend.host_key(shard)

    def _rng(self, shard: int, direction: str) -> random.Random:
        return random.Random(
            stable_seed(self.seed, f"fabric-faults:{shard}:{direction}")
        )

    def start_worker(self, shard: int) -> WorkerHandle:
        budget = self.plan.spawn_budget(shard)
        if budget:
            attempts = self._spawn_attempts.get(shard, 0)
            if attempts < budget:
                self._spawn_attempts[shard] = attempts + 1
                with self._lock:
                    self.injected["spawn_failures"] = (
                        self.injected.get("spawn_failures", 0) + 1
                    )
                raise FabricError(
                    f"injected spawn failure {attempts + 1}/{budget} "
                    f"for shard {shard}"
                )
        handle = self.backend.start_worker(shard)
        kill = self.plan.kill_clause(shard)
        wedge = self.plan.wedge_clause(shard)
        w2c = self.plan.frame_clauses("w2c", shard)
        c2w = self.plan.frame_clauses("c2w", shard)

        rfile = handle.rfile
        if w2c or kill is not None or wedge is not None:
            read_fd, write_fd = os.pipe()
            _FramePump(
                src=handle.rfile, dst_fd=write_fd, clauses=w2c,
                rng=self._rng(shard, "w2c"), counters=self.injected,
                lock=self._lock, handle=handle, kill=kill, wedge=wedge,
                name=f"fault-pump-w2c-{shard}",
            ).start()
            rfile = os.fdopen(read_fd, "rb", buffering=0)

        wfile = handle.wfile
        if c2w:
            read_fd, write_fd = os.pipe()
            _FramePump(
                src=os.fdopen(read_fd, "rb", buffering=0),
                dst_fd=_dup_writer(handle.wfile),
                clauses=c2w,
                rng=self._rng(shard, "c2w"), counters=self.injected,
                lock=self._lock,
                name=f"fault-pump-c2w-{shard}",
            ).start()
            wfile = os.fdopen(write_fd, "wb", buffering=0)

        wrapped = WorkerHandle(
            rfile=rfile, wfile=wfile,
            process=handle.process, pid=handle.pid,
        )
        # Keep the real handle (and so its stream objects) alive for as
        # long as the coordinator holds the wrapper: the pumps read and
        # write those streams until EOF.
        wrapped.inner = handle
        return wrapped


def _dup_writer(stream: BinaryIO) -> int:
    """A raw dup of a write stream's fd for pump output (the pump writes
    with os.write; the original stream object stays owned by its
    handle)."""
    return os.dup(stream.fileno())
