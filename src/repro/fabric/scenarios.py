"""Importable scenario-factory builders for spawned fabric workers.

A forked worker inherits its scenario factory as a closure; a *spawned*
worker (subprocess, remote) starts from a fresh interpreter and builds
its factory from a :class:`~repro.fabric.worker.FactorySpec` — an import
path naming a builder here (or anywhere importable) plus keyword
arguments. Builders must be deterministic in their arguments: every
worker resolving the same spec must construct the same world, or the
fabric's byte-identity guarantee dissolves.

Two builders cover the common cases:

* :func:`replay_smoke` — a self-contained synthetic-site page-load
  sweep (the CI smoke scenario; needs nothing on disk).
* :func:`recorded_site` — page loads against a recorded folder (flat v2
  or CAS-backed v3), the production shape: ship the corpus with
  :mod:`repro.fabric.sync`, then point every worker's spec at it.
"""

from __future__ import annotations

import time

from repro.browser import Browser
from repro.core import HostMachine, ShellStack
from repro.measure.runner import ScenarioFactory
from repro.sim import Simulator

__all__ = [
    "recorded_site",
    "replay_smoke",
]


def replay_smoke(
    name: str = "fabricsmoke.com",
    seed: int = 11,
    n_origins: int = 3,
    scale: float = 0.4,
    pace: float = 0.0,
) -> ScenarioFactory:
    """Build the self-contained smoke factory: synthetic site, replayed.

    Identical in shape to the crash-recovery smoke's factory: one
    generated site, replayed through a fresh simulator per trial with
    the trial index as the seed. ``pace`` sleeps that many *wall* seconds
    per trial — it widens CI kill windows without touching virtual time,
    so it cannot perturb results.
    """
    from repro.corpus import generate_site

    site = generate_site(name, seed=seed, n_origins=n_origins, scale=scale)
    store = site.to_recorded_site()

    def factory(trial: int):
        if pace:
            time.sleep(pace)
        sim = Simulator(seed=trial)
        machine = HostMachine(sim)
        stack = ShellStack(machine)
        stack.add_replay(store)
        browser = Browser(sim, stack.transport, stack.resolver_endpoint,
                          machine=machine)
        return sim, browser.load(site.page)

    return factory


def recorded_site(
    directory: str,
    protocol: str = "http/1.1",
    single_server: bool = False,
) -> ScenarioFactory:
    """Build a page-load factory over a recorded folder on this host.

    The store is loaded once per worker (flat v2 and CAS-backed v3 both
    resolve transparently through :meth:`RecordedSite.load
    <repro.record.store.RecordedSite.load>`), then every trial replays
    it in a fresh simulator seeded with the trial index.
    """
    from repro.cli.common import page_from_recording
    from repro.record.store import RecordedSite

    store = RecordedSite.load(directory)
    page = page_from_recording(store)

    def factory(trial: int):
        sim = Simulator(seed=trial)
        machine = HostMachine(sim)
        stack = ShellStack(machine)
        stack.add_replay(store, single_server=single_server,
                         protocol=protocol)
        browser = Browser(sim, stack.transport, stack.resolver_endpoint,
                          machine=machine)
        return sim, browser.load(page)

    return factory
