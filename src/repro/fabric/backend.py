"""Fabric backends: interchangeable ways to get a worker process.

A backend answers exactly one question — *give me a live worker speaking
the fabric protocol over a stream pair* — and the coordinator never asks
anything else. Three implementations cover the deployment spectrum:

* :class:`LocalBackend` — ``fork()`` a worker that inherits the scenario
  factory closure directly. Zero serialization of the factory, fastest
  startup; the default for single-host campaigns.
* :class:`SubprocessBackend` — launch ``mm-fabric worker`` as a fresh
  interpreter wired over stdin/stdout pipes. The factory travels as a
  :class:`~repro.fabric.worker.FactorySpec` import path. This is the
  transport-equivalence proof: a worker that works here works anywhere
  a byte stream reaches.
* :class:`RemoteBackend` — the SSH-shaped transport: the same
  ``mm-fabric worker`` command line, launched through a user-supplied
  ``ssh``-like argv on another host. No remote-specific protocol —
  byte-identity across hosts falls out of determinism (DESIGN.md §6)
  plus the shared wire format.
"""

from __future__ import annotations

import multiprocessing
import os
import shlex
import subprocess
import sys
from typing import Any, BinaryIO, Optional, Sequence

from repro.errors import FabricError
from repro.fabric.worker import FactorySpec, worker_loop
from repro.measure.runner import ScenarioFactory

__all__ = [
    "FabricBackend",
    "LocalBackend",
    "RemoteBackend",
    "SubprocessBackend",
    "WorkerHandle",
]


class WorkerHandle:
    """The coordinator's grip on one live worker.

    Attributes:
        rfile: worker → coordinator stream (read outcomes here).
        wfile: coordinator → worker stream (write config/run here).
        pid: the worker's process id (None when unknowable).
    """

    def __init__(self, rfile: BinaryIO, wfile: BinaryIO,
                 process: Any, pid: Optional[int]) -> None:
        self.rfile = rfile
        self.wfile = wfile
        self.process = process
        self.pid = pid

    def alive(self) -> bool:
        """True while the worker process is still running."""
        if hasattr(self.process, "is_alive"):
            return bool(self.process.is_alive())
        return self.process.poll() is None

    def kill(self) -> None:
        """SIGKILL the worker (no cooperation required)."""
        try:
            self.process.kill()
        except (OSError, ValueError):
            pass

    def wait(self, timeout: Optional[float] = None) -> Optional[int]:
        """Reap the worker; returns its exit code where available (None
        when a ``timeout`` expires with the worker still running)."""
        if hasattr(self.process, "join"):
            self.process.join(timeout)
            return self.process.exitcode
        try:
            return self.process.wait(timeout)
        except subprocess.TimeoutExpired:
            return None

    def close(self) -> None:
        """Close both stream ends (idempotent, error-tolerant)."""
        for stream in (self.wfile, self.rfile):
            try:
                stream.close()
            except (OSError, ValueError):
                pass

    def __repr__(self) -> str:
        state = "alive" if self.alive() else "dead"
        return f"<WorkerHandle pid={self.pid} {state}>"


class FabricBackend:
    """The pluggable backend interface the coordinator programs against.

    Attributes:
        needs_factory_spec: True when workers are fresh processes that
            must receive a :class:`FactorySpec` in their config (they
            cannot inherit a closure).
    """

    needs_factory_spec = False

    def start_worker(self, shard: int) -> WorkerHandle:
        """Launch one worker for shard ``shard`` and return its handle.

        Implementations must hand the coordinator *unbuffered* streams
        (``buffering=0`` / ``bufsize=0``): the protocol's read/write
        deadlines select() on the raw fd, and a userspace buffer would
        hide ready bytes from them.
        """
        raise NotImplementedError

    def factory_spec(self) -> Optional[FactorySpec]:
        """The spec spawned workers resolve their factory from (None for
        backends whose workers inherit a closure)."""
        return None

    def host_key(self, shard: int) -> str:
        """The host this shard's worker lands on, for per-host health
        bookkeeping (:class:`~repro.fabric.health.HostHealth`). Local
        transports share one key; remote backends return their host."""
        return "local"


def _forked_worker_main(rfd: int, wfd: int, close_fds: Sequence[int],
                        factory: ScenarioFactory) -> None:
    """Child side of a LocalBackend fork: run the loop, exit hard.

    ``os._exit`` (not ``sys.exit``) so the forked child never runs the
    parent's atexit handlers or flushes the parent's inherited buffers.
    """
    for fd in close_fds:  # drop the parent's pipe ends we inherited
        try:
            os.close(fd)
        except OSError:
            pass
    status = 1
    try:
        with os.fdopen(rfd, "rb") as rfile, os.fdopen(wfd, "wb") as wfile:
            status = worker_loop(rfile, wfile, factory=factory)
    finally:
        os._exit(status)


class LocalBackend(FabricBackend):
    """Fork workers that inherit the scenario factory closure.

    Args:
        factory: the scenario factory, shared with every forked worker
            by address-space inheritance (no pickling, closures welcome).

    Raises:
        FabricError: on platforms without ``fork`` (use
            :class:`SubprocessBackend` there).
    """

    needs_factory_spec = False

    def __init__(self, factory: ScenarioFactory) -> None:
        if "fork" not in multiprocessing.get_all_start_methods():
            raise FabricError(
                "LocalBackend needs fork(); use SubprocessBackend on "
                "this platform"
            )
        self.factory = factory

    def start_worker(self, shard: int) -> WorkerHandle:
        c2w_read, c2w_write = os.pipe()  # coordinator -> worker
        w2c_read, w2c_write = os.pipe()  # worker -> coordinator
        context = multiprocessing.get_context("fork")
        process = context.Process(
            target=_forked_worker_main,
            args=(c2w_read, w2c_write, (c2w_write, w2c_read), self.factory),
            name=f"fabric-shard{shard}",
        )
        process.start()
        os.close(c2w_read)
        os.close(w2c_write)
        return WorkerHandle(
            rfile=os.fdopen(w2c_read, "rb", buffering=0),
            wfile=os.fdopen(c2w_write, "wb", buffering=0),
            process=process,
            pid=process.pid,
        )


def worker_command(python: str = "python3") -> list:
    """The canonical worker argv: ``<python> -m repro.cli.mm_fabric worker``.

    One command line shared by the subprocess and remote backends — the
    ISSUE's "same worker binary under every transport" in one place.
    """
    return [python, "-m", "repro.cli.mm_fabric", "worker"]


def _pythonpath_env() -> dict:
    """This interpreter's environment with ``repro``'s source root on
    PYTHONPATH, so a spawned ``-m repro.cli.mm_fabric`` resolves even
    when the package is not installed (the checkout-only case)."""
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not existing
        else src_root + os.pathsep + existing
    )
    return env


class SubprocessBackend(FabricBackend):
    """Launch ``mm-fabric worker`` children over stdin/stdout pipes.

    Args:
        spec: the factory spec spawned workers build their scenario
            factory from.
        python: interpreter for the worker (default: this one).
    """

    needs_factory_spec = True

    def __init__(self, spec: FactorySpec,
                 python: Optional[str] = None) -> None:
        self.spec = spec
        self.python = python or sys.executable

    def factory_spec(self) -> Optional[FactorySpec]:
        return self.spec

    def start_worker(self, shard: int) -> WorkerHandle:
        try:
            process = subprocess.Popen(
                worker_command(self.python),
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                bufsize=0,
                env=_pythonpath_env(),
            )
        except OSError as exc:
            raise FabricError(
                f"cannot launch worker subprocess: {exc}") from exc
        return WorkerHandle(
            rfile=process.stdout, wfile=process.stdin,
            process=process, pid=process.pid,
        )


class RemoteBackend(FabricBackend):
    """The SSH-shaped transport: the same worker command on another host.

    The worker is launched as ``[*ssh_command, host, <remote command>]``
    — with the default ``ssh_command=("ssh",)`` that is plain
    ``ssh host 'python3 -m repro.cli.mm_fabric worker'``, speaking the
    identical wire protocol over the ssh channel's stdio. Tests swap in
    a fake ``ssh`` executable to prove transport equivalence without a
    network; real deployments additionally want the corpus shipped first
    (:mod:`repro.fabric.sync`).

    Args:
        host: the remote host name (passed to ``ssh_command`` verbatim).
        spec: the factory spec for the remote worker.
        ssh_command: argv prefix for the transport (default ``("ssh",)``).
        python: remote interpreter (default ``python3``).
        remote_pythonpath: when set, exported before the worker command
            so a checkout-only remote can resolve ``repro``.
    """

    needs_factory_spec = True

    def __init__(
        self,
        host: str,
        spec: FactorySpec,
        ssh_command: Sequence[str] = ("ssh",),
        python: str = "python3",
        remote_pythonpath: Optional[str] = None,
    ) -> None:
        self.host = host
        self.spec = spec
        self.ssh_command = list(ssh_command)
        self.python = python
        self.remote_pythonpath = remote_pythonpath

    def factory_spec(self) -> Optional[FactorySpec]:
        return self.spec

    def host_key(self, shard: int) -> str:
        return self.host

    def remote_command(self) -> str:
        """The shell command executed on the remote host."""
        command = shlex.join(worker_command(self.python))
        if self.remote_pythonpath:
            command = (
                f"PYTHONPATH={shlex.quote(self.remote_pythonpath)} "
                + command
            )
        return command

    def start_worker(self, shard: int) -> WorkerHandle:
        argv = [*self.ssh_command, self.host, self.remote_command()]
        try:
            process = subprocess.Popen(
                argv,
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                bufsize=0,
            )
        except OSError as exc:
            raise FabricError(
                f"cannot launch remote worker via "
                f"{self.ssh_command!r}: {exc}") from exc
        return WorkerHandle(
            rfile=process.stdout, wfile=process.stdin,
            process=process, pid=process.pid,
        )
