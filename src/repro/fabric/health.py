"""Liveness and degradation policy for the fabric.

Three small, independently testable pieces that the coordinator and
worker compose into the fabric's fault tolerance:

* :class:`BackoffPolicy` — capped exponential backoff with seeded
  jitter for spawn/connect retries. Seeded so a chaos run's retry
  timing is reproducible (the same reason every other knob in this
  repo takes a seed).
* :class:`HeartbeatSender` — a worker-side daemon thread that writes
  ``heartbeat`` frames on a wall-clock period, sharing a lock with the
  outcome writer so frames never interleave. This is what lets the
  coordinator tell a *slow* worker (trial still computing, heart still
  beating) from a *wedged* one (accepted work, went silent).
* :class:`HostHealth` — per-host crash bookkeeping with quarantine:
  after ``quarantine_after`` consecutive crashes a host stops receiving
  respawns and the sweep degrades to fewer shards instead of aborting.
  A success resets the host's streak (crashes must be *consecutive* —
  one flaky trial on a good host is not grounds for eviction).

None of this touches the simulated world: heartbeat periods and backoff
sleeps are harness wall-clock time, invisible to virtual time, so every
mechanism here preserves byte-identity of the measured results.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, BinaryIO, Callable, Dict, Optional

from repro.fabric.protocol import write_message
from repro.sim.random import stable_seed

__all__ = [
    "BackoffPolicy",
    "HeartbeatSender",
    "HostHealth",
]

#: Default wall-clock seconds between worker heartbeats. Chosen well
#: under the default progress deadline so several beats fit inside one
#: watchdog window.
DEFAULT_HEARTBEAT = 2.0


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff with seeded jitter.

    Delay for attempt ``k`` (0-based) is ``base * 2**k``, capped at
    ``cap``, then multiplied by a jitter factor drawn uniformly from
    ``[1 - jitter, 1 + jitter]`` by a :class:`random.Random` seeded per
    policy — never the global RNG, and never the simulation's.

    Args:
        base: first-retry delay in seconds.
        cap: upper bound on the un-jittered delay.
        jitter: half-width of the jitter band (0 disables it).
        seed: jitter RNG seed.
    """

    base: float = 0.05
    cap: float = 2.0
    jitter: float = 0.25
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False, compare=False,
                                default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ValueError(f"backoff base must be positive, got {self.base}")
        if self.cap < self.base:
            raise ValueError(
                f"backoff cap {self.cap} below base {self.base}"
            )
        if not 0 <= self.jitter < 1:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        object.__setattr__(
            self, "_rng",
            random.Random(stable_seed(self.seed, "fabric-backoff")))

    def delay(self, attempt: int) -> float:
        """The sleep before retry ``attempt`` (0-based), jittered."""
        raw = min(self.base * (2 ** attempt), self.cap)
        if not self.jitter:
            return raw
        return raw * self._rng.uniform(1 - self.jitter, 1 + self.jitter)

    def sleep(self, attempt: int,
              clock: Callable[[float], None] = time.sleep) -> float:
        """Sleep for :meth:`delay` and return the slept duration."""
        duration = self.delay(attempt)
        clock(duration)
        return duration


class HeartbeatSender:
    """Worker-side liveness pulse.

    A daemon thread that writes a ``heartbeat`` frame every ``interval``
    wall seconds. The caller's ``lock`` must be the same one guarding
    outcome/done writes so frames never interleave on the wire. Beats
    continue *during* a long trial (the trial runs on the main thread),
    which is precisely the signal that distinguishes slow from wedged.

    Write failures stop the sender silently: a dead coordinator pipe is
    discovered — loudly — by the main conversation loop, not here.
    """

    def __init__(self, stream: BinaryIO, lock: threading.Lock,
                 interval: float = DEFAULT_HEARTBEAT,
                 payload: Optional[Dict[str, Any]] = None) -> None:
        if interval <= 0:
            raise ValueError(
                f"heartbeat interval must be positive, got {interval}"
            )
        self._stream = stream
        self._lock = lock
        self._interval = interval
        self._payload = dict(payload or {})
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="fabric-heartbeat")
        self.sent = 0

    def start(self) -> "HeartbeatSender":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "HeartbeatSender":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                with self._lock:
                    write_message(
                        self._stream, ("heartbeat", dict(self._payload))
                    )
                self.sent += 1
            except Exception:
                return


class HostHealth:
    """Per-host crash streaks and quarantine.

    The coordinator records every spawn/crash outcome here keyed by the
    backend's ``host_key`` for the shard. ``quarantine_after``
    *consecutive* crashes evicts the host: :meth:`usable` turns false
    and the coordinator degrades to the remaining hosts (or, when every
    host is out, fewer shards) instead of burning its retry budget on a
    dead machine. Any success resets the streak.
    """

    def __init__(self, quarantine_after: int = 3) -> None:
        if quarantine_after < 1:
            raise ValueError(
                f"quarantine_after must be >= 1, got {quarantine_after}"
            )
        self.quarantine_after = quarantine_after
        self._streaks: Dict[str, int] = {}
        self._quarantined: Dict[str, int] = {}

    def record_success(self, host: str) -> None:
        """A worker on ``host`` made progress; forgive its streak."""
        self._streaks[host] = 0

    def record_crash(self, host: str) -> bool:
        """A worker on ``host`` crashed or failed to spawn.

        Returns True when this crash tips the host into quarantine.
        """
        streak = self._streaks.get(host, 0) + 1
        self._streaks[host] = streak
        if streak >= self.quarantine_after and host not in self._quarantined:
            self._quarantined[host] = streak
            return True
        return False

    def usable(self, host: str) -> bool:
        return host not in self._quarantined

    @property
    def quarantined(self) -> Dict[str, int]:
        """Quarantined hosts mapped to the crash streak that evicted
        them (insertion-ordered, for FabricResult reporting)."""
        return dict(self._quarantined)
