"""The distributed measurement fabric.

One coordinator (:func:`~repro.fabric.coordinator.run_fabric`) shards a
sweep's trial indices across worker processes obtained from a pluggable
:class:`~repro.fabric.backend.FabricBackend` — forked locally, spawned
as ``mm-fabric worker`` subprocesses, or launched through an SSH-shaped
transport — all speaking one length-prefixed, checksummed wire protocol
(:mod:`~repro.fabric.protocol`). Because trials are deterministic pure
functions of their index, the merged result is **byte-identical** to a
serial :func:`~repro.measure.supervise.run_supervised` of the same sweep
— same sample, same combined event-stream digest, same rewritten journal
— for any shard count and any backend.

The identity holds *under partial failure*, not just in its absence:
protocol read/write deadlines and bounded resync
(:mod:`~repro.fabric.protocol`), worker heartbeats and host quarantine
(:mod:`~repro.fabric.health`), redelivery of outcomes the wire ate, and
speculative re-execution of stragglers (:mod:`~repro.fabric.coordinator`)
— each proven by the deterministic harness-fault injector
(:mod:`~repro.fabric.faults`, the chaos plan's harness-side sibling).

Recorded corpora travel to workers as site manifests plus the
missing-blob delta against the content-addressed store
(:mod:`repro.fabric.sync`, :mod:`repro.record.cas`).

This package is *harness* domain: wall clocks, processes, and pipes are
all legitimate here — nothing in it runs inside a simulated world.
"""

from repro.fabric.backend import (
    FabricBackend,
    LocalBackend,
    RemoteBackend,
    SubprocessBackend,
    WorkerHandle,
)
from repro.fabric.coordinator import FabricResult, run_fabric
from repro.fabric.faults import (
    FabricFaultPlan,
    FaultyBackend,
    FrameFault,
    KillWorker,
    SpawnFault,
    WedgeWorker,
)
from repro.fabric.health import BackoffPolicy, HeartbeatSender, HostHealth
from repro.fabric.protocol import PROTOCOL_VERSION, read_message, write_message
from repro.fabric.sync import ShipReport, ship_corpus, ship_site
from repro.fabric.worker import FactorySpec, run_shard, worker_loop

__all__ = [
    "BackoffPolicy",
    "FabricBackend",
    "FabricFaultPlan",
    "FabricResult",
    "FactorySpec",
    "FaultyBackend",
    "FrameFault",
    "HeartbeatSender",
    "HostHealth",
    "KillWorker",
    "LocalBackend",
    "PROTOCOL_VERSION",
    "RemoteBackend",
    "ShipReport",
    "SpawnFault",
    "SubprocessBackend",
    "WedgeWorker",
    "WorkerHandle",
    "read_message",
    "run_fabric",
    "run_shard",
    "ship_corpus",
    "ship_site",
    "worker_loop",
    "write_message",
]
