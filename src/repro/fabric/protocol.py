"""The fabric wire protocol: length-prefixed, checksummed frames.

Every fabric backend — forked local workers, ``mm-fabric worker``
subprocesses, SSH-shaped remote workers — speaks exactly this protocol
over a byte stream, so the coordinator cannot tell backends apart and a
worker binary works unchanged across all of them (the IoTreeplay shape:
one coordinator, interchangeable transports).

Frame layout (all integers big-endian)::

    MAGIC (4B) | length (4B) | blake2b-8 of payload (8B) | payload

The payload is a pickled ``(kind, data)`` message tuple. The checksum
makes a corrupted transport (a truncated pipe, line noise on a remote
link) a loud :class:`~repro.errors.ProtocolError` naming what went wrong
instead of a pickle crash deep in a worker; the magic catches streams
that are not speaking the protocol at all (an ssh banner, a stray print
to stdout inside a worker).

Message vocabulary (coordinator ↔ worker)::

    worker → coordinator:  ("hello",   {"protocol", "pid"})
    coordinator → worker:  ("config",  {...})      # see worker.py
    coordinator → worker:  ("run",     [trial indices])
    worker → coordinator:  ("outcome", TrialOutcome)
    worker → coordinator:  ("done",    {"trials": n})
    worker → coordinator:  ("error",   message string)

A clean EOF at a frame boundary raises :class:`EOFError` (the normal
end-of-worker signal); EOF *inside* a frame is a :class:`ProtocolError`
(the worker died mid-send).
"""

from __future__ import annotations

import hashlib
import pickle
import struct
from typing import Any, BinaryIO, Tuple

from repro.errors import ProtocolError

__all__ = [
    "PROTOCOL_VERSION",
    "read_message",
    "write_message",
]

#: Bumped on any incompatible frame or vocabulary change; the hello
#: handshake refuses a mismatch instead of guessing.
PROTOCOL_VERSION = 1

_MAGIC = b"MMFB"
_HEADER = struct.Struct(">4sI8s")
_CHECKSUM_SIZE = 8

#: Refuse absurd frames before allocating for them (a corrupted length
#: prefix must not become a 4 GiB read).
MAX_FRAME = 256 * 1024 * 1024


def _checksum(payload: bytes) -> bytes:
    return hashlib.blake2b(payload, digest_size=_CHECKSUM_SIZE).digest()


def write_message(stream: BinaryIO, message: Tuple[str, Any]) -> None:
    """Frame and send one ``(kind, data)`` message (flushed)."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    stream.write(_HEADER.pack(_MAGIC, len(payload), _checksum(payload)))
    stream.write(payload)
    stream.flush()


def _read_exact(stream: BinaryIO, n: int, context: str) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            if chunks or context == "frame body":
                raise ProtocolError(
                    f"stream ended inside a {context}: got "
                    f"{n - remaining} of {n} bytes"
                )
            raise EOFError("fabric stream closed at a frame boundary")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_message(stream: BinaryIO) -> Tuple[str, Any]:
    """Read one framed message.

    Raises:
        EOFError: clean end of stream (no partial frame).
        ProtocolError: bad magic, bad checksum, oversized or truncated
            frame, or an unpicklable payload.
    """
    header = _read_exact(stream, _HEADER.size, "frame header")
    magic, length, checksum = _HEADER.unpack(header)
    if magic != _MAGIC:
        raise ProtocolError(
            f"bad frame magic {magic!r} (stream is not speaking the "
            f"fabric protocol)"
        )
    if length > MAX_FRAME:
        raise ProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME}-byte cap "
            f"(corrupted length prefix?)"
        )
    payload = _read_exact(stream, length, "frame body")
    if _checksum(payload) != checksum:
        raise ProtocolError(
            f"frame checksum mismatch over {length} payload bytes"
        )
    try:
        message = pickle.loads(payload)
    except Exception as exc:
        raise ProtocolError(f"unpicklable frame payload: {exc}") from exc
    if (not isinstance(message, tuple) or len(message) != 2
            or not isinstance(message[0], str)):
        raise ProtocolError(
            f"malformed message {type(message).__name__} (expected a "
            f"(kind, data) tuple)"
        )
    return message
