"""The fabric wire protocol: length-prefixed, checksummed frames.

Every fabric backend — forked local workers, ``mm-fabric worker``
subprocesses, SSH-shaped remote workers — speaks exactly this protocol
over a byte stream, so the coordinator cannot tell backends apart and a
worker binary works unchanged across all of them (the IoTreeplay shape:
one coordinator, interchangeable transports).

Frame layout (all integers big-endian)::

    MAGIC (4B) | length (4B) | blake2b-8 of payload (8B) | payload

The payload is a pickled ``(kind, data)`` message tuple. The checksum
makes a corrupted transport (a truncated pipe, line noise on a remote
link) a loud :class:`~repro.errors.ProtocolError` naming what went wrong
instead of a pickle crash deep in a worker; the magic catches streams
that are not speaking the protocol at all (an ssh banner, a stray print
to stdout inside a worker).

Message vocabulary (coordinator ↔ worker), protocol version 2::

    worker → coordinator:  ("hello",     {"protocol", "pid"})
    coordinator → worker:  ("config",    {...})      # see worker.py
    coordinator → worker:  ("run",       [trial indices])   # repeatable
    worker → coordinator:  ("heartbeat", {"pid"})    # liveness, any time
    worker → coordinator:  ("outcome",   TrialOutcome)
    worker → coordinator:  ("done",      {"trials": n, "batch": i})
    coordinator → worker:  ("shutdown",  None)       # conversation over
    worker → coordinator:  ("error",     message string)

Version 2 turned the conversation into a *batch loop*: after ``done``
the worker blocks for either another ``run`` (reassigned or speculative
trials) or ``shutdown``; heartbeats flow on a wall-clock timer between —
and during — trials, so a coordinator can tell a slow worker (beating)
from a wedged one (silent).

A clean EOF at a frame boundary raises :class:`EOFError` (the normal
end-of-worker signal); EOF *inside* a frame is a :class:`ProtocolError`
(the worker died mid-send).

**Deadlines.** :func:`read_message` and :func:`write_message` accept a
``timeout`` (wall seconds for the whole frame). On expiry they raise
:class:`~repro.errors.ProtocolTimeout` — a half-open connection (peer
host dead, transport process alive) can therefore never hang the caller.
Deadlines need an *unbuffered* stream with a real file descriptor (the
backends open their pipe ends with ``buffering=0``); on buffered or
in-memory streams the timeout is ignored and the read blocks, which is
fine for the in-process test harnesses that use them.

**Resync.** A corrupted frame normally kills the conversation. With
``resync=N``, :func:`read_message` instead survives up to ``N`` bad
frames per call: a checksum mismatch skips that frame (its boundary is
still intact — length was read before the damage was detected) and a bad
magic scans forward at most :data:`MAX_RESYNC_SCAN` bytes for the next
``MMFB`` marker. Every recovery is counted in the caller's ``stats``
dict (``"resyncs"``), and the *content* lost with a skipped frame is
recovered one level up: the worker's ``done`` message names how many
trials it ran, so the coordinator redelivers any outcome the wire ate.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
import select
import struct
import time
from typing import Any, BinaryIO, Dict, Optional, Tuple

from repro.errors import ProtocolError, ProtocolTimeout

__all__ = [
    "MAX_FRAME",
    "MAX_RESYNC_SCAN",
    "PROTOCOL_VERSION",
    "read_message",
    "write_message",
]

#: Bumped on any incompatible frame or vocabulary change; the hello
#: handshake refuses a mismatch instead of guessing. v2: batch loop
#: (repeatable ``run`` / per-batch ``done``), ``heartbeat``/``shutdown``.
PROTOCOL_VERSION = 2

_MAGIC = b"MMFB"
_HEADER = struct.Struct(">4sI8s")
_CHECKSUM_SIZE = 8

#: Refuse absurd frames before allocating for them (a corrupted length
#: prefix must not become a 4 GiB read).
MAX_FRAME = 256 * 1024 * 1024

#: How far past a bad magic a resyncing reader will scan for the next
#: frame marker before giving up (bounds the damage a garbage flood can
#: do to the coordinator's memory and time).
MAX_RESYNC_SCAN = 1024 * 1024


def _checksum(payload: bytes) -> bytes:
    return hashlib.blake2b(payload, digest_size=_CHECKSUM_SIZE).digest()


def _deadline(timeout: Optional[float]) -> Optional[float]:
    return None if timeout is None else time.monotonic() + timeout


def _selectable_fd(stream: BinaryIO) -> Optional[int]:
    """The stream's fd when select() is accurate for it, else None.

    A buffered stream may hold bytes in userspace that select cannot
    see, so deadlines are only enforced on raw (unbuffered) streams —
    which is how the backends open every coordinator-side pipe end.
    """
    if isinstance(stream, (io.BufferedIOBase, io.TextIOBase)):
        return None
    try:
        return stream.fileno()
    except (AttributeError, OSError, ValueError, io.UnsupportedOperation):
        return None


def _wait_readable(fd: Optional[int], deadline: Optional[float],
                   context: str) -> None:
    if fd is None or deadline is None:
        return
    remaining = deadline - time.monotonic()
    if remaining <= 0 or not select.select([fd], [], [], remaining)[0]:
        raise ProtocolTimeout(
            f"read deadline expired waiting for a {context}"
        )


def write_message(stream: BinaryIO, message: Tuple[str, Any],
                  timeout: Optional[float] = None) -> None:
    """Frame and send one ``(kind, data)`` message (flushed).

    Args:
        stream: the peer-bound byte stream.
        message: the ``(kind, data)`` tuple to frame.
        timeout: wall seconds for the whole frame to enter the pipe.
            A peer that stopped reading (wedged worker, full buffer on a
            half-open transport) then raises
            :class:`~repro.errors.ProtocolTimeout` instead of blocking
            the caller forever. Needs an unbuffered stream; ignored
            otherwise.
    """
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    frame = _HEADER.pack(_MAGIC, len(payload), _checksum(payload)) + payload
    fd = _selectable_fd(stream) if timeout is not None else None
    if fd is None:
        stream.write(frame)
        stream.flush()
        return
    # Deadline path: non-blocking writes against the raw fd, waiting for
    # writability between chunks. A blocking write of a frame larger
    # than the pipe buffer could otherwise sleep past any deadline.
    deadline = _deadline(timeout)
    view = memoryview(frame)
    sent = 0
    blocking = os.get_blocking(fd)
    try:
        os.set_blocking(fd, False)
        while sent < len(frame):
            assert deadline is not None
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not select.select([], [fd], [],
                                                   remaining)[1]:
                raise ProtocolTimeout(
                    f"write deadline expired with {len(frame) - sent} of "
                    f"{len(frame)} frame bytes unsent (peer not reading)"
                )
            try:
                sent += os.write(fd, view[sent:])
            except BlockingIOError:
                continue
    finally:
        os.set_blocking(fd, blocking)


def _read_exact(stream: BinaryIO, n: int, context: str,
                deadline: Optional[float], fd: Optional[int]) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        _wait_readable(fd, deadline, context)
        chunk = stream.read(remaining)
        if not chunk:
            if chunks or context == "frame body":
                raise ProtocolError(
                    f"stream ended inside a {context}: got "
                    f"{n - remaining} of {n} bytes"
                )
            raise EOFError("fabric stream closed at a frame boundary")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _scan_for_magic(stream: BinaryIO, head: bytes,
                    deadline: Optional[float], fd: Optional[int]) -> bytes:
    """Recover a frame boundary: find the next MAGIC and return the
    re-aligned header bytes. Raises ProtocolError when no marker appears
    within :data:`MAX_RESYNC_SCAN` bytes."""
    buffer = head
    scanned = 0
    while True:
        at = buffer.find(_MAGIC)
        if at >= 0:
            buffer = buffer[at:]
            if len(buffer) < _HEADER.size:
                buffer += _read_exact(stream, _HEADER.size - len(buffer),
                                      "frame header", deadline, fd)
            return buffer
        # Keep a window of len(MAGIC)-1 bytes in case the marker spans
        # the chunk boundary.
        scanned += max(0, len(buffer) - (len(_MAGIC) - 1))
        if scanned > MAX_RESYNC_SCAN:
            raise ProtocolError(
                f"no frame marker within {MAX_RESYNC_SCAN} bytes of "
                f"garbage (resync abandoned)"
            )
        buffer = buffer[-(len(_MAGIC) - 1):] if buffer else b""
        _wait_readable(fd, deadline, "resync scan")
        chunk = stream.read(4096)
        if not chunk:
            raise ProtocolError(
                "stream ended while scanning for a frame marker"
            )
        buffer += chunk


def read_message(stream: BinaryIO, timeout: Optional[float] = None,
                 resync: int = 0,
                 stats: Optional[Dict[str, int]] = None) -> Tuple[str, Any]:
    """Read one framed message.

    Args:
        stream: the peer's byte stream.
        timeout: wall seconds for the whole frame (header through
            payload). Expiry raises
            :class:`~repro.errors.ProtocolTimeout`. Needs an unbuffered
            stream with a file descriptor; ignored otherwise.
        resync: how many damaged frames this call may survive: a
            checksum mismatch skips the frame, a bad magic scans forward
            (at most :data:`MAX_RESYNC_SCAN` bytes) for the next one.
            ``0`` keeps the strict fail-fast behaviour.
        stats: when given, ``stats["resyncs"]`` is incremented per
            recovery, so callers can surface wire damage as a counter.

    Raises:
        EOFError: clean end of stream (no partial frame).
        ProtocolTimeout: the deadline expired mid-read.
        ProtocolError: bad magic, bad checksum, oversized or truncated
            frame, or an unpicklable payload (after ``resync`` damaged
            frames, where allowed).
    """
    deadline = _deadline(timeout)
    fd = _selectable_fd(stream) if timeout is not None else None
    budget = resync
    # Resync scans read in chunks and can overshoot past the next frame
    # header; ``leftover`` holds those already-consumed bytes so nothing
    # on the wire is lost or double-read.
    leftover = b""

    def take(n: int, context: str) -> bytes:
        nonlocal leftover
        if len(leftover) >= n:
            part, leftover = leftover[:n], leftover[n:]
            return part
        part, leftover = leftover, b""
        if not part:
            return _read_exact(stream, n, context, deadline, fd)
        try:
            return part + _read_exact(stream, n - len(part), context,
                                      deadline, fd)
        except EOFError:
            raise ProtocolError(
                f"stream ended inside a {context}: got {len(part)} of "
                f"{n} bytes"
            ) from None

    header = take(_HEADER.size, "frame header")
    while True:
        magic, length, checksum = _HEADER.unpack(header)
        if magic != _MAGIC:
            if budget <= 0:
                raise ProtocolError(
                    f"bad frame magic {magic!r} (stream is not speaking "
                    f"the fabric protocol)"
                )
            budget -= 1
            if stats is not None:
                stats["resyncs"] = stats.get("resyncs", 0) + 1
            buffer = _scan_for_magic(stream, header[1:] + leftover,
                                     deadline, fd)
            leftover = b""
            header, leftover = buffer[:_HEADER.size], buffer[_HEADER.size:]
            continue
        if length > MAX_FRAME:
            raise ProtocolError(
                f"frame length {length} exceeds the {MAX_FRAME}-byte cap "
                f"(corrupted length prefix?)"
            )
        payload = take(length, "frame body")
        if _checksum(payload) != checksum:
            if budget <= 0:
                raise ProtocolError(
                    f"frame checksum mismatch over {length} payload bytes"
                )
            # The boundary is intact (length was trusted and verified by
            # position); drop the damaged frame and read the next one.
            budget -= 1
            if stats is not None:
                stats["resyncs"] = stats.get("resyncs", 0) + 1
            header = take(_HEADER.size, "frame header")
            continue
        try:
            message = pickle.loads(payload)
        except Exception as exc:
            raise ProtocolError(f"unpicklable frame payload: {exc}") from exc
        if (not isinstance(message, tuple) or len(message) != 2
                or not isinstance(message[0], str)):
            raise ProtocolError(
                f"malformed message {type(message).__name__} (expected a "
                f"(kind, data) tuple)"
            )
        return message
