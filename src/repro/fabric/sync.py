"""Corpus shipping: manifest + missing-blob delta.

A recorded corpus travels to fabric workers in two unequal parts. The
*site folders* (``site.json`` manifests and pair files) are small and
always copied whole. The *bodies* live in the content-addressed store
(:mod:`repro.record.cas`), so a destination that already holds a blob —
from a previous campaign, another site in the same corpus, or any
recording that ever contained the same bytes — never receives it again:
the shipment is exactly the missing-blob delta, computed from the CAS
addresses the site's pair files reference.

Everything here is plain directory-to-directory I/O: run it locally, over
a mounted remote filesystem, or as the unit an rsync/scp step carries.
Every imported blob re-verifies against its address on arrival
(:meth:`CasStore.import_blob <repro.record.cas.CasStore.import_blob>`),
so a corrupted transfer is caught at the destination, not at replay time.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.errors import StoreFormatError
from repro.fsutil import atomic_write_bytes, fsync_dir
from repro.obs.registry import MetricsRegistry
from repro.record.cas import CasStore, missing_blobs
from repro.record.store import read_manifest, site_blob_refs, site_cas

__all__ = [
    "ShipReport",
    "corpus_site_dirs",
    "ship_corpus",
    "ship_site",
]


@dataclass
class ShipReport:
    """What one shipment moved and what it skipped.

    Attributes:
        sites: site folders copied.
        refs: distinct CAS references across the shipped sites.
        blobs_transferred: blobs the destination was missing.
        blobs_deduped: referenced blobs the destination already held.
        bytes_transferred: raw body bytes actually moved.
    """

    sites: int = 0
    refs: int = 0
    blobs_transferred: int = 0
    blobs_deduped: int = 0
    bytes_transferred: int = 0
    shipped_sites: List[str] = field(default_factory=list)

    def merge(self, other: "ShipReport") -> None:
        self.sites += other.sites
        self.refs += other.refs
        self.blobs_transferred += other.blobs_transferred
        self.blobs_deduped += other.blobs_deduped
        self.bytes_transferred += other.bytes_transferred
        self.shipped_sites.extend(other.shipped_sites)

    def __repr__(self) -> str:
        return (
            f"<ShipReport sites={self.sites} refs={self.refs} "
            f"transferred={self.blobs_transferred} "
            f"deduped={self.blobs_deduped} "
            f"bytes={self.bytes_transferred}>"
        )


def corpus_site_dirs(corpus_dir: Any) -> List[str]:
    """The site folders directly under a corpus directory (sorted).

    A site folder is any subdirectory holding a ``site.json``; other
    entries (the shared ``.cas`` tree, journals, loose files) are not
    sites and are skipped.
    """
    corpus_dir = os.fspath(corpus_dir)
    sites = []
    for name in sorted(os.listdir(corpus_dir)):
        path = os.path.join(corpus_dir, name)
        if os.path.isdir(path) and \
                os.path.exists(os.path.join(path, "site.json")):
            sites.append(path)
    return sites


def ship_site(
    source_dir: Any,
    dest_dir: Any,
    dest_cas: Optional[CasStore] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> ShipReport:
    """Ship one recorded site folder; move only the missing blobs.

    The manifest and pair files are always (re)copied — they are the
    cheap part and carry the site's identity. For a v3 site, referenced
    blobs already present in ``dest_cas`` are skipped; the rest are read
    from the source CAS and imported (verified) into the destination.
    The shipped ``site.json`` is rewritten so its ``"cas"`` key points
    at ``dest_cas`` relative to the destination folder.

    Args:
        source_dir: the site folder to ship.
        dest_dir: where the site folder lands (created; pair files are
            replaced atomically).
        dest_cas: the destination's CAS. Required for v3 sites; ignored
            for flat v2/v1 sites (they carry their bodies inline).
        metrics: counts land under ``fabric.blobs_*`` when given.

    Returns:
        A :class:`ShipReport` for this one site.

    Raises:
        StoreFormatError: a v3 source with no ``dest_cas`` to land in.
    """
    source_dir = os.fspath(source_dir)
    dest_dir = os.fspath(dest_dir)
    metadata = read_manifest(source_dir)
    report = ShipReport(sites=1, shipped_sites=[dest_dir])
    is_v3 = metadata.get("format_version") == 3

    refs: List[str] = []
    if is_v3:
        if dest_cas is None:
            raise StoreFormatError(
                f"{source_dir} is format v3; shipping it needs a "
                f"destination CAS"
            )
        source_cas = site_cas(source_dir, metadata)
        refs = site_blob_refs(source_dir)
        report.refs = len(refs)
        missing = set(missing_blobs(refs, dest_cas))
        # Blobs land before any pair file that references them — the
        # same durability ordering RecordedSite.save(cas=...) keeps.
        for ref in refs:
            if ref in missing:
                data = source_cas.get(ref)
                dest_cas.import_blob(ref, data)
                report.blobs_transferred += 1
                report.bytes_transferred += len(data)
            else:
                report.blobs_deduped += 1

    os.makedirs(dest_dir, exist_ok=True)
    entries = metadata.get("pairs")
    if isinstance(entries, list):
        pair_files = [e.get("file") for e in entries
                      if isinstance(e, dict) and isinstance(e.get("file"), str)]
    else:  # v1: no manifest — ship every pair file on disk
        pair_files = sorted(
            f for f in os.listdir(source_dir)
            if f.startswith("pair-") and not f.endswith(".tmp")
        )
    for filename in pair_files:
        shutil.copyfile(os.path.join(source_dir, filename),
                        os.path.join(dest_dir, filename))
    if is_v3:
        metadata = dict(metadata)
        metadata["cas"] = os.path.relpath(dest_cas.root, dest_dir)
    atomic_write_bytes(
        os.path.join(dest_dir, "site.json"),
        json.dumps(metadata, indent=2, sort_keys=True).encode("utf-8"),
    )
    fsync_dir(dest_dir)

    if metrics is not None:
        metrics.counter("fabric.blobs_transferred").add(
            report.blobs_transferred)
        metrics.counter("fabric.blobs_deduped").add(report.blobs_deduped)
        metrics.counter("fabric.blob_bytes_transferred").add(
            report.bytes_transferred)
    return report


def ship_corpus(
    source_dir: Any,
    dest_dir: Any,
    metrics: Optional[MetricsRegistry] = None,
) -> ShipReport:
    """Ship every site of a corpus into ``dest_dir``.

    Sites land under their source names; v3 sites share one destination
    CAS at ``<dest_dir>/.cas``, so cross-site duplicates transfer once
    — the delta shrinks with every site shipped.
    """
    source_dir = os.fspath(source_dir)
    dest_dir = os.fspath(dest_dir)
    os.makedirs(dest_dir, exist_ok=True)
    dest_cas = CasStore(os.path.join(dest_dir, ".cas"))
    total = ShipReport()
    for site_dir in corpus_site_dirs(source_dir):
        name = os.path.basename(site_dir)
        total.merge(ship_site(site_dir, os.path.join(dest_dir, name),
                              dest_cas=dest_cas, metrics=metrics))
    return total
