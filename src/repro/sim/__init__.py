"""Discrete-event simulation kernel.

Everything in the reproduction runs on a single virtual clock owned by a
:class:`~repro.sim.simulator.Simulator`. Components never sleep or read wall
time; they schedule callbacks. Determinism is guaranteed by (a) a stable
tie-break on simultaneous events and (b) named, seeded random streams from
:class:`~repro.sim.random.RandomStreams`.
"""

from repro.sim.clock import VirtualClock
from repro.sim.events import EventCallback, EventHandle, EventQueue
from repro.sim.random import RandomStreams, stable_seed
from repro.sim.simulator import Simulator
from repro.sim.timers import PeriodicTask, Timer

__all__ = [
    "EventCallback",
    "EventHandle",
    "EventQueue",
    "PeriodicTask",
    "RandomStreams",
    "Simulator",
    "Timer",
    "VirtualClock",
    "stable_seed",
]
