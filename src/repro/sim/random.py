"""Named, seeded random streams.

Every source of randomness in the simulation draws from a stream obtained by
name from :class:`RandomStreams`. Stream seeds are derived with SHA-256 from
``(master_seed, name)``, so they are stable across Python processes and
versions (unlike the builtin ``hash``), and adding a new consumer of
randomness never perturbs the draws seen by existing consumers.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def stable_seed(master: int, name: str) -> int:
    """Derive a 64-bit stream seed from a master seed and a stream name."""
    digest = hashlib.sha256(f"{master}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """Factory of independent, reproducible ``random.Random`` streams.

    Example:
        >>> streams = RandomStreams(42)
        >>> a = streams.stream("jitter")
        >>> b = RandomStreams(42).stream("jitter")
        >>> a.random() == b.random()
        True
    """

    def __init__(self, master_seed: int = 0) -> None:
        self._master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        """The master seed this factory was built with."""
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The same name always returns the same object, so consumers that call
        ``stream`` repeatedly keep advancing one generator rather than
        resetting it.
        """
        gen = self._streams.get(name)
        if gen is None:
            gen = random.Random(stable_seed(self._master_seed, name))
            self._streams[name] = gen
        return gen

    def fork(self, name: str) -> "RandomStreams":
        """Create a child factory whose master seed is derived from ``name``.

        Useful for giving each trial of an experiment its own seed universe
        while staying reproducible from one top-level seed.
        """
        return RandomStreams(stable_seed(self._master_seed, f"fork:{name}"))

    def __repr__(self) -> str:
        return (
            f"RandomStreams(master_seed={self._master_seed}, "
            f"streams={sorted(self._streams)})"
        )
