"""The discrete-event simulator.

One :class:`Simulator` instance owns the virtual clock and the event queue
for an entire emulated world (all namespaces, links, connections, browsers).
Components schedule callbacks; ``run`` drains the queue in causal order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.events import Event, EventQueue
from repro.sim.random import RandomStreams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.registry import MetricsRegistry


class Simulator:
    """Single-clock discrete-event simulator.

    Args:
        seed: master seed for the simulation's random streams. Two simulators
            built with the same seed and the same scheduling calls produce
            bit-identical behaviour.

    Example:
        >>> sim = Simulator(seed=1)
        >>> fired = []
        >>> _ = sim.schedule(0.5, fired.append, "hello")
        >>> sim.run()
        >>> (sim.now, fired)
        (0.5, ['hello'])
    """

    def __init__(self, seed: int = 0) -> None:
        self._clock = VirtualClock()
        self._queue = EventQueue()
        self._streams = RandomStreams(seed)
        self._running = False
        self._events_processed = 0
        self._trace: Optional[Callable[[Event], None]] = None
        #: Observability registry (None = uninstrumented). Components read
        #: this at construction to capture their probe handles, so attach
        #: a registry *before* building the world (see repro.obs).
        self.metrics: Optional["MetricsRegistry"] = None

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        # Reads the clock's slot directly: this property is the single
        # most-called function in a simulation, and going through
        # Clock.now would stack a second property frame on every read.
        return self._clock._now

    @property
    def streams(self) -> RandomStreams:
        """Named, seeded random streams for this simulation."""
        return self._streams

    @property
    def events_processed(self) -> int:
        """Total events executed so far (diagnostic)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Live events still queued."""
        return len(self._queue)

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Raises:
            SimulationError: if ``delay`` is negative.
        """
        if delay < 0.0:
            raise SimulationError(f"cannot schedule into the past: delay={delay!r}")
        return self._queue.push(self._clock.now + delay, callback, args)

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``.

        Raises:
            SimulationError: if ``time`` is before the current time.
        """
        if time < self._clock.now:
            raise SimulationError(
                f"cannot schedule into the past: t={time!r} < now={self._clock.now!r}"
            )
        return self._queue.push(time, callback, args)

    def call_soon(self, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at the current instant (after pending
        same-time events already in the queue)."""
        return self._queue.push(self._clock.now, callback, args)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event. Cancelling twice is a no-op."""
        if not event.cancelled:
            event.cancel()
            self._queue.note_cancelled()

    def use_metrics(self, registry: Optional["MetricsRegistry"]) -> None:
        """Attach (or, with None, detach) an observability registry.

        The registry is observer-owned state: probes only ever *read*
        simulation state and append observations, so attaching one must
        not change the executed event stream in any way (the
        zero-observer-effect contract, checked by
        ``repro.analysis.sanitizer --obs-check``). Attach before
        building the world — instrumented components capture their probe
        handles when constructed.
        """
        self.metrics = registry

    def set_trace(self, hook: Optional[Callable[[Event], None]]) -> None:
        """Install (or, with None, remove) an execution observer.

        The hook is called once per executed event, after the clock has
        advanced to the event's time and immediately before its callback
        runs. The main loops read it once per drain, so install it before
        calling :meth:`run` / :meth:`run_until`. The intended consumer is
        the determinism sanitizer
        (:class:`repro.analysis.sanitizer.EventStreamDigest`); when no
        hook is installed the per-event cost is a single None check.
        """
        self._trace = hook

    def step(self) -> bool:
        """Execute the single earliest event. Returns False if queue empty."""
        if not self._queue:
            return False
        event = self._queue.pop()
        self._clock.advance_to(event.time)
        self._events_processed += 1
        if self._trace is not None:
            self._trace(event)
        event.callback(*event.args)
        return True

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None:
        """Run until the queue is empty.

        Args:
            until: stop once the next event would be after this virtual time;
                the clock is then advanced exactly to ``until``.
            max_events: safety valve — raise SimulationError if more than this
                many events execute (catches accidental infinite loops).

        Raises:
            SimulationError: on re-entrant run, or when max_events is hit.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        executed = 0
        queue = self._queue
        clock = self._clock
        trace = self._trace
        try:
            while True:
                event = queue.pop_due(until)
                if event is None:
                    break
                clock.advance_to(event.time)
                self._events_processed += 1
                executed += 1
                if max_events is not None and executed > max_events:
                    raise SimulationError(
                        f"run() exceeded max_events={max_events}; "
                        "likely an event loop that never drains"
                    )
                if trace is not None:
                    trace(event)
                event.callback(*event.args)
            if until is not None and until > clock.now:
                clock.advance_to(until)
        finally:
            self._running = False

    def run_for(self, duration: float) -> None:
        """Run for ``duration`` seconds of virtual time from now."""
        self.run(until=self._clock.now + duration)

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: Optional[float] = None,
        check_every: int = 1,
    ) -> bool:
        """Run until ``predicate()`` becomes true.

        Args:
            predicate: checked after each executed event by default.
            timeout: virtual-time budget; on expiry the clock is advanced
                to the deadline and the predicate's final value returned.
            check_every: evaluate the predicate only every N events —
                a cached check interval for hot loops where the predicate
                is monotonic (a completed page load stays completed) and
                checking it each event costs more than overshooting by a
                few events. Always checked on exhaustion and deadline.

        Returns True if the predicate fired, False on queue exhaustion or
        timeout expiry.
        """
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every!r}")
        deadline = None if timeout is None else self._clock.now + timeout
        if predicate():
            return True
        queue = self._queue
        clock = self._clock
        trace = self._trace
        countdown = check_every
        while True:
            event = queue.pop_due(deadline)
            if event is None:
                if deadline is not None and queue.peek_time() is not None:
                    # Events remain, but all after the deadline.
                    clock.advance_to(deadline)
                return predicate()
            clock.advance_to(event.time)
            self._events_processed += 1
            if trace is not None:
                trace(event)
            event.callback(*event.args)
            countdown -= 1
            if countdown == 0:
                if predicate():
                    return True
                countdown = check_every

    def reset(self) -> None:
        """Drop all pending events (the clock keeps its value)."""
        self._queue.clear()

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self.now:.6f}, pending={self.pending_events}, "
            f"processed={self._events_processed})"
        )
