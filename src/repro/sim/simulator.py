"""The discrete-event simulator.

One :class:`Simulator` instance owns the virtual clock and the event queue
for an entire emulated world (all namespaces, links, connections, browsers).
Components schedule callbacks; ``run`` drains the queue in causal order.

The scheduling entry points and the drain loops are the hottest code in the
toolkit — every packet, timer, and browser action passes through them — so
they work on the queue's lanes and event records directly (see
:mod:`repro.sim.events` for the layout and its invariants) instead of
through per-event method calls. ``run`` and ``run_until`` each have two
drain loops: an allocation-lean fast loop used when no trace hook or event
budget is installed, and a checked loop that replicates the exact same
dispatch order while honouring ``max_events`` and the trace hook. Both
produce bit-identical event streams — the determinism sanitizer digests
(time, seq, callback) per executed event and is run against both paths.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.events import EventCallback, EventHandle, EventQueue
from repro.sim.random import RandomStreams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.packet import PacketPool
    from repro.obs.registry import MetricsRegistry

#: A trace hook: called as ``hook(time, seq, callback)`` per executed event.
TraceHook = Callable[[float, int, EventCallback], None]


class Simulator:
    """Single-clock discrete-event simulator.

    Args:
        seed: master seed for the simulation's random streams. Two simulators
            built with the same seed and the same scheduling calls produce
            bit-identical behaviour.

    Example:
        >>> sim = Simulator(seed=1)
        >>> fired = []
        >>> _ = sim.schedule(0.5, fired.append, "hello")
        >>> sim.run()
        >>> (sim.now, fired)
        (0.5, ['hello'])
    """

    def __init__(self, seed: int = 0) -> None:
        self._clock = VirtualClock()
        self._queue = EventQueue()
        self._streams = RandomStreams(seed)
        self._running = False
        self._events_processed = 0
        self._trace: Optional[TraceHook] = None
        #: Observability registry (None = uninstrumented). Components read
        #: this at construction to capture their probe handles, so attach
        #: a registry *before* building the world (see repro.obs).
        self.metrics: Optional["MetricsRegistry"] = None
        #: Shared packet pool, created on first use by the transport layer
        #: (kept per-simulator so parallel worlds never share mutable state).
        self.packet_pool: Optional["PacketPool"] = None

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        # Reads the clock's slot directly: this property is the single
        # most-called function in a simulation, and going through
        # Clock.now would stack a second property frame on every read.
        return self._clock._now

    @property
    def streams(self) -> RandomStreams:
        """Named, seeded random streams for this simulation."""
        return self._streams

    @property
    def events_processed(self) -> int:
        """Total events executed so far (diagnostic).

        Updated when a drain loop exits, not per event — a callback that
        reads it mid-run sees the count as of the loop's entry.
        """
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Live events still queued."""
        return len(self._queue)

    def schedule(
        self, delay: float, callback: EventCallback, *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        This is :meth:`EventQueue.push` inlined (the single hottest call
        in a simulation): monotone pushes — zero delays and chained
        timeouts — append to the queue's tail lane in O(1).

        Raises:
            SimulationError: if ``delay`` is negative.
        """
        if delay < 0.0:
            raise SimulationError(f"cannot schedule into the past: delay={delay!r}")
        time = self._clock._now + delay
        queue = self._queue
        seq = queue._seq
        queue._seq = seq + 1
        queue._live += 1
        entry: EventHandle = [time, seq, callback, args]
        tail = queue._tail
        if not tail or time >= tail[-1][0]:
            tail.append(entry)
        else:
            heapq.heappush(queue._heap, entry)
        return entry

    def schedule_at(
        self, time: float, callback: EventCallback, *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``.

        Raises:
            SimulationError: if ``time`` is before the current time.
        """
        if time < self._clock._now:
            raise SimulationError(
                f"cannot schedule into the past: "
                f"t={time!r} < now={self._clock._now!r}"
            )
        queue = self._queue
        seq = queue._seq
        queue._seq = seq + 1
        queue._live += 1
        entry: EventHandle = [time, seq, callback, args]
        tail = queue._tail
        if not tail or time >= tail[-1][0]:
            tail.append(entry)
        else:
            heapq.heappush(queue._heap, entry)
        return entry

    def call_soon(self, callback: EventCallback, *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at the current instant (after pending
        same-time events already in the queue)."""
        time = self._clock._now
        queue = self._queue
        seq = queue._seq
        queue._seq = seq + 1
        queue._live += 1
        entry: EventHandle = [time, seq, callback, args]
        tail = queue._tail
        if not tail or time >= tail[-1][0]:
            tail.append(entry)
        else:
            heapq.heappush(queue._heap, entry)
        return entry

    def cancel(self, event: EventHandle) -> None:
        """Cancel a scheduled event. Cancelling twice (or cancelling a
        handle whose event already fired) is a no-op."""
        self._queue.cancel(event)

    def use_metrics(self, registry: Optional["MetricsRegistry"]) -> None:
        """Attach (or, with None, detach) an observability registry.

        The registry is observer-owned state: probes only ever *read*
        simulation state and append observations, so attaching one must
        not change the executed event stream in any way (the
        zero-observer-effect contract, checked by
        ``repro.analysis.sanitizer --obs-check``). Attach before
        building the world — instrumented components capture their probe
        handles when constructed.
        """
        self.metrics = registry

    def set_trace(self, hook: Optional[TraceHook]) -> None:
        """Install (or, with None, remove) an execution observer.

        The hook is called as ``hook(time, seq, callback)`` once per
        executed event, after the clock has advanced to the event's time
        and immediately before its callback runs. The main loops read it
        once per drain, so install it before calling :meth:`run` /
        :meth:`run_until`. The intended consumer is the determinism
        sanitizer (:class:`repro.analysis.sanitizer.EventStreamDigest`);
        when no hook is installed the drain takes an allocation-lean fast
        loop with zero per-event hook cost.
        """
        self._trace = hook

    def step(self) -> bool:
        """Execute the single earliest event. Returns False if queue empty."""
        queue = self._queue
        entry = queue.pop_due(None)
        if entry is None:
            return False
        self._clock.advance_to(entry[0])
        callback, args = queue.consume(entry)
        self._events_processed += 1
        if self._trace is not None:
            self._trace(entry[0], entry[1], callback)
        callback(*args)
        return True

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None:
        """Run until the queue is empty.

        Args:
            until: stop once the next event would be after this virtual time;
                the clock is then advanced exactly to ``until``.
            max_events: safety valve — raise SimulationError if more than this
                many events execute (catches accidental infinite loops).

        Raises:
            SimulationError: on re-entrant run, or when max_events is hit.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        executed = 0
        queue = self._queue
        clock = self._clock
        trace = self._trace
        try:
            if trace is None and max_events is None:
                # Fast loop: EventQueue.pop_due / consume inlined onto the
                # lanes. Containers are cached once — the queue compacts
                # them in place, never rebinding (EventQueue._compact).
                heap = queue._heap
                tail = queue._tail
                heappop = heapq.heappop
                while True:
                    if tail:
                        head = tail[0]
                        if heap and heap[0] < head:
                            head = heappop(heap)
                        else:
                            tail.popleft()
                    elif heap:
                        head = heappop(heap)
                    else:
                        break
                    callback = head[2]
                    if callback is None:  # cancelled: discard lazily
                        queue._dead -= 1
                        continue
                    time = head[0]
                    if until is not None and time > until:
                        # Overshot: un-pop (lane choice only affects cost).
                        heapq.heappush(heap, head)
                        break
                    if time > clock._now:
                        # Direct store: pop order is monotone by
                        # construction, so this cannot move backwards.
                        clock._now = time
                    args = head[3]
                    head[2] = None
                    head[3] = None
                    queue._live -= 1
                    executed += 1
                    if args:
                        callback(*args)
                    else:
                        callback()
            else:
                while True:
                    entry = queue.pop_due(until)
                    if entry is None:
                        break
                    clock.advance_to(entry[0])
                    callback, cb_args = queue.consume(entry)
                    executed += 1
                    if max_events is not None and executed > max_events:
                        raise SimulationError(
                            f"run() exceeded max_events={max_events}; "
                            "likely an event loop that never drains"
                        )
                    if trace is not None:
                        trace(entry[0], entry[1], callback)
                    callback(*cb_args)
            if until is not None and until > clock._now:
                clock.advance_to(until)
        finally:
            self._events_processed += executed
            self._running = False

    def run_for(self, duration: float) -> None:
        """Run for ``duration`` seconds of virtual time from now."""
        self.run(until=self._clock._now + duration)

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: Optional[float] = None,
        check_every: int = 1,
    ) -> bool:
        """Run until ``predicate()`` becomes true.

        Args:
            predicate: checked after each executed event by default.
            timeout: virtual-time budget; on expiry the clock is advanced
                to the deadline and the predicate's final value returned.
            check_every: evaluate the predicate only every N events —
                a cached check interval for hot loops where the predicate
                is monotonic (a completed page load stays completed) and
                checking it each event costs more than overshooting by a
                few events. Always checked on exhaustion and deadline.

        Returns True if the predicate fired, False on queue exhaustion or
        timeout expiry.
        """
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every!r}")
        deadline = None if timeout is None else self._clock._now + timeout
        if predicate():
            return True
        queue = self._queue
        clock = self._clock
        trace = self._trace
        executed = 0
        countdown = check_every
        try:
            if trace is None:
                # Fast loop: same two-lane drain as ``run``'s, plus the
                # predicate countdown.
                heap = queue._heap
                tail = queue._tail
                heappop = heapq.heappop
                while True:
                    if tail:
                        head = tail[0]
                        if heap and heap[0] < head:
                            head = heappop(heap)
                        else:
                            tail.popleft()
                    elif heap:
                        head = heappop(heap)
                    else:
                        return predicate()
                    callback = head[2]
                    if callback is None:
                        queue._dead -= 1
                        continue
                    time = head[0]
                    if deadline is not None and time > deadline:
                        # Events remain, but all after the deadline.
                        heapq.heappush(heap, head)
                        clock.advance_to(deadline)
                        return predicate()
                    if time > clock._now:
                        clock._now = time
                    args = head[3]
                    head[2] = None
                    head[3] = None
                    queue._live -= 1
                    executed += 1
                    if args:
                        callback(*args)
                    else:
                        callback()
                    countdown -= 1
                    if countdown == 0:
                        if predicate():
                            return True
                        countdown = check_every
            else:
                while True:
                    entry = queue.pop_due(deadline)
                    if entry is None:
                        if deadline is not None and queue.peek_time() is not None:
                            # Events remain, but all after the deadline.
                            clock.advance_to(deadline)
                        return predicate()
                    clock.advance_to(entry[0])
                    callback, cb_args = queue.consume(entry)
                    executed += 1
                    trace(entry[0], entry[1], callback)
                    callback(*cb_args)
                    countdown -= 1
                    if countdown == 0:
                        if predicate():
                            return True
                        countdown = check_every
        finally:
            self._events_processed += executed

    def reset(self) -> None:
        """Drop all pending events (the clock keeps its value)."""
        self._queue.clear()

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self.now:.6f}, pending={self.pending_events}, "
            f"processed={self._events_processed})"
        )
