"""Event objects and the pending-event queue.

The queue is a binary heap ordered by ``(time, sequence)``. The sequence
number is a global insertion counter, so two events scheduled for the same
instant fire in the order they were scheduled — the property that makes the
whole simulation deterministic.

Heap entries are plain ``(time, seq, event)`` tuples rather than the
:class:`Event` objects themselves: sifting then compares tuples in C
instead of calling ``Event.__lt__`` in Python, which is the single
hottest comparison in the simulator (every push and pop performs
O(log n) of them). The trailing event never participates in a
comparison because ``seq`` is unique.

Cancellation is lazy: a cancelled event's entry stays in the heap but is
skipped when popped. This keeps ``cancel`` O(1), which matters because TCP
retransmission timers are cancelled on almost every ACK. To stop those
dead entries from bloating the heap during long loads (and taxing every
subsequent sift with their log-n share), the queue runs a compaction
sweep — rebuild-and-heapify, O(n) — whenever cancelled entries outnumber
live ones in a heap of at least :data:`COMPACT_MIN_SIZE` entries.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

#: Heap size below which compaction is never worth the O(n) rebuild.
COMPACT_MIN_SIZE = 512


class Event:
    """A scheduled callback.

    Events are handed back to callers as handles; the only public operations
    are :meth:`cancel` and inspecting :attr:`time` / :attr:`cancelled`.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event as cancelled; it will never fire."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time:.6f} #{self.seq} {name}{state}>"


class EventQueue:
    """Min-heap of :class:`Event` ordered by (time, insertion sequence)."""

    __slots__ = ("_heap", "_seq", "_live", "_dead")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self._live = 0
        self._dead = 0

    def __len__(self) -> int:
        """Number of live (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self, time: float, callback: Callable[..., Any], args: Tuple[Any, ...]
    ) -> Event:
        """Insert a callback to fire at ``time``; returns a cancellable handle."""
        event = Event(time, self._seq, callback, args)
        heapq.heappush(self._heap, (time, self._seq, event))
        self._seq += 1
        self._live += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises:
            IndexError: if the queue holds no live events.
        """
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            if event.cancelled:
                self._dead -= 1
                continue
            self._live -= 1
            return event
        raise IndexError("pop from empty EventQueue")

    def pop_due(self, deadline: Optional[float]) -> Optional[Event]:
        """Pop the earliest live event if it is due by ``deadline``.

        Returns None — leaving the event queued — when the earliest live
        event is after ``deadline``, or when no live event remains. This
        is the simulator's main-loop primitive: one heap traversal where
        ``peek_time()`` followed by ``pop()`` would walk the same
        cancelled prefix twice.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[2].cancelled:
                heapq.heappop(heap)
                self._dead -= 1
                continue
            if deadline is not None and entry[0] > deadline:
                return None
            heapq.heappop(heap)
            self._live -= 1
            return entry[2]
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or None if empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._dead -= 1
        if not heap:
            return None
        return heap[0][0]

    def note_cancelled(self) -> None:
        """Bookkeeping hook called by the simulator when it cancels an event."""
        self._live -= 1
        self._dead += 1
        if self._dead > self._live and len(self._heap) >= COMPACT_MIN_SIZE:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (O(n))."""
        self._heap = [
            entry for entry in self._heap if not entry[2].cancelled
        ]
        heapq.heapify(self._heap)
        self._dead = 0

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0
        self._dead = 0
