"""Event objects and the pending-event queue.

The queue is a binary heap ordered by ``(time, sequence)``. The sequence
number is a global insertion counter, so two events scheduled for the same
instant fire in the order they were scheduled — the property that makes the
whole simulation deterministic.

Cancellation is lazy: a cancelled event stays in the heap but is skipped when
popped. This keeps ``cancel`` O(1), which matters because TCP retransmission
timers are cancelled on almost every ACK.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class Event:
    """A scheduled callback.

    Events are handed back to callers as handles; the only public operations
    are :meth:`cancel` and inspecting :attr:`time` / :attr:`cancelled`.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event as cancelled; it will never fire."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time:.6f} #{self.seq} {name}{state}>"


class EventQueue:
    """Min-heap of :class:`Event` ordered by (time, insertion sequence)."""

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        """Number of live (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self, time: float, callback: Callable[..., Any], args: Tuple[Any, ...]
    ) -> Event:
        """Insert a callback to fire at ``time``; returns a cancellable handle."""
        event = Event(time, self._seq, callback, args)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises:
            IndexError: if the queue holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise IndexError("pop from empty EventQueue")

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or None if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def note_cancelled(self) -> None:
        """Bookkeeping hook called by the simulator when it cancels an event."""
        self._live -= 1

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0
