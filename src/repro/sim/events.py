"""The pending-event queue: slotted event records in a two-lane calendar.

The queue orders events by ``(time, sequence)``. The sequence number is a
global insertion counter, so two events scheduled for the same instant fire
in the order they were scheduled — the property that makes the whole
simulation deterministic.

Each pending event is one *record*: a four-slot list
``[time, seq, callback, args]`` that doubles as the caller's handle
(:data:`EventHandle`). Records compare element-wise exactly like the old
``(time, seq, …)`` tuples — ``seq`` is unique, so a comparison never
reaches the callback slot — and they are mutable, which is what makes the
hot paths allocation-lean: cancellation nulls the callback slot in place
(O(1), no tombstone objects), and consuming an executed event nulls the
same slots, so a stale handle held after its event fired can never corrupt
a later event. A parallel-array layout with free-list slot recycling was
benchmarked here and lost: four array writes per push plus free-list churn
cost more than CPython's small-object allocator, which *is* a free list
(see DESIGN.md §10 for the measurements).

Two lanes order the records:

* ``_heap`` — a binary heap for events pushed out of time order.
* ``_tail`` — a deque for events pushed in monotone time order: a push
  whose time is at or past the lane's last entry appends in O(1), no
  sift. Because ``seq`` always increases, the deque stays sorted by
  ``(time, seq)`` by construction. Chained timers, same-instant callbacks
  (``schedule(0, …)`` / ``call_soon``), and steadily advancing link
  deliveries — the bulk of real workloads — all ride this lane and never
  touch the heap.

Dispatch takes the smaller of the two lane heads by plain record
comparison, so the merged order is exactly the global ``(time, seq)``
order — bit-identical to a single heap, as the determinism sanitizer
digests verify.

Cancellation is lazy: the dead record stays in its lane until it surfaces
at a head and is discarded. To stop dead records from bloating the lanes
during long loads, the queue runs a compaction sweep —
rebuild-and-heapify, O(n) — whenever cancelled records outnumber live
ones in lanes of at least :data:`COMPACT_MIN_SIZE` entries. Compaction
mutates the lane containers *in place* so that hot loops holding direct
references (see ``Simulator.run``) never go stale.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

#: Lane size below which compaction is never worth the O(n) rebuild.
COMPACT_MIN_SIZE = 512

#: A scheduled callback's signature.
EventCallback = Callable[..., Any]

#: The handle returned by ``push``: the ``[time, seq, callback, args]``
#: record itself. Opaque to callers except for ``handle[0]`` (the
#: scheduled time) and ``handle[1]`` (the insertion sequence).
EventHandle = List[Any]


class EventQueue:
    """Two-lane calendar of event records ordered by (time, sequence)."""

    __slots__ = ("_heap", "_tail", "_seq", "_live", "_dead")

    def __init__(self) -> None:
        self._heap: List[EventHandle] = []
        self._tail: Deque[EventHandle] = deque()
        self._seq = 0
        self._live = 0
        self._dead = 0

    def __len__(self) -> int:
        """Number of live (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self, time: float, callback: EventCallback, args: Tuple[Any, ...]
    ) -> EventHandle:
        """Insert a callback to fire at ``time``; returns a cancellable handle.

        Pushes at or past the tail lane's last time append in O(1); only
        out-of-order pushes pay the heap's O(log n) sift.
        """
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        entry: EventHandle = [time, seq, callback, args]
        tail = self._tail
        if not tail or time >= tail[-1][0]:
            tail.append(entry)
        else:
            heapq.heappush(self._heap, entry)
        return entry

    def cancel(self, handle: EventHandle) -> bool:
        """Cancel a scheduled event; returns False if it already fired.

        O(1): the record's callback slot is nulled and the lane entry is
        left to be discarded lazily. Consuming an executed event nulls the
        same slot, so cancelling twice — or cancelling after the event
        fired — is a safe no-op.
        """
        if handle[2] is None:
            return False
        handle[2] = None
        handle[3] = None
        self._live -= 1
        self._dead += 1
        if self._dead > self._live and (
            len(self._heap) + len(self._tail) >= COMPACT_MIN_SIZE
        ):
            self._compact()
        return True

    def consume(self, entry: EventHandle) -> Tuple[EventCallback, Tuple[Any, ...]]:
        """Release a just-popped live record; returns (callback, args).

        Only valid for a record returned by :meth:`pop_due` (which removes
        it from its lane but leaves its slots set). Nulling the slots here
        is what makes a retained handle inert after its event fires.
        """
        callback = entry[2]
        assert callback is not None, "consume() of a dead record"
        args = entry[3]
        entry[2] = None
        entry[3] = None
        self._live -= 1
        return callback, args

    def pop_due(self, deadline: Optional[float]) -> Optional[EventHandle]:
        """Remove and return the earliest live record if due by ``deadline``.

        Returns None — leaving the event queued — when the earliest live
        event is after ``deadline``, or when no live event remains. The
        returned record stays live until :meth:`consume`.
        """
        heap = self._heap
        tail = self._tail
        while True:
            if tail:
                head = tail[0]
                if heap and heap[0] < head:
                    head = heapq.heappop(heap)
                else:
                    tail.popleft()
            elif heap:
                head = heapq.heappop(heap)
            else:
                return None
            if head[2] is None:
                self._dead -= 1
                continue
            if deadline is not None and head[0] > deadline:
                # Overshot: un-pop. The heap accepts records from either
                # lane — dispatch order only depends on (time, seq).
                heapq.heappush(heap, head)
                return None
            return head

    def pop(self) -> Tuple[float, int, EventCallback, Tuple[Any, ...]]:
        """Remove the earliest live event; returns (time, seq, callback, args).

        Raises:
            IndexError: if the queue holds no live events.
        """
        entry = self.pop_due(None)
        if entry is None:
            raise IndexError("pop from empty EventQueue")
        callback, args = self.consume(entry)
        return entry[0], entry[1], callback, args

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or None if empty."""
        heap = self._heap
        tail = self._tail
        while heap and heap[0][2] is None:
            heapq.heappop(heap)
            self._dead -= 1
        while tail and tail[0][2] is None:
            tail.popleft()
            self._dead -= 1
        if tail:
            if heap and heap[0] < tail[0]:
                return float(heap[0][0])
            return float(tail[0][0])
        if heap:
            return float(heap[0][0])
        return None

    def _compact(self) -> None:
        """Drop cancelled records and re-heapify (O(n)), **in place**.

        Hot loops cache direct references to the lane containers, so
        compaction must never rebind ``_heap`` or ``_tail`` to new objects.
        """
        heap = self._heap
        live_heap = [entry for entry in heap if entry[2] is not None]
        heap[:] = live_heap
        heapq.heapify(heap)
        tail = self._tail
        if tail:
            live_tail = [entry for entry in tail if entry[2] is not None]
            tail.clear()
            tail.extend(live_tail)
        self._dead = 0

    def clear(self) -> None:
        """Drop every pending event (the sequence counter keeps counting)."""
        self._heap.clear()
        self._tail.clear()
        self._live = 0
        self._dead = 0
