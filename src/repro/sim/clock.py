"""The virtual clock.

A :class:`VirtualClock` is a monotonically non-decreasing float of seconds
since the start of the simulation. Only the simulator advances it; components
hold a reference and read :attr:`now`.
"""

from __future__ import annotations

from repro.errors import ClockError


class VirtualClock:
    """Monotonic simulated time in seconds.

    The clock starts at ``0.0``. :meth:`advance_to` refuses to move backwards,
    which turns event-ordering bugs into loud failures instead of silent
    causality violations.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise ClockError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time``.

        Raises:
            ClockError: if ``time`` is earlier than the current time.
        """
        if time < self._now:
            raise ClockError(f"clock cannot move backwards: {time!r} < {self._now!r}")
        self._now = time

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now!r})"
