"""Restartable timers and periodic tasks built on the simulator.

TCP needs a retransmission timer that is armed, re-armed, and cancelled
constantly; links need periodic delivery opportunities. Both patterns live
here so the rest of the code never touches raw event handles.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.events import EventHandle
from repro.sim.simulator import Simulator


class Timer:
    """A single-shot, restartable timer.

    ``start(delay)`` arms the timer; starting an armed timer re-arms it
    (the previous deadline is cancelled). ``stop`` disarms it. The callback
    fires at most once per arming.
    """

    __slots__ = ("_sim", "_callback", "_event")

    def __init__(self, sim: Simulator, callback: Callable[[], Any]) -> None:
        self._sim = sim
        self._callback = callback
        self._event: Optional[EventHandle] = None

    @property
    def armed(self) -> bool:
        """True if the timer is currently counting down."""
        return self._event is not None

    @property
    def deadline(self) -> Optional[float]:
        """Virtual time at which the timer will fire, or None if disarmed."""
        event = self._event
        if event is not None:
            return event[0]
        return None

    def start(self, delay: float) -> None:
        """Arm (or re-arm) the timer to fire ``delay`` seconds from now."""
        self.stop()
        self._event = self._sim.schedule(delay, self._fire)

    def stop(self) -> None:
        """Disarm the timer if armed; no-op otherwise."""
        if self._event is not None:
            self._sim.cancel(self._event)
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()


class PeriodicTask:
    """Calls ``callback`` every ``interval`` seconds until stopped.

    The first call happens ``interval`` seconds after :meth:`start` (or
    immediately if ``fire_now=True``). The schedule is drift-free: ticks are
    at start + k * interval regardless of callback duration (callbacks take
    zero virtual time anyway unless they schedule work).
    """

    __slots__ = ("_sim", "_interval", "_callback", "_event", "_next_tick")

    def __init__(
        self, sim: Simulator, interval: float, callback: Callable[[], Any]
    ) -> None:
        if interval <= 0.0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._event: Optional[EventHandle] = None
        self._next_tick = 0.0

    @property
    def running(self) -> bool:
        """True while the task is scheduled to keep ticking."""
        return self._event is not None

    def start(self, fire_now: bool = False) -> None:
        """Begin ticking. Raises ValueError if already running."""
        if self._event is not None:
            raise ValueError("PeriodicTask is already running")
        if fire_now:
            self._next_tick = self._sim.now
            self._event = self._sim.call_soon(self._tick)
        else:
            self._next_tick = self._sim.now + self._interval
            self._event = self._sim.schedule(self._interval, self._tick)

    def stop(self) -> None:
        """Stop ticking; no-op if not running."""
        if self._event is not None:
            self._sim.cancel(self._event)
            self._event = None

    def _tick(self) -> None:
        self._next_tick += self._interval
        self._event = self._sim.schedule_at(self._next_tick, self._tick)
        self._callback()
