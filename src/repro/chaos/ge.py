"""The Gilbert–Elliott bursty-loss channel model.

A two-state Markov chain stepped once per packet: the *good* state drops
packets with probability ``loss_good`` (usually 0), the *bad* state with
``loss_bad`` (often 1). Transitions happen per packet with probabilities
``p_good_bad`` / ``p_bad_good``, giving geometrically distributed burst
lengths with mean ``1 / p_bad_good`` — the standard model for the bursty
loss that Bernoulli ``mm-loss`` cannot express (wireless fading, deep
queue overflow).

Determinism: the chain draws exclusively from the injected ``rng`` (a
named stream from :mod:`repro.sim.random`), exactly two draws per packet
in a fixed order (transition, then loss), so the drop pattern is a pure
function of the seed and the packet arrival sequence.
"""

from __future__ import annotations

from repro.chaos.plan import GilbertElliottClause

GOOD = "good"
BAD = "bad"


class GilbertElliott:
    """One instance of the channel (one direction's chain).

    Args:
        clause: the parameter set.
        rng: a seeded ``random.Random``-like stream; the model's only
            randomness source.
    """

    def __init__(self, clause: GilbertElliottClause, rng) -> None:
        self.clause = clause
        self._rng = rng
        self.state = GOOD
        self.transitions = 0
        self.packets_seen = 0
        self.packets_dropped = 0

    def should_drop(self) -> bool:
        """Step the chain for one packet; True if it should be dropped.

        Draw order is fixed (transition draw, then loss draw) regardless
        of outcome, so the stream position after N packets depends only
        on N — a requirement for bit-reproducible replay.
        """
        self.packets_seen += 1
        transition_draw = self._rng.random()
        loss_draw = self._rng.random()
        clause = self.clause
        if self.state == GOOD:
            if transition_draw < clause.p_good_bad:
                self.state = BAD
                self.transitions += 1
        else:
            if transition_draw < clause.p_bad_good:
                self.state = GOOD
                self.transitions += 1
        loss_rate = (
            clause.loss_good if self.state == GOOD else clause.loss_bad
        )
        dropped = loss_draw < loss_rate
        if dropped:
            self.packets_dropped += 1
        return dropped

    def __repr__(self) -> str:
        return (
            f"<GilbertElliott state={self.state} "
            f"seen={self.packets_seen} dropped={self.packets_dropped}>"
        )
