"""repro.chaos — deterministic, schedule-driven fault injection.

Real networks fail in structured ways: bursty loss, outages, wedged
servers, flaky DNS. This package expresses those failures as a declarative
:class:`~repro.chaos.plan.FaultPlan` and injects them through the layers
that already exist — link pipes, HTTP servers, the DNS server — with every
stochastic decision drawn from the simulation's named seeded streams.
Same seed + same plan ⇒ the exact same failure sequence, bit for bit
(DESIGN.md §8): chaos engineering with reproducible chaos.

Entry points:

* :class:`FaultPlan` + clause dataclasses — build or ``from_json`` a plan;
* :meth:`repro.core.compose.ShellStack.add_chaos` — compose a
  :class:`ChaosShell` into a stack and wire server/DNS injectors;
* ``mm-chaos plan.json`` on the command line, nesting like every other
  Mahimahi shell;
* :mod:`repro.measure.robustness` — the failure taxonomy and robustness
  trial runner that consume the structured errors faults produce.
"""

from repro.chaos.ge import GilbertElliott
from repro.chaos.inject import DnsFaultInjector, ServerFaultInjector
from repro.chaos.pipes import ChaosPipe
from repro.chaos.plan import (
    CorruptionClause,
    DnsFaultClause,
    FaultPlan,
    GilbertElliottClause,
    OutageClause,
    OutageSchedule,
    ReorderClause,
    ServerFaultClause,
    SynBlackholeClause,
)

__all__ = [
    "ChaosPipe",
    "ChaosShell",
    "CorruptionClause",
    "DnsFaultClause",
    "DnsFaultInjector",
    "FaultPlan",
    "GilbertElliott",
    "GilbertElliottClause",
    "OutageClause",
    "OutageSchedule",
    "ReorderClause",
    "ServerFaultClause",
    "ServerFaultInjector",
    "SynBlackholeClause",
]


def __getattr__(name: str):
    # ChaosShell imports repro.core.base, and repro.core's package init
    # imports modules that import repro.chaos.pipes — a lazy attribute
    # keeps the package import acyclic from either end.
    if name == "ChaosShell":
        from repro.chaos.shell import ChaosShell

        return ChaosShell
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
