"""ChaosShell: ``mm-chaos <plan.json>``.

A shell whose veth pipes run a :class:`~repro.chaos.plan.FaultPlan`'s link
clauses — composable with the other shells exactly as Mahimahi shells
nest::

    mm-webreplay site/ mm-link 14 14 mm-chaos plan.json mm-delay 40 load

Each direction gets its own :class:`~repro.chaos.pipes.ChaosPipe` driven
by its own named stream (``chaos:<name>:downlink`` / ``:uplink``), so a
``direction="both"`` clause runs independent chains per direction and the
whole shell replays bit-identically for a given seed and plan.

Server and DNS clauses do not ride on link pipes; attach them to a
stack's replay servers with :meth:`repro.core.compose.ShellStack.add_chaos`,
which builds this shell *and* wires the application-layer injectors.
"""

from __future__ import annotations

from repro.chaos.pipes import ChaosPipe
from repro.chaos.plan import FaultPlan
from repro.core.base import Shell
from repro.errors import ChaosError
from repro.net.address import AddressAllocator
from repro.net.namespace import NetworkNamespace
from repro.net.pipe import InstantPipe
from repro.sim.simulator import Simulator


class ChaosShell(Shell):
    """Fault-injecting link pipes around a private namespace.

    Args:
        sim: the simulator.
        parent: enclosing namespace.
        allocator: shared shell address allocator.
        plan: the fault plan; only its link clauses apply here.
        name: shell/namespace name (also names the RNG streams).
    """

    def __init__(
        self,
        sim: Simulator,
        parent: NetworkNamespace,
        allocator: AddressAllocator,
        plan: FaultPlan,
        name: str = "chaosshell",
    ) -> None:
        if not isinstance(plan, FaultPlan):
            raise ChaosError(f"plan must be a FaultPlan, got {type(plan)!r}")
        down_clauses = plan.link_clauses("downlink")
        up_clauses = plan.link_clauses("uplink")
        if down_clauses:
            downlink = ChaosPipe(
                sim, down_clauses,
                sim.streams.stream(f"chaos:{name}:downlink"),
                obs_path=f"chaos.{name}.downlink",
            )
        else:
            downlink = InstantPipe(sim)
        if up_clauses:
            uplink = ChaosPipe(
                sim, up_clauses,
                sim.streams.stream(f"chaos:{name}:uplink"),
                obs_path=f"chaos.{name}.uplink",
            )
        else:
            uplink = InstantPipe(sim)
        super().__init__(sim, parent, allocator, name, downlink, uplink)
        self.plan = plan
        #: Application-layer injectors, wired by ShellStack.add_chaos when
        #: the plan carries server/DNS clauses (None when standalone).
        self.server_injector = None
        self.dns_injector = None

    @property
    def faults_injected(self) -> int:
        """Link-level fault decisions taken so far (both directions)."""
        total = 0
        for pipe in (self.downlink_pipe, self.uplink_pipe):
            total += getattr(pipe, "faults_injected", 0)
        return total
