"""Application-layer fault injectors: server and DNS clause matching.

These are the stateful halves of :class:`~repro.chaos.plan.ServerFaultClause`
and :class:`~repro.chaos.plan.DnsFaultClause`: each injector counts
matching requests/queries per clause and decides — deterministically, by
arrival order — which ones a clause afflicts. One injector is shared
across all of a ReplayShell's servers (resp. its DNS server), so clause
counting is site-wide, matching how a real incident hits a backend, not a
socket.

The injectors hold no randomness: clause matching is pure arrival-order
arithmetic, so the afflicted request set is identical on every replay.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.chaos.plan import DnsFaultClause, ServerFaultClause
from repro.sim.simulator import Simulator


class _ClauseState:
    """One clause plus its matched-so-far counter."""

    __slots__ = ("clause", "matched", "fired")

    def __init__(self, clause) -> None:
        self.clause = clause
        self.matched = 0
        self.fired = 0

    def take(self) -> bool:
        """Count one match; True when the clause afflicts it."""
        index = self.matched
        self.matched += 1
        clause = self.clause
        if index < clause.skip:
            return False
        if clause.count is not None and index >= clause.skip + clause.count:
            return False
        self.fired += 1
        return True


class ServerFaultInjector:
    """Decides which HTTP requests a plan's server clauses afflict.

    Attach to one or more :class:`~repro.http.server.HttpServer` instances
    via their ``fault_injector`` attribute (``ShellStack.add_chaos`` does
    this for every replay server). With an observability registry on
    ``sim``, fault firings are counted per kind under ``obs_path``.
    """

    def __init__(
        self,
        sim: Simulator,
        clauses: Iterable[ServerFaultClause],
        obs_path: str = "chaos.server",
    ) -> None:
        self.sim = sim
        self._states: List[_ClauseState] = [
            _ClauseState(clause) for clause in clauses
        ]
        self.faults_fired = 0
        registry = sim.metrics
        if registry is not None:
            self._obs_counters = {
                kind: registry.counter(f"{obs_path}.{kind}")
                for kind in ("stall", "reset", "truncate", "error-burst")
            }
        else:
            self._obs_counters = None

    def fault_for(self, request) -> Optional[ServerFaultClause]:
        """The first clause afflicting this request, if any.

        Called once per request by the serving connection; calling order
        across servers follows simulation event order, so the outcome is
        deterministic.
        """
        uri = getattr(request, "uri", "")
        for state in self._states:
            clause = state.clause
            if (clause.path_prefix is not None
                    and not uri.startswith(clause.path_prefix)):
                continue
            if state.take():
                self.faults_fired += 1
                if self._obs_counters is not None:
                    self._obs_counters[clause.kind].add(1)
                return clause
        return None

    def __repr__(self) -> str:
        return (
            f"<ServerFaultInjector clauses={len(self._states)} "
            f"fired={self.faults_fired}>"
        )


class DnsFaultInjector:
    """Decides which DNS queries a plan's DNS clauses afflict.

    Attach to a :class:`~repro.dns.server.DnsServer` via its
    ``fault_injector`` attribute.
    """

    def __init__(
        self,
        sim: Simulator,
        clauses: Iterable[DnsFaultClause],
        obs_path: str = "chaos.dns",
    ) -> None:
        self.sim = sim
        self._states: List[_ClauseState] = [
            _ClauseState(clause) for clause in clauses
        ]
        self.faults_fired = 0
        registry = sim.metrics
        if registry is not None:
            self._obs_counters = {
                kind: registry.counter(f"{obs_path}.{kind}")
                for kind in ("servfail", "timeout", "slow")
            }
        else:
            self._obs_counters = None

    def fault_for(self, name: str) -> Optional[DnsFaultClause]:
        """The first clause afflicting a query for ``name``, if any."""
        name = name.lower()
        for state in self._states:
            clause = state.clause
            if (clause.name_suffix is not None
                    and not name.endswith(clause.name_suffix.lower())):
                continue
            if state.take():
                self.faults_fired += 1
                if self._obs_counters is not None:
                    self._obs_counters[clause.kind].add(1)
                return clause
        return None

    def __repr__(self) -> str:
        return (
            f"<DnsFaultInjector clauses={len(self._states)} "
            f"fired={self.faults_fired}>"
        )
