"""Declarative fault plans: what breaks, when, and how.

A :class:`FaultPlan` is a schedule of fault *clauses* — link outages,
Gilbert–Elliott burst loss, packet corruption and reordering, SYN
blackholes, server-side stalls/resets/truncations/error bursts, and DNS
failure/latency clauses. Plans are plain frozen dataclasses: picklable
(they cross ``ParallelRunner`` fork boundaries inside scenario factories)
and JSON-serializable (``to_json``/``from_json``), so a fault scenario is
a reviewable artifact, exactly like a Mahimahi packet-delivery trace.

Plans carry no randomness of their own. Every stochastic clause (loss,
corruption, reordering) is driven at injection time by a named stream from
:mod:`repro.sim.random`, so the same seed and the same plan replay the
exact same failure sequence — bit-reproducible chaos (DESIGN.md §8).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from typing import Dict, Iterable, Optional, Tuple, Type, Union

from repro.errors import ChaosError

#: Direction values accepted by link-layer clauses.
DIRECTIONS = ("uplink", "downlink", "both")

#: Server fault kinds (see :class:`ServerFaultClause`).
SERVER_FAULT_KINDS = ("stall", "reset", "truncate", "error-burst")

#: DNS fault kinds (see :class:`DnsFaultClause`).
DNS_FAULT_KINDS = ("servfail", "timeout", "slow")


def _check_direction(direction: str) -> None:
    if direction not in DIRECTIONS:
        raise ChaosError(
            f"direction must be one of {DIRECTIONS}, got {direction!r}"
        )


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ChaosError(f"{name} must be in [0, 1], got {value!r}")


@dataclass(frozen=True)
class OutageClause:
    """The link goes dark for a window; held packets release at its end.

    Packets arriving during ``[start, start + duration)`` are held and
    delivered FIFO when the window closes — the behaviour of a layer-2
    outage (Wi-Fi roam, cellular handover), where the queue survives but
    nothing drains. With ``period`` set the window repeats every
    ``period`` seconds.

    Args:
        direction: which link direction the outage afflicts.
        start: virtual time the first window opens (seconds).
        duration: window length (seconds, > 0).
        period: repeat interval (> duration), or None for a single window.
    """

    direction: str = "both"
    start: float = 0.0
    duration: float = 1.0
    period: Optional[float] = None

    def __post_init__(self) -> None:
        _check_direction(self.direction)
        if self.start < 0.0:
            raise ChaosError(f"outage start must be >= 0, got {self.start!r}")
        if self.duration <= 0.0:
            raise ChaosError(
                f"outage duration must be > 0, got {self.duration!r}"
            )
        if self.period is not None and self.period <= self.duration:
            raise ChaosError(
                f"outage period ({self.period!r}) must exceed its "
                f"duration ({self.duration!r})"
            )

    def window_end(self, when: float) -> Optional[float]:
        """End of the outage window covering ``when`` (None if outside)."""
        offset = when - self.start
        if offset < 0.0:
            return None
        if self.period is None:
            return self.start + self.duration if offset < self.duration else None
        cycle = int(offset // self.period)
        within = offset - cycle * self.period
        if within < self.duration:
            return self.start + cycle * self.period + self.duration
        return None


@dataclass(frozen=True)
class GilbertElliottClause:
    """Bursty loss: a two-state (good/bad) Markov chain, stepped per packet.

    The classic Gilbert–Elliott channel: in the *good* state packets drop
    with probability ``loss_good`` (usually 0), in the *bad* state with
    ``loss_bad``; the chain moves good→bad with probability ``p_good_bad``
    per packet and bad→good with ``p_bad_good``. Mean burst length is
    ``1 / p_bad_good`` packets. A ``direction="both"`` clause runs one
    independent chain per direction (each direction has its own stream).

    Args:
        direction: which link direction the loss afflicts.
        p_good_bad: per-packet transition probability good → bad.
        p_bad_good: per-packet transition probability bad → good.
        loss_good: drop probability while in the good state.
        loss_bad: drop probability while in the bad state.
    """

    direction: str = "both"
    p_good_bad: float = 0.01
    p_bad_good: float = 0.3
    loss_good: float = 0.0
    loss_bad: float = 1.0

    def __post_init__(self) -> None:
        _check_direction(self.direction)
        for name in ("p_good_bad", "p_bad_good", "loss_good", "loss_bad"):
            _check_probability(name, getattr(self, name))


@dataclass(frozen=True)
class CorruptionClause:
    """Independent per-packet corruption.

    A corrupted packet fails its checksum and is discarded by the receiving
    stack, so at this abstraction level corruption is a drop — but it is
    counted separately (``corrupted`` counter) because its *cause* differs
    from congestive loss, which matters to a failure taxonomy.
    """

    direction: str = "both"
    rate: float = 0.01

    def __post_init__(self) -> None:
        _check_direction(self.direction)
        _check_probability("rate", self.rate)


@dataclass(frozen=True)
class ReorderClause:
    """Independent per-packet reordering.

    A selected packet is delayed by ``extra_delay`` seconds, letting later
    packets overtake it — the out-of-order delivery that exercises TCP's
    duplicate-ACK / SACK machinery.
    """

    direction: str = "both"
    probability: float = 0.01
    extra_delay: float = 0.005

    def __post_init__(self) -> None:
        _check_direction(self.direction)
        _check_probability("probability", self.probability)
        if self.extra_delay <= 0.0:
            raise ChaosError(
                f"extra_delay must be > 0, got {self.extra_delay!r}"
            )


@dataclass(frozen=True)
class SynBlackholeClause:
    """Drop TCP SYN segments during a window (connections cannot open).

    Established flows keep working; *new* connection attempts see their
    handshakes blackholed and fall back on the transport's SYN
    retransmission timers — a middlebox/firewall failure mode distinct
    from a full outage.
    """

    direction: str = "both"
    start: float = 0.0
    duration: float = 1.0

    def __post_init__(self) -> None:
        _check_direction(self.direction)
        if self.start < 0.0:
            raise ChaosError(f"start must be >= 0, got {self.start!r}")
        if self.duration <= 0.0:
            raise ChaosError(f"duration must be > 0, got {self.duration!r}")

    def active(self, when: float) -> bool:
        """Whether the window covers virtual time ``when``."""
        offset = when - self.start
        return 0.0 <= offset < self.duration


@dataclass(frozen=True)
class ServerFaultClause:
    """A server-side fault applied to a run of matching requests.

    Matching is deterministic and order-based: the injector counts
    requests whose URI starts with ``path_prefix`` (None matches all),
    skips the first ``skip`` of them, then afflicts the next ``count``
    (None = every one from there on).

    Kinds:

    * ``"stall"`` — send headers plus ``after_bytes`` of body, then stop
      for ``stall`` seconds before finishing the response (a wedged
      worker; the response eventually completes).
    * ``"truncate"`` — send headers (with the full Content-Length) plus
      ``after_bytes`` of body, then close the connection: the client sees
      a short read (:class:`repro.errors.TruncatedBody`).
    * ``"reset"`` — send ``after_bytes`` of body, then abort the
      connection with RST (:class:`repro.errors.ResetMidTransfer`).
    * ``"error-burst"`` — answer with ``status`` (default 503) instead of
      invoking the handler.
    """

    kind: str = "stall"
    path_prefix: Optional[str] = None
    skip: int = 0
    count: Optional[int] = 1
    after_bytes: int = 0
    stall: float = 0.5
    status: int = 503

    def __post_init__(self) -> None:
        if self.kind not in SERVER_FAULT_KINDS:
            raise ChaosError(
                f"server fault kind must be one of {SERVER_FAULT_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.skip < 0:
            raise ChaosError(f"skip must be >= 0, got {self.skip!r}")
        if self.count is not None and self.count < 1:
            raise ChaosError(f"count must be >= 1 or None, got {self.count!r}")
        if self.after_bytes < 0:
            raise ChaosError(
                f"after_bytes must be >= 0, got {self.after_bytes!r}"
            )
        if self.kind == "stall" and self.stall <= 0.0:
            raise ChaosError(f"stall must be > 0, got {self.stall!r}")
        if not 100 <= self.status <= 599:
            raise ChaosError(f"status must be an HTTP status, got {self.status!r}")


@dataclass(frozen=True)
class DnsFaultClause:
    """A DNS-server fault applied to a run of matching queries.

    Matching mirrors :class:`ServerFaultClause`: queries whose name ends
    with ``name_suffix`` (None matches all) are counted; the first
    ``skip`` pass through, the next ``count`` are afflicted.

    Kinds: ``"servfail"`` answers RCODE 2 (SERVFAIL), ``"timeout"``
    swallows the query (the resolver retries, then fails), ``"slow"``
    adds ``delay`` seconds to the answer.
    """

    kind: str = "servfail"
    name_suffix: Optional[str] = None
    skip: int = 0
    count: Optional[int] = 1
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in DNS_FAULT_KINDS:
            raise ChaosError(
                f"dns fault kind must be one of {DNS_FAULT_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.skip < 0:
            raise ChaosError(f"skip must be >= 0, got {self.skip!r}")
        if self.count is not None and self.count < 1:
            raise ChaosError(f"count must be >= 1 or None, got {self.count!r}")
        if self.kind == "slow" and self.delay <= 0.0:
            raise ChaosError(f"slow clause needs delay > 0, got {self.delay!r}")


#: Any clause a plan can hold.
Clause = Union[
    OutageClause,
    GilbertElliottClause,
    CorruptionClause,
    ReorderClause,
    SynBlackholeClause,
    ServerFaultClause,
    DnsFaultClause,
]

#: Clause kinds that ride on link pipes (have a ``direction``).
LINK_CLAUSE_TYPES: Tuple[Type, ...] = (
    OutageClause,
    GilbertElliottClause,
    CorruptionClause,
    ReorderClause,
    SynBlackholeClause,
)

#: JSON tag -> clause class (the wire format's discriminator).
_CLAUSE_KINDS: Dict[str, Type] = {
    "outage": OutageClause,
    "ge-loss": GilbertElliottClause,
    "corruption": CorruptionClause,
    "reorder": ReorderClause,
    "syn-blackhole": SynBlackholeClause,
    "server": ServerFaultClause,
    "dns": DnsFaultClause,
}

_KIND_BY_TYPE: Dict[Type, str] = {cls: tag for tag, cls in _CLAUSE_KINDS.items()}

#: Schema version stamped into serialized plans.
PLAN_FORMAT_VERSION = 1


@dataclass(frozen=True)
class FaultPlan:
    """A named, ordered collection of fault clauses.

    The plan is pure data: build one, serialize it with :meth:`to_json`,
    ship it across processes (it pickles), hand it to
    :class:`~repro.chaos.shell.ChaosShell` /
    :meth:`~repro.core.compose.ShellStack.add_chaos` / ``mm-chaos``.
    Clause order is preserved and meaningful: the first matching server or
    DNS clause wins for any given request/query.
    """

    clauses: Tuple[Clause, ...] = ()
    name: str = "chaos"

    def __post_init__(self) -> None:
        if not isinstance(self.clauses, tuple):
            object.__setattr__(self, "clauses", tuple(self.clauses))
        for clause in self.clauses:
            if type(clause) not in _KIND_BY_TYPE:
                raise ChaosError(
                    f"not a fault clause: {clause!r} (expected one of "
                    f"{sorted(c.__name__ for c in _KIND_BY_TYPE)})"
                )

    # ------------------------------------------------------------------ #
    # selection

    def link_clauses(self, direction: str) -> Tuple[Clause, ...]:
        """Link-layer clauses afflicting ``direction`` (or ``both``)."""
        if direction not in ("uplink", "downlink"):
            raise ChaosError(
                f"direction must be 'uplink' or 'downlink', got {direction!r}"
            )
        return tuple(
            clause for clause in self.clauses
            if isinstance(clause, LINK_CLAUSE_TYPES)
            and clause.direction in (direction, "both")
        )

    @property
    def server_clauses(self) -> Tuple[ServerFaultClause, ...]:
        """Server-side fault clauses, in plan order."""
        return tuple(
            clause for clause in self.clauses
            if isinstance(clause, ServerFaultClause)
        )

    @property
    def dns_clauses(self) -> Tuple[DnsFaultClause, ...]:
        """DNS fault clauses, in plan order."""
        return tuple(
            clause for clause in self.clauses
            if isinstance(clause, DnsFaultClause)
        )

    @property
    def has_link_faults(self) -> bool:
        """Whether any clause rides on the link pipes."""
        return any(isinstance(c, LINK_CLAUSE_TYPES) for c in self.clauses)

    # ------------------------------------------------------------------ #
    # serialization

    def to_dict(self) -> dict:
        """Plain-data form (stable key order; JSON-ready)."""
        return {
            "version": PLAN_FORMAT_VERSION,
            "name": self.name,
            # The clause-type tag is "type", not "kind": server/DNS
            # clauses carry their own "kind" field (stall, servfail...)
            # and the two must not collide in the flat clause object.
            "clauses": [
                {"type": _KIND_BY_TYPE[type(clause)], **asdict(clause)}
                for clause in self.clauses
            ],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize to JSON (sorted keys, so equal plans are equal text)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict`; validates every clause."""
        if not isinstance(data, dict):
            raise ChaosError(f"fault plan must be an object, got {type(data)}")
        version = data.get("version", PLAN_FORMAT_VERSION)
        if version != PLAN_FORMAT_VERSION:
            raise ChaosError(
                f"unsupported fault-plan version {version!r} "
                f"(this build reads version {PLAN_FORMAT_VERSION})"
            )
        clauses = []
        for index, entry in enumerate(data.get("clauses", ())):
            if not isinstance(entry, dict) or "type" not in entry:
                raise ChaosError(
                    f"clause {index} must be an object with a 'type' key"
                )
            entry = dict(entry)
            tag = entry.pop("type")
            clause_cls = _CLAUSE_KINDS.get(tag)
            if clause_cls is None:
                raise ChaosError(
                    f"clause {index}: unknown type {tag!r} (expected one "
                    f"of {sorted(_CLAUSE_KINDS)})"
                )
            known = {f.name for f in fields(clause_cls)}
            unknown = set(entry) - known
            if unknown:
                raise ChaosError(
                    f"clause {index} ({tag}): unknown fields {sorted(unknown)}"
                )
            try:
                clauses.append(clause_cls(**entry))
            except TypeError as exc:
                raise ChaosError(f"clause {index} ({tag}): {exc}") from None
        return cls(clauses=tuple(clauses), name=data.get("name", "chaos"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from JSON text."""
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ChaosError(f"fault plan is not valid JSON: {exc}") from None
        return cls.from_dict(data)

    def __len__(self) -> int:
        return len(self.clauses)

    def __repr__(self) -> str:
        kinds = ", ".join(_KIND_BY_TYPE[type(c)] for c in self.clauses)
        return f"<FaultPlan {self.name!r} [{kinds}]>"


class OutageSchedule:
    """The merged outage windows of several clauses, queryable in time.

    Used by :class:`~repro.chaos.pipes.ChaosPipe` (hold and release
    packets) and :class:`~repro.linkem.tracelink.TracePipe` (suppress
    delivery opportunities inside windows).
    """

    def __init__(self, clauses: Iterable[OutageClause]) -> None:
        self._clauses = tuple(clauses)
        for clause in self._clauses:
            if not isinstance(clause, OutageClause):
                raise ChaosError(f"not an outage clause: {clause!r}")

    def __bool__(self) -> bool:
        return bool(self._clauses)

    def active(self, when: float) -> bool:
        """Whether any outage window covers ``when``."""
        return any(c.window_end(when) is not None for c in self._clauses)

    def release_time(self, when: float) -> float:
        """Earliest time >= ``when`` not inside any window.

        Windows from different clauses may overlap or abut; iterate to a
        fixed point (windows are finite, so this terminates).
        """
        moved = True
        while moved:
            moved = False
            for clause in self._clauses:
                end = clause.window_end(when)
                if end is not None and end > when:
                    when = end
                    moved = True
        return when


__all__ = [
    "Clause",
    "CorruptionClause",
    "DnsFaultClause",
    "FaultPlan",
    "GilbertElliottClause",
    "OutageClause",
    "OutageSchedule",
    "ReorderClause",
    "ServerFaultClause",
    "SynBlackholeClause",
]
