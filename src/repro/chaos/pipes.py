"""Link-layer fault injection: one pipe applying a direction's clauses.

A :class:`ChaosPipe` is one direction of a :class:`~repro.chaos.shell.
ChaosShell`: every packet crossing it runs the direction's link clauses in
a fixed order — SYN blackhole, Gilbert–Elliott loss, corruption, reorder,
outage hold — with all randomness drawn from one injected seeded stream.
The evaluation order is fixed so the stream position after N packets is a
pure function of the arrival sequence, which is what makes the same seed
and the same plan replay the same fault pattern bit for bit.

Packets held by an outage release FIFO at the window's end: the event
queue breaks time ties by insertion order, so scheduling every held packet
at the same release time preserves arrival order by construction.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.chaos.ge import GilbertElliott
from repro.chaos.plan import (
    CorruptionClause,
    GilbertElliottClause,
    OutageClause,
    OutageSchedule,
    ReorderClause,
    SynBlackholeClause,
)
from repro.errors import ChaosError
from repro.net.packet import Packet
from repro.net.pipe import PacketPipe
from repro.sim.simulator import Simulator


class ChaosPipe(PacketPipe):
    """One direction's fault clauses applied to a packet stream.

    Args:
        sim: the simulator.
        clauses: the link clauses for this direction (outage, GE loss,
            corruption, reorder, SYN blackhole) — at most one GE clause.
        rng: seeded stream driving every stochastic clause.
        obs_path: component path for observability counters (e.g.
            ``chaos.chaosshell.downlink``); with a registry attached the
            pipe counts drops by cause and holds, and records a
            cumulative fault time series — appends on events the pipe
            already executes, never schedules (zero observer effect).
    """

    def __init__(
        self,
        sim: Simulator,
        clauses: Iterable,
        rng,
        obs_path: Optional[str] = None,
    ) -> None:
        super().__init__(sim)
        self._rng = rng
        outages = []
        blackholes = []
        self._ge: Optional[GilbertElliott] = None
        self._corrupt_rate = 0.0
        self._reorder: Optional[ReorderClause] = None
        for clause in clauses:
            if isinstance(clause, OutageClause):
                outages.append(clause)
            elif isinstance(clause, GilbertElliottClause):
                if self._ge is not None:
                    raise ChaosError(
                        "at most one Gilbert-Elliott clause per direction"
                    )
                self._ge = GilbertElliott(clause, rng)
            elif isinstance(clause, CorruptionClause):
                self._corrupt_rate += clause.rate
            elif isinstance(clause, ReorderClause):
                if self._reorder is not None:
                    raise ChaosError("at most one reorder clause per direction")
                self._reorder = clause
            elif isinstance(clause, SynBlackholeClause):
                blackholes.append(clause)
            else:
                raise ChaosError(f"not a link fault clause: {clause!r}")
        if self._corrupt_rate > 1.0:
            raise ChaosError(
                f"combined corruption rate exceeds 1: {self._corrupt_rate!r}"
            )
        self._outages = OutageSchedule(outages)
        self._blackholes = tuple(blackholes)
        self.ge_dropped = 0
        self.corrupted = 0
        self.reordered = 0
        self.blackholed = 0
        self.held = 0
        registry = sim.metrics
        if registry is not None and obs_path is not None:
            self._obs_ge = registry.counter(f"{obs_path}.ge_dropped")
            self._obs_corrupt = registry.counter(f"{obs_path}.corrupted")
            self._obs_reorder = registry.counter(f"{obs_path}.reordered")
            self._obs_blackhole = registry.counter(f"{obs_path}.blackholed")
            self._obs_held = registry.counter(f"{obs_path}.held")
            self._obs_faults = registry.timeseries(f"{obs_path}.faults")
        else:
            self._obs_ge = None
            self._obs_corrupt = None
            self._obs_reorder = None
            self._obs_blackhole = None
            self._obs_held = None
            self._obs_faults = None

    @property
    def ge_state(self) -> Optional[str]:
        """The GE chain's current state (None without a GE clause)."""
        return self._ge.state if self._ge is not None else None

    def _obs_fault(self, counter) -> None:
        if counter is not None:
            counter.add(1)
            self._obs_faults.record(
                self._sim.now,
                self.ge_dropped + self.corrupted + self.reordered
                + self.blackholed + self.held,
            )

    def send(self, packet: Packet) -> None:
        self.packets_sent += 1
        now = self._sim.now
        if self._blackholes and packet.protocol == "tcp":
            flags = getattr(packet.payload, "flags", "")
            if "S" in flags and any(b.active(now) for b in self._blackholes):
                self.packets_dropped += 1
                self.blackholed += 1
                self._obs_fault(self._obs_blackhole)
                return
        if self._ge is not None and self._ge.should_drop():
            self.packets_dropped += 1
            self.ge_dropped += 1
            self._obs_fault(self._obs_ge)
            return
        if self._corrupt_rate > 0.0 and self._rng.random() < self._corrupt_rate:
            # A corrupted packet fails its checksum downstream: same fate
            # as a drop, separate cause in the ledger.
            self.packets_dropped += 1
            self.corrupted += 1
            self._obs_fault(self._obs_corrupt)
            return
        deliver_at = now
        if (self._reorder is not None
                and self._rng.random() < self._reorder.probability):
            deliver_at = now + self._reorder.extra_delay
            self.reordered += 1
            self._obs_fault(self._obs_reorder)
        if self._outages:
            release = self._outages.release_time(deliver_at)
            if release > deliver_at:
                deliver_at = release
                self.held += 1
                self._obs_fault(self._obs_held)
        if deliver_at > now:
            self._sim.schedule_at(deliver_at, self.deliver, packet)
        else:
            self._sim.call_soon(self.deliver, packet)

    @property
    def faults_injected(self) -> int:
        """Total fault decisions taken (drops, holds, reorders)."""
        return (
            self.ge_dropped + self.corrupted + self.reordered
            + self.blackholed + self.held
        )
