"""Trace-driven link pipe: the heart of LinkShell.

``mm-link up.trace down.trace`` paces each direction of the link according
to a packet-delivery trace. :class:`TracePipe` is one direction of that.

Semantics (matching Mahimahi's ``link_queue.cc``):

* arriving packets go into a drop-tail queue (unbounded by default);
* at each delivery opportunity the link gets a byte budget of one MTU;
* the budget drains the queue front-to-back — several small packets can
  share one opportunity, and a large packet may need several opportunities,
  carrying its partial progress across them;
* budget left over when the queue empties is discarded (an idle link's
  capacity cannot be banked).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.linkem.overhead import OverheadModel
from repro.linkem.processing import SerialProcessor
from repro.linkem.queues import DropTailQueue
from repro.linkem.trace import ConstantRateSchedule, FileTraceSchedule
from repro.net.packet import MTU_BYTES, Packet
from repro.net.pipe import PacketPipe
from repro.sim.simulator import Simulator

Schedule = Union[FileTraceSchedule, ConstantRateSchedule]


class TracePipe(PacketPipe):
    """One direction of a trace-driven link.

    Args:
        sim: the simulator.
        schedule: opportunity source (file trace or constant rate).
        queue: drop-tail buffer; defaults to unbounded like ``mm-link``.
        overhead: per-packet forwarding cost; defaults to the calibrated
            mm-link cost.
        obs_path: component path for observability probes (e.g.
            ``linkshell.uplink``); with a registry attached to ``sim``,
            the pipe records queue depth/bytes step series at each
            delivery opportunity (the standing backlog after the drain),
            per-opportunity utilization, and delivered/wasted-byte
            counters. Probes fire only on events the pipe already
            executes — they never schedule, and the per-packet enqueue
            path stays probe-free.
        outages: optional outage windows (an object with
            ``active(t)``/``release_time(t)``, e.g.
            :class:`repro.chaos.plan.OutageSchedule`). Delivery
            opportunities falling inside a window are suppressed; the
            queue keeps filling and drains at the first opportunity
            after the window — a dead link with a surviving buffer.
    """

    def __init__(
        self,
        sim: Simulator,
        schedule: Schedule,
        queue: Optional[DropTailQueue] = None,
        overhead: OverheadModel = None,
        obs_path: Optional[str] = None,
        outages=None,
    ) -> None:
        super().__init__(sim)
        if overhead is None:
            overhead = OverheadModel.link_shell()
        self._schedule = schedule
        self._outages = outages if outages else None
        self._queue = queue if queue is not None else DropTailQueue()
        self._processor = SerialProcessor(overhead.service_time)
        # The packet currently "on the wire" (partially transmitted across
        # opportunities). Dequeue-time disciplines (CoDel) decide drops
        # when a packet is committed to transmission, so the in-flight
        # packet lives outside the queue.
        self._current: Optional[Packet] = None
        self._current_sent = 0
        self._wake = None
        self._wake_time = 0.0
        self.opportunities_used = 0
        # Probe handles, captured once at construction (None when
        # uninstrumented — the hot paths then pay one None check).
        registry = sim.metrics
        if registry is not None and obs_path is not None:
            self._obs_depth = registry.timeseries(f"{obs_path}.queue_depth")
            self._obs_bytes = registry.timeseries(f"{obs_path}.queue_bytes")
            self._obs_util = registry.timeseries(f"{obs_path}.utilization")
            self._obs_delivered = registry.counter(f"{obs_path}.bytes_delivered")
            self._obs_wasted = registry.counter(f"{obs_path}.bytes_wasted")
            self._obs_drops = registry.counter(f"{obs_path}.drops")
            # The opportunity loop is the hottest path in the simulator,
            # so its probe is fully inlined: point lists captured as
            # direct handles, change detection via cached previous
            # values, counters bumped by attribute increment. Same
            # observable data as record_changed()/add(), no call frames.
            self._obs_depth_pts = self._obs_depth.points
            self._obs_bytes_pts = self._obs_bytes.points
            self._obs_util_pts = self._obs_util.points
        else:
            self._obs_depth = None
            self._obs_bytes = None
            self._obs_util = None
            self._obs_delivered = None
            self._obs_wasted = None
            self._obs_drops = None
            self._obs_depth_pts = None
            self._obs_bytes_pts = None
            self._obs_util_pts = None
        self._obs_prev_depth = -1
        self._obs_prev_bytes = -1
        self._obs_prev_util = -1.0

    @property
    def queue(self):
        """The buffer feeding the link (drop-tail or CoDel)."""
        return self._queue

    def send(self, packet: Packet) -> None:
        self.packets_sent += 1
        # SerialProcessor.finish_time inlined (runs per arriving packet).
        # service > 0 always defers (_busy_until advances past now), so
        # the direct-enqueue branch is exactly the service == 0 case.
        sim = self._sim
        processor = self._processor
        service = processor.service_time
        if service > 0.0:
            now = sim._clock._now
            busy = processor._busy_until
            start = now if now > busy else busy
            processed_at = start + service
            processor._busy_until = processed_at
            processor.packets_processed += 1
            sim.schedule_at(processed_at, self._enqueue, packet)
            return
        self._enqueue(packet)

    def _enqueue(self, packet: Packet) -> None:
        if not self._queue.push(packet, self._sim._clock._now):
            self.packets_dropped += 1
            if self._obs_drops is not None:
                self._obs_drops.add(1)
            return
        if self._wake is None:
            self._schedule_wake()

    def _schedule_wake(self) -> None:
        when = self._schedule.next_opportunity(self._sim._clock._now)
        if self._outages is not None:
            # Opportunities inside an outage window never happen; the
            # next usable one is the schedule's first opportunity after
            # the window ends (windows may abut, hence the loop). The
            # iteration cap guards against a periodic outage phase-locked
            # to the opportunity grid; past it, the window end itself
            # becomes the opportunity time.
            for __ in range(1024):
                if not self._outages.active(when):
                    break
                when = self._schedule.next_opportunity(
                    self._outages.release_time(when)
                )
            else:
                when = self._outages.release_time(when)
        # Stashed for the probe: _opportunity runs exactly at its
        # scheduled time, so this doubles as "now" without a clock read.
        self._wake_time = when
        self._wake = self._sim.schedule_at(when, self._opportunity)

    def _opportunity(self) -> None:
        self._wake = None
        self.opportunities_used += 1
        # Batched drain: state is hoisted into locals for the loop and
        # written back once, deliveries bypass PacketPipe.deliver's frame,
        # and the delivery counters are bulk-updated after the loop. The
        # event structure is untouched (deliveries were always direct
        # calls), so the executed event stream — and the determinism
        # digest — is bit-identical to the unbatched loop. _opportunity
        # runs exactly at its scheduled time, so _wake_time is "now"
        # without a clock read.
        now = self._wake_time
        queue = self._queue
        sink = self._deliver
        current = self._current
        current_sent = self._current_sent
        budget = MTU_BYTES
        delivered = 0
        delivered_bytes = 0
        while budget > 0:
            if current is None:
                if not queue:
                    break
                current = queue.pop(now)
                if current is None:
                    # The discipline dropped its way to an empty queue.
                    break
                current_sent = 0
            remaining = current.size - current_sent
            if remaining <= budget:
                budget -= remaining
                packet = current
                current = None
                if sink is None:
                    self.packets_dropped += 1
                else:
                    delivered += 1
                    delivered_bytes += packet.size
                    sink(packet)
            else:
                current_sent += budget
                budget = 0
        self._current = current
        self._current_sent = current_sent
        if delivered:
            self.packets_delivered += delivered
            self.bytes_delivered += delivered_bytes
        if self._obs_util is not None:
            # Change-point recording: runs of identical values (a
            # full-MTU bulk transfer, a large packet held across
            # opportunities) collapse to their change points — lossless
            # for a step series and far fewer appends.
            used = MTU_BYTES - budget
            now = self._wake_time
            util = used / MTU_BYTES
            if util != self._obs_prev_util:
                self._obs_prev_util = util
                self._obs_util_pts.append((now, util))
            depth = len(self._queue)
            if depth != self._obs_prev_depth:
                self._obs_prev_depth = depth
                self._obs_depth_pts.append((now, depth))
            queued_bytes = self._queue.bytes
            if queued_bytes != self._obs_prev_bytes:
                self._obs_prev_bytes = queued_bytes
                self._obs_bytes_pts.append((now, queued_bytes))
            self._obs_delivered.value += used
            # Leftover budget with an empty queue is capacity an idle
            # link discards — the paper's "wasted opportunity" quantity.
            self._obs_wasted.value += budget
        if self._queue or self._current is not None:
            self._schedule_wake()
