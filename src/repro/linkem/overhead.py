"""Calibrated forwarding-overhead constants (the Figure 2 measurement).

Figure 2 of the paper quantifies the *cost of the emulation machinery
itself*: with the 500-site corpus, DelayShell at 0 ms inflates median page
load time by ~0.15% over bare ReplayShell, and LinkShell with a
1000 Mbit/s trace by ~1.5%.

In the real system those costs come from each shell being a userspace
process on the packet path. Here they are modelled explicitly:

* every emulation pipe charges a serial per-packet processing time
  (:class:`~repro.linkem.processing.SerialProcessor`);
* LinkShell additionally quantizes deliveries to trace opportunities, which
  at 1000 Mbit/s adds ~12 us of serialization per MTU packet.

The two constants below were calibrated once against the Figure 2 bench
(`benchmarks/bench_figure2_overhead.py`) so that the reproduced overheads
land in the paper's regime. They are defaults, not hard-coded behaviour —
every shell constructor accepts an :class:`OverheadModel`.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Per-packet processing time of mm-delay's forwarding loop (seconds).
DELAY_SHELL_SERVICE_TIME = 4.0e-6

#: Per-packet processing time of mm-link's heavier trace-driven loop
#: (seconds). mm-link does byte accounting and trace bookkeeping per packet,
#: so it costs measurably more than mm-delay.
LINK_SHELL_SERVICE_TIME = 14.0e-6


@dataclass(frozen=True)
class OverheadModel:
    """Per-packet forwarding costs charged by an emulation pipe.

    Attributes:
        service_time: serial CPU cost per packet, seconds.
    """

    service_time: float = 0.0

    @classmethod
    def none(cls) -> "OverheadModel":
        """A zero-cost model (ideal emulation, useful in unit tests)."""
        return cls(service_time=0.0)

    @classmethod
    def delay_shell(cls) -> "OverheadModel":
        """The calibrated mm-delay forwarding cost."""
        return cls(service_time=DELAY_SHELL_SERVICE_TIME)

    @classmethod
    def link_shell(cls) -> "OverheadModel":
        """The calibrated mm-link forwarding cost."""
        return cls(service_time=LINK_SHELL_SERVICE_TIME)
