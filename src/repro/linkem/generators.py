"""Synthetic packet-delivery trace generators.

The paper's corpus ships link traces recorded from real cellular networks;
without those recordings we generate equivalents:

* :func:`constant_rate_trace` — a fixed-rate link (e.g. the 1000 Mbit/s
  trace of Figure 2, or the 1/14/25 Mbit/s links of Table 2);
* :func:`cellular_trace` — a time-varying link whose rate follows a bounded
  random walk, shaped like the Verizon/AT&T LTE traces Mahimahi ships
  (bursty, with deep fades and second-scale coherence).
"""

from __future__ import annotations

import math
import random
from typing import List

from repro.errors import TraceError
from repro.linkem.trace import PacketDeliveryTrace
from repro.net.packet import MTU_BYTES


def constant_rate_trace(
    rate_mbps: float, duration_ms: int = 1000
) -> PacketDeliveryTrace:
    """Build a constant-rate trace.

    Args:
        rate_mbps: link rate in Mbit/s (> 0).
        duration_ms: trace period; longer periods express slow rates more
            precisely (a 1 Mbit/s link delivers one MTU every ~12 ms).

    The k-th opportunity is placed at ``round(k * MTU / rate)`` so the trace
    delivers exactly the requested average rate per period.
    """
    if rate_mbps <= 0.0:
        raise TraceError(f"rate must be positive, got {rate_mbps!r}")
    if duration_ms <= 0:
        raise TraceError(f"duration must be positive, got {duration_ms!r}")
    bytes_per_ms = rate_mbps * 1e6 / 8.0 / 1000.0
    total_opportunities = int(duration_ms * bytes_per_ms / MTU_BYTES)
    if total_opportunities < 1:
        raise TraceError(
            f"{rate_mbps} Mbit/s over {duration_ms} ms yields no delivery "
            "opportunities; increase duration_ms"
        )
    times: List[int] = []
    for k in range(1, total_opportunities + 1):
        t = round(k * MTU_BYTES / bytes_per_ms)
        times.append(min(int(t), duration_ms))
    if times[-1] != duration_ms:
        times[-1] = duration_ms
    return PacketDeliveryTrace(times)


def cellular_trace(
    rng: random.Random,
    duration_ms: int = 60_000,
    mean_mbps: float = 9.0,
    volatility: float = 0.25,
    floor_mbps: float = 0.3,
    ceiling_mbps: float = 40.0,
    coherence_ms: int = 100,
) -> PacketDeliveryTrace:
    """Build a time-varying, cellular-like trace.

    The instantaneous rate follows a mean-reverting multiplicative random
    walk updated every ``coherence_ms``: LTE-like behaviour with sustained
    highs, deep fades, and no negative rates.

    Args:
        rng: randomness source (pass a seeded ``random.Random``).
        duration_ms: total trace period.
        mean_mbps: long-run average rate the walk reverts toward.
        volatility: per-step lognormal sigma; higher = burstier.
        floor_mbps / ceiling_mbps: hard clamps on the instantaneous rate.
        coherence_ms: how long the rate holds between walk steps.
    """
    if duration_ms <= 0 or coherence_ms <= 0:
        raise TraceError("duration_ms and coherence_ms must be positive")
    if not (0 < floor_mbps <= mean_mbps <= ceiling_mbps):
        raise TraceError("need 0 < floor <= mean <= ceiling")
    times: List[int] = []
    rate = mean_mbps
    carry_bytes = 0.0
    for window_start in range(0, duration_ms, coherence_ms):
        window_end = min(window_start + coherence_ms, duration_ms)
        window_len = window_end - window_start
        # Mean reversion in log space plus lognormal noise.
        drift = 0.2 * (math.log(mean_mbps) - math.log(rate))
        rate = rate * math.exp(drift + rng.gauss(0.0, volatility))
        rate = max(floor_mbps, min(ceiling_mbps, rate))
        bytes_per_ms = rate * 1e6 / 8.0 / 1000.0
        budget = carry_bytes + bytes_per_ms * window_len
        opportunities = int(budget / MTU_BYTES)
        carry_bytes = budget - opportunities * MTU_BYTES
        for k in range(1, opportunities + 1):
            t = window_start + k * window_len / (opportunities + 1)
            times.append(int(t))
    if not times or times[-1] != duration_ms:
        times.append(duration_ms)
    return PacketDeliveryTrace(times)
