"""Link emulation: the machinery behind DelayShell and LinkShell.

* :class:`~repro.linkem.delay.DelayPipe` — fixed one-way delay per packet
  (DelayShell), with an optional serial per-packet processing cost that
  models the userspace shell process.
* :class:`~repro.linkem.trace.PacketDeliveryTrace` — Mahimahi's ``.trace``
  format: one millisecond timestamp per line, each line one MTU-sized
  packet-delivery opportunity; the trace repeats when exhausted.
* :class:`~repro.linkem.tracelink.TracePipe` — trace-driven pacing with
  Mahimahi's byte-budget accounting (LinkShell).
* :class:`~repro.linkem.queues.DropTailQueue` — bounded FIFO packet queue.
* :mod:`~repro.linkem.generators` — synthetic constant-rate and cellular
  trace generators.
* :mod:`~repro.linkem.overhead` — the calibrated per-packet forwarding
  costs behind the Figure 2 overhead measurement.
"""

from repro.linkem.codel import CoDelQueue
from repro.linkem.delay import DelayPipe, JitterDelayPipe, LossPipe
from repro.linkem.generators import cellular_trace, constant_rate_trace
from repro.linkem.overhead import OverheadModel
from repro.linkem.processing import SerialProcessor
from repro.linkem.queues import DropTailQueue
from repro.linkem.trace import (
    ConstantRateSchedule,
    FileTraceSchedule,
    PacketDeliveryTrace,
)
from repro.linkem.tracelink import TracePipe

__all__ = [
    "CoDelQueue",
    "ConstantRateSchedule",
    "DelayPipe",
    "DropTailQueue",
    "FileTraceSchedule",
    "JitterDelayPipe",
    "LossPipe",
    "OverheadModel",
    "PacketDeliveryTrace",
    "SerialProcessor",
    "TracePipe",
    "cellular_trace",
    "constant_rate_trace",
]
