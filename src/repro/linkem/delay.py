"""Fixed one-way delay pipe: the heart of DelayShell.

``mm-delay 40`` holds every packet, in each direction, for exactly 40 ms.
:class:`DelayPipe` is one direction of that: packets first pass through the
shell's serial per-packet processing stage, then wait the configured
one-way delay. Because the delay is constant and processing is FIFO,
ordering is preserved by construction.
"""

from __future__ import annotations

from heapq import heappush

from repro.linkem.overhead import OverheadModel
from repro.linkem.processing import SerialProcessor
from repro.net.packet import Packet
from repro.net.pipe import PacketPipe
from repro.sim.simulator import Simulator


class DelayPipe(PacketPipe):
    """One direction of a fixed-delay link.

    Args:
        sim: the simulator.
        one_way_delay: seconds each packet is held (>= 0).
        overhead: per-packet forwarding cost model; defaults to the
            calibrated mm-delay cost. Pass ``OverheadModel.none()`` for an
            ideal delay element.
    """

    def __init__(
        self,
        sim: Simulator,
        one_way_delay: float,
        overhead: OverheadModel = None,
    ) -> None:
        super().__init__(sim)
        if one_way_delay < 0.0:
            raise ValueError(f"delay must be >= 0, got {one_way_delay!r}")
        if overhead is None:
            overhead = OverheadModel.delay_shell()
        self.one_way_delay = one_way_delay
        self._processor = SerialProcessor(overhead.service_time)

    def send(self, packet: Packet) -> None:
        self.packets_sent += 1
        # SerialProcessor.finish_time and Simulator.schedule_at inlined:
        # this runs once per packet on every delayed path. The delivery
        # time is now + service + delay with both terms >= 0, so
        # schedule_at's into-the-past check can never fire; the scheduled
        # event (time, seq, DelayPipe.deliver) is identical either way.
        sim = self._sim
        now = sim._clock._now
        processor = self._processor
        service = processor.service_time
        if service > 0.0:
            busy = processor._busy_until
            start = now if now > busy else busy
            processed_at = start + service
            processor._busy_until = processed_at
            processor.packets_processed += 1
        else:
            processed_at = now
        time = processed_at + self.one_way_delay
        queue = sim._queue
        seq = queue._seq
        queue._seq = seq + 1
        queue._live += 1
        entry = [time, seq, self.deliver, (packet,)]
        tail = queue._tail
        if not tail or time >= tail[-1][0]:
            tail.append(entry)
        else:
            heappush(queue._heap, entry)


class LossPipe(PacketPipe):
    """Independent random loss (``mm-loss``).

    Each packet is dropped with probability ``loss_rate``; survivors pass
    through instantly (compose with DelayPipe/TracePipe for delay or
    pacing, exactly as ``mm-loss`` composes with the other shells).
    """

    def __init__(self, sim: Simulator, loss_rate: float, rng) -> None:
        super().__init__(sim)
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1]: {loss_rate!r}")
        self.loss_rate = loss_rate
        self._rng = rng

    def send(self, packet: Packet) -> None:
        self.packets_sent += 1
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self.packets_dropped += 1
            return
        self._sim.call_soon(self.deliver, packet)


class JitterDelayPipe(PacketPipe):
    """A delay pipe with per-packet random jitter (the live Internet).

    Models queueing from cross traffic on a real path: each packet waits
    ``base_delay`` plus a draw from an exponential with mean
    ``jitter_mean``. Delivery order is preserved (a packet never overtakes
    one sent before it), like FIFO queues along a route.

    Used by :mod:`repro.web` for the "actual Web" paths of Figure 3 — the
    emulation shells never jitter.
    """

    def __init__(
        self,
        sim: Simulator,
        base_delay: float,
        jitter_mean: float,
        rng,
    ) -> None:
        super().__init__(sim)
        if base_delay < 0.0 or jitter_mean < 0.0:
            raise ValueError("delays must be >= 0")
        self.base_delay = base_delay
        self.jitter_mean = jitter_mean
        self._rng = rng
        self._last_delivery = 0.0

    def send(self, packet: Packet) -> None:
        self.packets_sent += 1
        jitter = (
            self._rng.expovariate(1.0 / self.jitter_mean)
            if self.jitter_mean > 0.0
            else 0.0
        )
        deliver_at = self._sim.now + self.base_delay + jitter
        if deliver_at < self._last_delivery:
            deliver_at = self._last_delivery
        self._last_delivery = deliver_at
        self._sim.schedule_at(deliver_at, self.deliver, packet)
