"""Bounded drop-tail packet queues.

Both emulation pipes buffer packets in a :class:`DropTailQueue`. The default
is unbounded, matching ``mm-delay`` and ``mm-link``'s default infinite
queues; passing ``max_packets`` or ``max_bytes`` reproduces
``mm-link --uplink-queue=droptail``-style bounded buffers, which is where
TCP loss comes from in bandwidth-limited experiments.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.net.packet import Packet


class DropTailQueue:
    """FIFO packet queue that drops arrivals when full.

    Args:
        max_packets: packet-count capacity (None = unbounded).
        max_bytes: byte capacity (None = unbounded). A packet is dropped if
            adding it would exceed either bound.
    """

    __slots__ = ("_queue", "_bytes", "max_packets", "max_bytes", "drops", "enqueued")

    def __init__(
        self,
        max_packets: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_packets is not None and max_packets <= 0:
            raise ValueError(f"max_packets must be positive, got {max_packets!r}")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes!r}")
        self._queue: Deque[Packet] = deque()
        self._bytes = 0
        self.max_packets = max_packets
        self.max_bytes = max_bytes
        self.drops = 0
        self.enqueued = 0

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    @property
    def bytes(self) -> int:
        """Total bytes currently queued."""
        return self._bytes

    def push(self, packet: Packet, now: float = 0.0) -> bool:
        """Enqueue; returns False (and counts a drop) if the queue is full.

        ``now`` is accepted for interface parity with timestamping queue
        disciplines (CoDel); drop-tail ignores it.
        """
        if self.max_packets is not None and len(self._queue) >= self.max_packets:
            self.drops += 1
            return False
        if self.max_bytes is not None and self._bytes + packet.size > self.max_bytes:
            self.drops += 1
            return False
        self._queue.append(packet)
        self._bytes += packet.size
        self.enqueued += 1
        return True

    def front(self) -> Packet:
        """Peek the head-of-line packet (raises IndexError when empty)."""
        return self._queue[0]

    def pop(self, now: float = 0.0) -> Packet:
        """Dequeue the head-of-line packet (raises IndexError when empty)."""
        packet = self._queue.popleft()
        self._bytes -= packet.size
        return packet

    def clear(self) -> None:
        """Drop everything currently queued (not counted as tail drops)."""
        self._queue.clear()
        self._bytes = 0

    def __repr__(self) -> str:
        return (
            f"<DropTailQueue {len(self._queue)}p/{self._bytes}B "
            f"cap={self.max_packets}p/{self.max_bytes}B drops={self.drops}>"
        )
