"""Serial per-packet processing cost.

A Mahimahi shell is a userspace process that reads, handles, and writes
every packet crossing its boundary. That costs a small, roughly constant
amount of CPU per packet, and — crucially for Figure 2 — the cost is
*serial*: a burst of packets drains through the shell one at a time, so the
overhead accumulates across a burst instead of merely shifting it.

:class:`SerialProcessor` models the shell as a single server with a constant
service time. ``finish_time(now)`` returns when the packet entering service
now would be done, advancing the server's busy horizon.
"""

from __future__ import annotations


class SerialProcessor:
    """Single-server queue with deterministic service time.

    Args:
        service_time: seconds of processing per packet. Zero disables the
            model (``finish_time`` returns ``now``).
    """

    __slots__ = ("service_time", "_busy_until", "packets_processed")

    def __init__(self, service_time: float) -> None:
        if service_time < 0.0:
            raise ValueError(f"service_time must be >= 0, got {service_time!r}")
        self.service_time = service_time
        self._busy_until = 0.0
        self.packets_processed = 0

    @property
    def busy_until(self) -> float:
        """Virtual time at which the server frees up."""
        return self._busy_until

    def finish_time(self, now: float) -> float:
        """Admit one packet at ``now``; return its processing-complete time."""
        if self.service_time <= 0.0:  # constructor guarantees >= 0
            return now
        start = now if now > self._busy_until else self._busy_until
        self._busy_until = start + self.service_time
        self.packets_processed += 1
        return self._busy_until

    def reset(self) -> None:
        """Forget the busy horizon (used between independent trials)."""
        self._busy_until = 0.0
