"""Packet-delivery traces (Mahimahi's ``.trace`` format).

A trace is a text file with one integer millisecond timestamp per line.
Each line is a *packet-delivery opportunity*: the instant at which the
emulated link can deliver up to one MTU's worth of bytes. Multiple lines
may carry the same timestamp (several opportunities in one millisecond —
how high rates are expressed at millisecond granularity). When the trace is
exhausted it repeats, offset by its final timestamp, exactly as ``mm-link``
loops its traces.

Two schedule implementations answer "when is the next unconsumed
opportunity at or after time t?":

* :class:`FileTraceSchedule` — walks a (repeating) explicit trace, with
  O(log n) fast-forward over idle gaps.
* :class:`ConstantRateSchedule` — closed-form opportunities for a fixed
  rate, used where an explicit trace would be needlessly large.
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Sequence

from repro.errors import TraceError
from repro.net.packet import MTU_BYTES


class PacketDeliveryTrace:
    """An immutable parsed trace.

    Args:
        times_ms: non-decreasing, non-negative integer timestamps. The last
            timestamp defines the trace period for wrap-around and must be
            positive.
    """

    def __init__(self, times_ms: Sequence[int]) -> None:
        times = [int(t) for t in times_ms]
        if not times:
            raise TraceError("trace has no delivery opportunities")
        previous = 0
        for t in times:
            if t < 0:
                raise TraceError(f"negative timestamp in trace: {t}")
            if t < previous:
                raise TraceError(
                    f"timestamps must be non-decreasing ({t} after {previous})"
                )
            previous = t
        if times[-1] <= 0:
            raise TraceError("final timestamp (trace period) must be positive")
        self._times = times

    @property
    def times_ms(self) -> List[int]:
        """The opportunity timestamps (copy)."""
        return list(self._times)

    @property
    def period_ms(self) -> int:
        """Wrap-around period: the final timestamp."""
        return self._times[-1]

    def __len__(self) -> int:
        return len(self._times)

    @property
    def average_rate_bps(self) -> float:
        """Mean delivery rate over one period, bits per second."""
        return len(self._times) * MTU_BYTES * 8 * 1000.0 / self.period_ms

    @property
    def average_rate_mbps(self) -> float:
        """Mean delivery rate over one period, Mbit/s."""
        return self.average_rate_bps / 1e6

    # ------------------------------------------------------------------ #
    # I/O

    @classmethod
    def from_lines(cls, lines: Iterable[str]) -> "PacketDeliveryTrace":
        """Parse trace text; blank lines and ``#`` comments are ignored."""
        times: List[int] = []
        for lineno, raw in enumerate(lines, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            try:
                times.append(int(line))
            except ValueError:
                raise TraceError(
                    f"line {lineno}: not an integer timestamp: {line!r}"
                ) from None
        return cls(times)

    @classmethod
    def from_file(cls, path) -> "PacketDeliveryTrace":
        """Load a trace from a file path."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_lines(handle)

    def to_file(self, path) -> None:
        """Write the trace in Mahimahi's one-integer-per-line format."""
        with open(path, "w", encoding="utf-8") as handle:
            for t in self._times:
                handle.write(f"{t}\n")

    def __repr__(self) -> str:
        return (
            f"<PacketDeliveryTrace {len(self._times)} opportunities / "
            f"{self.period_ms} ms (~{self.average_rate_mbps:.2f} Mbit/s)>"
        )


#: Slack (in milliseconds) absorbed when comparing a float instant against
#: integer trace timestamps: far below the 1 ms trace granularity, far above
#: double rounding noise at any plausible simulated duration. Without it,
#: ``(x / 1000.0) * 1000.0`` landing an ulp above ``x`` makes the schedule
#: silently skip opportunities that share a lapsed timestamp — a rate (and
#: determinism) bug that float-seconds arithmetic exhibited in practice.
_TRACE_EPS_MS = 1e-6


class FileTraceSchedule:
    """Sequential opportunity consumer over a repeating trace.

    All internal arithmetic is in *integer milliseconds* (the trace's native
    unit): cycle floors and timestamps stay exact however many times the
    trace wraps, and each returned opportunity is one int-to-float division
    away from exact — so replays are bit-identical and no opportunity is
    lost to accumulated float error.

    Args:
        trace: the parsed trace.
        start_time: virtual time (seconds) at which the link started; trace
            timestamp 0 corresponds to this instant.
    """

    def __init__(self, trace: PacketDeliveryTrace, start_time: float = 0.0) -> None:
        self._times_ms = trace.times_ms
        self._period_ms = trace.period_ms
        self._start = start_time
        self._cycle = 0
        self._index = 0

    def next_opportunity(self, now: float) -> float:
        """Consume and return the next opportunity at or after ``now``.

        Consecutive calls with the same ``now`` return successive
        opportunities (which may share the same timestamp).
        """
        rel_ms = (now - self._start) * 1000.0
        if rel_ms < 0.0:
            rel_ms = 0.0
        times_ms = self._times_ms
        count = len(times_ms)
        # Fast-forward whole cycles if we are far behind.
        current_floor = self._cycle * self._period_ms
        if rel_ms - _TRACE_EPS_MS > current_floor + self._period_ms:
            self._cycle = int(rel_ms // self._period_ms)
            self._index = 0
            current_floor = self._cycle * self._period_ms
        while True:
            if self._index >= count:
                self._cycle += 1
                self._index = 0
                current_floor = self._cycle * self._period_ms
            within_ms = rel_ms - current_floor
            if within_ms - _TRACE_EPS_MS > times_ms[-1]:
                self._cycle += 1
                self._index = 0
                current_floor = self._cycle * self._period_ms
                continue
            if times_ms[self._index] < within_ms - _TRACE_EPS_MS:
                # Skip lapsed opportunities within this cycle in one jump.
                self._index = bisect.bisect_left(
                    times_ms, within_ms - _TRACE_EPS_MS, self._index
                )
                continue
            opportunity = (
                self._start + (current_floor + times_ms[self._index]) / 1000.0
            )
            self._index += 1
            # Guard against float rounding placing the opportunity an ulp
            # before `now`, which the simulator would reject as "the past".
            return opportunity if opportunity > now else now


class ConstantRateSchedule:
    """Closed-form opportunities for a constant-rate link.

    Args:
        rate_bps: link rate in bits per second (> 0).
        start_time: virtual time of the link's first interval.

    Opportunities fall every ``MTU_BYTES * 8 / rate_bps`` seconds, the
    first one a full interval after ``start_time`` (a link never delivers
    at the very instant it comes up); each carries the usual one-MTU byte
    budget.
    """

    def __init__(self, rate_bps: float, start_time: float = 0.0) -> None:
        if rate_bps <= 0.0:
            raise TraceError(f"rate must be positive, got {rate_bps!r}")
        self.rate_bps = rate_bps
        self._interval = MTU_BYTES * 8.0 / rate_bps
        self._start = start_time
        self._next_k = 1

    @property
    def interval(self) -> float:
        """Seconds between successive opportunities."""
        return self._interval

    def next_opportunity(self, now: float) -> float:
        """Consume and return the next opportunity at or after ``now``."""
        rel = now - self._start
        if rel < 0.0:
            rel = 0.0
        k = int(rel / self._interval)
        if self._start + k * self._interval < now:
            k += 1
        if k < self._next_k:
            k = self._next_k
        self._next_k = k + 1
        opportunity = self._start + k * self._interval
        # Guard against float rounding placing the opportunity an ulp
        # before `now`, which the simulator would reject as "the past".
        return opportunity if opportunity > now else now
