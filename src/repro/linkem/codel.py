"""CoDel active queue management (``mm-link --uplink-queue=codel``).

Mahimahi's mm-link supports CoDel alongside drop-tail; it is the canonical
answer to the bufferbloat that an unbounded drop-tail queue exhibits on
slow links. This is the standard algorithm (Nichols & Jacobson, CACM
2012 / RFC 8289): track each packet's sojourn time; once the queue's
minimum sojourn has exceeded ``target`` for a full ``interval``, enter a
dropping state and drop on dequeue at a rate increasing with the square
root of the drop count.

:class:`CoDelQueue` exposes the same interface as
:class:`~repro.linkem.queues.DropTailQueue` (push/front/pop/bytes/len),
with time passed explicitly — the link pipe provides its virtual clock.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Optional, Tuple

from repro.net.packet import Packet


class CoDelQueue:
    """Controlled-delay AQM queue.

    Args:
        target: acceptable standing queue delay, seconds (default 5 ms).
        interval: window over which sojourn must stay above target before
            dropping starts, seconds (default 100 ms).
        max_packets: hard capacity (tail-drop beyond it; None = unbounded,
            CoDel itself keeps the queue short).
    """

    def __init__(
        self,
        target: float = 0.005,
        interval: float = 0.100,
        max_packets: Optional[int] = None,
    ) -> None:
        if target <= 0 or interval <= 0:
            raise ValueError("target and interval must be positive")
        self.target = target
        self.interval = interval
        self.max_packets = max_packets
        self._queue: Deque[Tuple[float, Packet]] = deque()
        self._bytes = 0
        # CoDel state. RFC 8289's pseudocode uses time 0 as the "not yet
        # above target" sentinel; a None sentinel keeps "unset" distinct
        # from a real timestamp without float equality (REP003).
        self._first_above_time: Optional[float] = None
        self._dropping = False
        self._drop_next = 0.0
        self._drop_count = 0
        self.drops = 0
        self.enqueued = 0

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    @property
    def bytes(self) -> int:
        """Total bytes currently queued."""
        return self._bytes

    def push(self, packet: Packet, now: float = 0.0) -> bool:
        """Enqueue with arrival timestamp; False on hard-capacity drop."""
        if (self.max_packets is not None
                and len(self._queue) >= self.max_packets):
            self.drops += 1
            return False
        self._queue.append((now, packet))
        self._bytes += packet.size
        self.enqueued += 1
        return True

    def front(self) -> Packet:
        """Peek the head-of-line packet (after CoDel's dequeue-time drops
        are applied by :meth:`pop`; front itself does not drop)."""
        return self._queue[0][1]

    def pop(self, now: float = 0.0) -> Optional[Packet]:
        """Dequeue under CoDel: may drop packets and return the first
        survivor, or None if the queue empties."""
        packet, ok_to_drop = self._dodequeue(now)
        if packet is None:
            self._dropping = False
            return None
        if self._dropping:
            if not ok_to_drop:
                self._dropping = False
            else:
                while (self._dropping and packet is not None
                       and now >= self._drop_next):
                    self.drops += 1
                    self._drop_count += 1
                    packet, ok_to_drop = self._dodequeue(now)
                    if not ok_to_drop:
                        self._dropping = False
                    else:
                        self._drop_next = self._control_law(self._drop_next)
        elif ok_to_drop and (
            now - self._drop_next < self.interval
            or now - self._first_above_time >= self.interval
        ):
            # Enter dropping state: drop this packet and arm the control law.
            self.drops += 1
            packet_after, still_ok = self._dodequeue(now)
            self._dropping = True
            if now - self._drop_next < self.interval:
                self._drop_count = max(self._drop_count - 2, 1)
            else:
                self._drop_count = 1
            self._drop_next = self._control_law(now)
            packet = packet_after
            if packet is None:
                self._dropping = False
        return packet

    def _dodequeue(self, now: float):
        """CoDel's dodequeue: pop one packet, report whether its sojourn
        keeps us in the above-target regime."""
        if not self._queue:
            self._first_above_time = None
            return None, False
        enqueue_time, packet = self._queue.popleft()
        self._bytes -= packet.size
        sojourn = now - enqueue_time
        if sojourn < self.target:
            self._first_above_time = None
            return packet, False
        if self._first_above_time is None:
            self._first_above_time = now + self.interval
            return packet, False
        return packet, now >= self._first_above_time

    def _control_law(self, base: float) -> float:
        return base + self.interval / math.sqrt(self._drop_count)

    def clear(self) -> None:
        """Drop everything queued (not counted as CoDel drops)."""
        self._queue.clear()
        self._bytes = 0

    def __repr__(self) -> str:
        return (f"<CoDelQueue {len(self._queue)}p/{self._bytes}B "
                f"dropping={self._dropping} drops={self.drops}>")
