"""Crash-safe filesystem primitives shared across the toolkit.

Everything the toolkit persists — recorded-site pair files and
manifests, sweep journals, observability artifacts — goes through the
same unit of crash-safety: write a temp file, ``fsync`` it, then
``os.replace`` it over the destination. A crash at any instant leaves
either the old file or the new one on disk, never a torn half-write
that later parses as valid.
"""

from __future__ import annotations

import os
from typing import Union

__all__ = ["atomic_write_bytes", "atomic_write_text", "fsync_dir"]


def atomic_write_bytes(path: Union[str, os.PathLike], data: bytes) -> None:
    """Write ``data`` to ``path`` via temp file + fsync + ``os.replace``."""
    path = os.fspath(path)
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def atomic_write_text(
    path: Union[str, os.PathLike], text: str, encoding: str = "utf-8"
) -> None:
    """Atomic counterpart of ``Path.write_text``."""
    atomic_write_bytes(path, text.encode(encoding))


def fsync_dir(directory: Union[str, os.PathLike]) -> None:
    """Flush a directory's entry table (directory fsync).

    ``os.replace`` makes a file's *content* durable, but the rename
    itself lives in the parent directory; syncing the directory makes
    the new name survive a crash too. Best-effort — not every platform
    allows opening a directory.
    """
    try:
        fd = os.open(os.fspath(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
