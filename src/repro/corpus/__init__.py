"""Synthetic website corpus (the stand-in for the paper's recorded sites).

The paper's experiments run over a corpus of 500 recorded Alexa US Top 500
pages (https://github.com/ravinet/sites) that we cannot fetch offline.
:func:`~repro.corpus.alexa.alexa_corpus` generates a seeded synthetic
corpus calibrated to the statistics the paper reports about the real one
(§4: median 20 origin servers per site, 95th percentile 51, exactly 9
single-server sites out of 500), with realistic object counts, sizes, and
dependency structure.

:func:`~repro.corpus.sitegen.generate_site` builds one site;
:func:`~repro.corpus.sitegen.named_site` builds the specific pages the
paper names (cnbc.com, wikihow.com, nytimes.com analogues).
"""

from repro.corpus.alexa import alexa_corpus, corpus_statistics
from repro.corpus.sitegen import SyntheticSite, generate_site, named_site

__all__ = [
    "SyntheticSite",
    "alexa_corpus",
    "corpus_statistics",
    "generate_site",
    "named_site",
]
