"""The 500-site synthetic corpus (Alexa US Top 500 analogue).

The paper's in-text corpus statistics (§4) are reproduced by construction:

* exactly ``single_origin_sites`` (default 9) single-server pages;
* the rest draw origin counts from a lognormal matched to median 20 and
  95th percentile 51.

``benchmarks/bench_corpus_stats.py`` regenerates and checks those numbers
(experiment C1 in DESIGN.md).
"""

from __future__ import annotations

import math
import random
from typing import Dict, List

from repro.corpus.sitegen import SyntheticSite, draw_origin_count, generate_site
from repro.errors import CorpusError
from repro.sim.random import stable_seed

DEFAULT_CORPUS_SIZE = 500
DEFAULT_SINGLE_ORIGIN_SITES = 9


def alexa_corpus(
    seed: int = 0,
    size: int = DEFAULT_CORPUS_SIZE,
    single_origin_sites: int = DEFAULT_SINGLE_ORIGIN_SITES,
    scale: float = 1.0,
) -> List[SyntheticSite]:
    """Generate the corpus.

    Args:
        seed: master seed; the corpus is a pure function of it.
        size: number of sites (paper: 500).
        single_origin_sites: how many pages use a single server (paper: 9).
        scale: per-site object-count/size multiplier (tests shrink it).
    """
    if single_origin_sites > size:
        raise CorpusError("more single-origin sites than sites")
    rng = random.Random(stable_seed(seed, "alexa-corpus"))
    sites: List[SyntheticSite] = []
    single_slots = set(rng.sample(range(size), single_origin_sites))
    for index in range(size):
        if index in single_slots:
            n_origins = 1
        else:
            n_origins = draw_origin_count(rng)
        sites.append(generate_site(
            f"site{index:03d}.com",
            seed=stable_seed(seed, f"corpus-site:{index}"),
            n_origins=n_origins,
            scale=scale,
        ))
    return sites


def corpus_statistics(sites: List[SyntheticSite]) -> Dict[str, float]:
    """The §4 statistics over a corpus: origin-count median, 95th
    percentile, and the number of single-server pages."""
    counts = sorted(site.origin_count for site in sites)
    if not counts:
        raise CorpusError("empty corpus")

    def percentile(p: float) -> float:
        if len(counts) == 1:
            return float(counts[0])
        rank = p * (len(counts) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return float(counts[low])
        frac = rank - low
        return counts[low] * (1 - frac) + counts[high] * frac

    return {
        "sites": len(counts),
        "median_origins": percentile(0.50),
        "p95_origins": percentile(0.95),
        "max_origins": float(counts[-1]),
        "single_server_sites": float(sum(1 for c in counts if c == 1)),
    }
