"""Synthetic multi-origin website generation.

A generated site is internally consistent across all three ways the
experiments consume it:

* a :class:`~repro.browser.resources.PageModel` the browser loads;
* a ground-truth :class:`~repro.record.store.RecordedSite` (what a
  perfect RecordShell session would capture), whose HTML bodies are real
  rendered documents referencing the actual subresources;
* a host->IP map so the live-web model can serve the same content.

Structure follows the anatomy of 2014-era pages: one root document on the
main origin; stylesheets and scripts split between the main origin and a
couple of CDN hosts; images fanned out across CDNs; fonts behind
stylesheets; a few XHRs behind scripts; analytics/ads third parties with
one or two objects each. Origin counts, object counts, and sizes are drawn
from distributions matched to the published statistics.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional

from repro.browser.html import render_html
from repro.browser.resources import PageModel, Resource, Url
from repro.errors import CorpusError
from repro.http.body import Body
from repro.http.message import Headers, HttpRequest, HttpResponse
from repro.net.address import IPv4Address
from repro.record.entry import RequestResponsePair
from repro.record.store import RecordedSite
from repro.sim.random import stable_seed

_CONTENT_TYPES = {
    "html": "text/html; charset=utf-8",
    "css": "text/css",
    "js": "application/javascript",
    "image": "image/jpeg",
    "font": "font/woff2",
    "xhr": "application/json",
    "other": "application/octet-stream",
}


def ip_for_host(host: str) -> IPv4Address:
    """Deterministic synthetic public IP for a hostname.

    Hosts hash into 23.0.0.0/8 (a real CDN block, safely outside the
    100.64.0.0/10 shell pool and RFC1918 space).
    """
    digest = stable_seed(0x1733, host)
    return IPv4Address((23 << 24) | (digest & 0x00FFFFFF))


class SyntheticSite:
    """One generated site: page graph + origin inventory."""

    def __init__(
        self,
        name: str,
        page: PageModel,
        host_ips: Dict[str, IPv4Address],
    ) -> None:
        self.name = name
        self.page = page
        self.host_ips = dict(host_ips)

    @property
    def origin_count(self) -> int:
        """Distinct physical servers (IPs) serving the page."""
        return len(set(self.host_ips.values()))

    def to_recorded_site(self) -> RecordedSite:
        """The ground-truth recording of this site.

        Equivalent to what RecordShell captures from a live-web load (the
        record integration tests assert exactly that equivalence).
        """
        store = RecordedSite(self.name)
        for resource in self.page.resources():
            store.add_pair(self._pair_for(resource))
        return store

    def _pair_for(self, resource: Resource) -> RequestResponsePair:
        url = resource.url
        host = url.host if url.default_port else f"{url.host}:{url.port}"
        request = HttpRequest("GET", url.path, Headers([
            ("Host", host),
            ("User-Agent", "repro-browser/1.0"),
            ("Accept", "*/*"),
        ]))
        if resource.kind == "html":
            body = Body.from_bytes(
                render_html(self.name, resource.children, resource.size)
            )
            resource.size = body.length
        else:
            body = Body.virtual(resource.size)
        headers = Headers([
            ("Content-Type", _CONTENT_TYPES[resource.kind]),
            ("Content-Length", str(body.length)),
            ("Server", "repro-origin/1.0"),
        ])
        response = HttpResponse(200, headers=headers, body=body)
        ip = self.host_ips[url.host]
        return RequestResponsePair(url.scheme, ip, url.port, request, response)

    def __repr__(self) -> str:
        return (
            f"<SyntheticSite {self.name!r} origins={self.origin_count} "
            f"resources={self.page.resource_count} "
            f"bytes={self.page.total_bytes}>"
        )


def generate_site(
    name: str,
    seed: int,
    n_origins: Optional[int] = None,
    scale: float = 1.0,
    https: bool = False,
) -> SyntheticSite:
    """Generate one synthetic site.

    Args:
        name: main hostname stem (e.g. "example.com" -> www.example.com).
        seed: all structure derives deterministically from this.
        n_origins: force the number of distinct origin servers (default:
            drawn from the corpus distribution).
        scale: multiplies object counts and sizes (lets tests shrink
            pages and "heavy page" presets grow them).
        https: serve everything over HTTPS instead of HTTP.
    """
    rng = random.Random(stable_seed(seed, f"site:{name}"))
    if n_origins is None:
        n_origins = draw_origin_count(rng)
    if n_origins < 1:
        raise CorpusError(f"need at least one origin, got {n_origins}")
    scheme = "https" if https else "http"
    port = 443 if https else 80

    hosts = _make_hostnames(name, n_origins, rng)
    main_host = hosts[0]
    cdn_hosts = hosts[1: max(1, 1 + (n_origins - 1) * 2 // 3)]
    third_hosts = hosts[1 + len(cdn_hosts):]

    def url(host: str, path: str) -> Url:
        return Url(scheme, host, port, path)

    def asset_host(i: int) -> str:
        if not cdn_hosts:
            return main_host
        return cdn_hosts[i % len(cdn_hosts)]

    counter = [0]

    def make(kind: str, host: str, size: int,
             children: Optional[List[Resource]] = None) -> Resource:
        counter[0] += 1
        path = f"/{kind}/res{counter[0]:04d}.{_EXT[kind]}"
        return Resource(url(host, path), kind, max(64, size), children=children)

    def sized(lo: float, hi: float) -> int:
        return int(rng.uniform(lo, hi) * scale)

    # Fonts and XHRs hang off stylesheets and scripts (discovery depth 3).
    n_css = max(1, int(rng.uniform(2, 6) * math.sqrt(scale)))
    n_js = max(1, int(rng.uniform(3, 10) * math.sqrt(scale)))
    n_images = max(2, int(rng.uniform(8, 45) * scale))
    n_fonts = rng.randint(0, 3)
    n_xhr = rng.randint(0, 4)

    css = [
        make("css", asset_host(i), sized(8_000, 60_000))
        for i in range(n_css)
    ]
    for i in range(n_fonts):
        css[i % len(css)].children.append(
            make("font", asset_host(i + 1), sized(18_000, 45_000))
        )
    js = [
        make("js", asset_host(i + n_css), sized(15_000, 150_000))
        for i in range(n_js)
    ]
    for i in range(n_xhr):
        js[i % len(js)].children.append(
            make("xhr", main_host, sized(500, 8_000))
        )
    images = [
        make("image", asset_host(i), int(_lognormal(rng, 11_000, 1.0) * scale))
        for i in range(n_images)
    ]
    # Third parties (analytics, ads): one or two small objects each, a
    # beacon image plus sometimes a script that fetches another image.
    third_objects: List[Resource] = []
    for i, host in enumerate(third_hosts):
        beacon = make("image", host, sized(200, 4_000))
        if rng.random() < 0.5:
            script = make("js", host, sized(2_000, 40_000))
            script.children.append(beacon)
            third_objects.append(script)
        else:
            third_objects.append(beacon)

    # Document order matters: stylesheets and scripts live in the head
    # and are referenced before body images — which is what keeps a
    # browser's resource scheduler prioritizing render-critical work.
    head = css + js
    body = images + third_objects
    rng.shuffle(head)
    rng.shuffle(body)
    children = head + body
    root = Resource(
        url(main_host, "/"), "html", sized(40_000, 130_000),
        children=children,
    )
    page = PageModel(root, name=name)
    host_ips = {host: ip_for_host(host) for host in hosts}
    site = SyntheticSite(name, page, host_ips)
    # Rendering the root document fixes its true size; do it now so the
    # PageModel and the recording agree.
    site.to_recorded_site()
    return site


_EXT = {
    "css": "css", "js": "js", "image": "jpg", "font": "woff2",
    "xhr": "json", "other": "bin", "html": "html",
}


def _make_hostnames(name: str, n_origins: int, rng: random.Random) -> List[str]:
    stem = name.split("/")[0]
    hosts = [f"www.{stem}"]
    n_cdn = max(0, (n_origins - 1) * 2 // 3)
    n_third = n_origins - 1 - n_cdn
    hosts.extend(f"cdn{i}.{stem}" for i in range(n_cdn))
    hosts.extend(
        f"thirdparty{i}.tracker{rng.randint(0, 99)}.net" for i in range(n_third)
    )
    return hosts[:n_origins]


def _lognormal(rng: random.Random, median: float, sigma: float) -> float:
    return median * math.exp(rng.gauss(0.0, sigma))


def draw_origin_count(rng: random.Random) -> int:
    """Origin-server count for one site, matched to the paper's §4 stats
    (median 20, 95th percentile 51). Lognormal: mu=ln(20), sigma chosen so
    exp(mu + 1.645 sigma) = 51."""
    sigma = (math.log(51) - math.log(20)) / 1.645
    value = int(round(_lognormal(rng, 20.0, sigma)))
    return max(2, min(value, 90))


# ---------------------------------------------------------------------- #
# named pages from the paper

_NAMED_PRESETS = {
    # The paper's Table 1 pages: CNBC loads in ~7.6 s, wikiHow in ~4.8 s
    # on the (emulated-link) setup; CNBC is the heavier page.
    "cnbc": dict(n_origins=35, scale=2.4, seed_salt=101),
    "wikihow": dict(n_origins=16, scale=1.4, seed_salt=202),
    # Figure 3's page: nytimes.com, a heavy multi-origin news front page.
    "nytimes": dict(n_origins=30, scale=2.0, seed_salt=303),
}


def named_site(which: str, seed: int = 0) -> SyntheticSite:
    """A preset analogue of a page the paper names.

    Args:
        which: "cnbc", "wikihow", or "nytimes".
        seed: extra seed so studies can draw independent variants.
    """
    preset = _NAMED_PRESETS.get(which)
    if preset is None:
        raise CorpusError(
            f"unknown named site {which!r}; options: {sorted(_NAMED_PRESETS)}"
        )
    return generate_site(
        f"{which}.com",
        seed=stable_seed(seed, f"named:{preset['seed_salt']}"),
        n_origins=preset["n_origins"],
        scale=preset["scale"],
    )
