"""Committed-baseline mechanism for ``mm-lint`` (``--baseline``).

New rules should start enforcing immediately on *new* code without
blocking on a cleanup of every pre-existing finding. The baseline file
records a fingerprint for each known finding; ``mm-lint --baseline
lint-baseline.json`` subtracts baselined findings from its report (and
its exit code), so CI fails only on findings introduced after the
baseline was written.

Fingerprints are content-anchored, not line-anchored: BLAKE2 over
``(posix path, rule code, stripped source line, occurrence index)``.
Findings survive unrelated edits that shift line numbers, but *any*
change to the offending line retires its baseline entry — touched code
must be brought up to the rules. The occurrence index disambiguates
identical lines carrying identical findings.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path, PurePath
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.base import Diagnostic

__all__ = [
    "BaselineError",
    "fingerprint_diagnostics",
    "load_baseline",
    "partition",
    "write_baseline",
]

#: On-disk format version.
BASELINE_VERSION = 1


class BaselineError(ValueError):
    """The baseline file is malformed or has an unknown version."""


def _line_text(path: str, line: int, cache: Dict[str, List[str]]) -> str:
    """The stripped source line a diagnostic points at ('' if unreadable)."""
    lines = cache.get(path)
    if lines is None:
        try:
            lines = Path(path).read_text(encoding="utf-8").splitlines()
        except OSError:
            lines = []
        cache[path] = lines
    if 0 < line <= len(lines):
        return lines[line - 1].strip()
    return ""


def fingerprint_diagnostics(
    diagnostics: Sequence[Diagnostic],
) -> List[Tuple[Diagnostic, str]]:
    """Pair every diagnostic with its content-anchored fingerprint."""
    source_cache: Dict[str, List[str]] = {}
    occurrence: Dict[Tuple[str, str, str], int] = {}
    out: List[Tuple[Diagnostic, str]] = []
    for diag in diagnostics:
        text = _line_text(diag.path, diag.line, source_cache)
        key = (PurePath(diag.path).as_posix(), diag.code, text)
        index = occurrence.get(key, 0)
        occurrence[key] = index + 1
        digest = hashlib.blake2b(
            f"{key[0]}::{key[1]}::{key[2]}::{index}".encode("utf-8"),
            digest_size=16,
        ).hexdigest()
        out.append((diag, digest))
    return out


def load_baseline(path: Union[str, Path]) -> Dict[str, Dict[str, object]]:
    """Load a baseline file; returns fingerprint -> recorded metadata."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path}: not valid JSON ({exc})") from exc
    if not isinstance(payload, dict) or "entries" not in payload:
        raise BaselineError(f"baseline {path}: missing 'entries' table")
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {path}: unsupported version {version!r} "
            f"(this mm-lint writes version {BASELINE_VERSION})"
        )
    entries = payload["entries"]
    if not isinstance(entries, dict):
        raise BaselineError(f"baseline {path}: 'entries' must be an object")
    return entries


def write_baseline(
    path: Union[str, Path], diagnostics: Sequence[Diagnostic]
) -> int:
    """Write a baseline covering the given findings; returns the count.

    Entries keep human-readable context (path/code/line) so reviewers can
    audit what debt the baseline is carrying; only the fingerprint key is
    load-bearing.
    """
    entries: Dict[str, Dict[str, object]] = {}
    for diag, digest in fingerprint_diagnostics(diagnostics):
        entries[digest] = {
            "path": PurePath(diag.path).as_posix(),
            "code": diag.code,
            "line": diag.line,
            "message": diag.message,
        }
    document = {"version": BASELINE_VERSION, "tool": "mm-lint", "entries": entries}
    Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(entries)


def partition(
    diagnostics: Sequence[Diagnostic],
    baseline: Optional[Dict[str, Dict[str, object]]],
) -> Tuple[List[Diagnostic], int]:
    """Split findings into (new, baselined-count) against a baseline."""
    if not baseline:
        return list(diagnostics), 0
    fresh: List[Diagnostic] = []
    suppressed = 0
    for diag, digest in fingerprint_diagnostics(diagnostics):
        if digest in baseline:
            suppressed += 1
        else:
            fresh.append(diag)
    return fresh, suppressed
