"""Determinism analysis: static lint + dataflow engine + runtime sanitizer.

The reproduction's headline claim (Table 1) tightens, in a single-clock
simulator, to *bit-identical replay*: the same seed must produce the same
event stream, byte for byte, on any machine. This package makes that
contract mechanically checked rather than hoped for:

* :mod:`repro.analysis.lint` — ``mm-lint``, the front end: per-node AST
  rules (REP001-REP007) plus the flow rules below, with JSON/SARIF
  output, a committed-findings baseline, a content-hash incremental
  cache, and a stale-suppression audit.
* :mod:`repro.analysis.flow` — the interprocedural dataflow engine:
  per-module call graph, function summaries, and a forward abstract
  interpretation tracking pool lifecycle, wall-clock/env taint, RNG
  identity, and fork-hostile handles.
* :mod:`repro.analysis.rules_flow` — flow rules REP008-REP012
  (use-after-recycle, pooled-object escape, taint-to-sink, RNG stream
  aliasing, handle capture in forked workers).
* :mod:`repro.analysis.base` — the shared front end (file discovery,
  domain classification, suppression comments, :class:`Diagnostic`).
* :mod:`repro.analysis.output` / :mod:`repro.analysis.baseline` /
  :mod:`repro.analysis.cache` — machine-readable reports, the committed
  baseline, and the incremental cache.
* :mod:`repro.analysis.sanitizer` — an opt-in
  :class:`~repro.sim.simulator.Simulator` execution observer that folds
  every executed event into a BLAKE2 digest, and
  :func:`~repro.analysis.sanitizer.check_determinism`, which replays a
  scenario and reports the first divergent event.

Submodules are intentionally not imported here: lint and sanitizer are
run as ``python -m repro.analysis.<mod>``, and an eager package import
would put a second copy of the module in ``sys.modules`` under ``runpy``.
"""

__all__ = [
    "base",
    "baseline",
    "cache",
    "flow",
    "lint",
    "output",
    "rules_flow",
    "sanitizer",
]
