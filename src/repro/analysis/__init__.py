"""Determinism analysis: static lint + runtime sanitizer.

The reproduction's headline claim (Table 1) tightens, in a single-clock
simulator, to *bit-identical replay*: the same seed must produce the same
event stream, byte for byte, on any machine. This package makes that
contract mechanically checked rather than hoped for:

* :mod:`repro.analysis.lint` — ``mm-lint``, an AST lint pass with
  repo-specific rules (REP001–REP006) that reject wall-clock reads,
  unseeded randomness, float equality on virtual times, unordered
  iteration feeding the event queue, environment reads, and fork-hostile
  module state in simulation-domain code.
* :mod:`repro.analysis.sanitizer` — an opt-in
  :class:`~repro.sim.simulator.Simulator` execution observer that folds
  every executed event into a BLAKE2 digest, and
  :func:`~repro.analysis.sanitizer.check_determinism`, which replays a
  scenario and reports the first divergent event.

Submodules are intentionally not imported here: both are run as
``python -m repro.analysis.<mod>``, and an eager package import would put
a second copy of the module in ``sys.modules`` under ``runpy``.
"""

__all__ = ["lint", "sanitizer"]
