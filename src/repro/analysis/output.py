"""Machine-readable output for ``mm-lint`` (``--output json|sarif``).

The JSON form is the stable, minimal interchange format (consumed by the
incremental cache and by scripts); the SARIF 2.1.0 form is what CI
uploads so code-scanning UIs can annotate PRs with findings. Both are
rendered with sorted keys and a trailing newline so identical findings
produce byte-identical artifacts — the same rule the obs layer follows.
"""

from __future__ import annotations

import json
from pathlib import PurePath
from typing import Any, Dict, List, Mapping, Sequence

from repro.analysis.base import Diagnostic

__all__ = ["diagnostics_from_json", "to_json", "to_sarif"]

#: Schema identifier stamped into the JSON output.
JSON_SCHEMA_VERSION = 1

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _uri(path: str) -> str:
    """Forward-slash relative URI for SARIF artifact locations."""
    pure = PurePath(path)
    return pure.as_posix()


def to_json(diagnostics: Sequence[Diagnostic]) -> str:
    """Render diagnostics as the versioned mm-lint JSON document."""
    counts: Dict[str, int] = {}
    for diag in diagnostics:
        counts[diag.code] = counts.get(diag.code, 0) + 1
    document = {
        "schema_version": JSON_SCHEMA_VERSION,
        "tool": "mm-lint",
        "counts": counts,
        "diagnostics": [
            {
                "path": diag.path,
                "line": diag.line,
                "col": diag.col,
                "code": diag.code,
                "message": diag.message,
            }
            for diag in diagnostics
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def diagnostics_from_json(payload: Any) -> List[Diagnostic]:
    """Rebuild diagnostics from the ``diagnostics`` list of a JSON doc
    (also the on-disk format of the incremental cache)."""
    out: List[Diagnostic] = []
    for entry in payload:
        out.append(
            Diagnostic(
                path=str(entry["path"]),
                line=int(entry["line"]),
                col=int(entry["col"]),
                code=str(entry["code"]),
                message=str(entry["message"]),
            )
        )
    return out


def to_sarif(
    diagnostics: Sequence[Diagnostic], rules: Mapping[str, str]
) -> str:
    """Render diagnostics as a SARIF 2.1.0 log (single run).

    Args:
        diagnostics: the findings to report.
        rules: rule code -> one-line summary; every code referenced by a
            diagnostic gets a ``reportingDescriptor`` so viewers can show
            the rule text next to each result.
    """
    used_codes = sorted({diag.code for diag in diagnostics} | set(rules))
    descriptors = [
        {
            "id": code,
            "shortDescription": {
                "text": rules.get(code, "mm-lint diagnostic"),
            },
        }
        for code in used_codes
    ]
    results = [
        {
            "ruleId": diag.code,
            "level": "error",
            "message": {"text": diag.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": _uri(diag.path)},
                        "region": {
                            "startLine": diag.line,
                            # SARIF columns are 1-based; Diagnostic.col
                            # is the 0-based AST offset.
                            "startColumn": diag.col + 1,
                        },
                    }
                }
            ],
        }
        for diag in diagnostics
    ]
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "mm-lint",
                        "informationUri": (
                            "https://example.invalid/mahimahi-repro/mm-lint"
                        ),
                        "rules": descriptors,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
