"""``mm-lint`` — static rules that enforce the determinism contract.

The simulator promises bit-identical replay for a given seed (DESIGN.md,
"Determinism contract"). Nothing in Python stops a contributor from
breaking that promise with one innocent-looking line, so this module
checks the contract statically, with two engines behind one front end:

* **Per-node AST rules** (REP001-REP007, this module): hazards visible
  in a single expression — wall-clock reads, unseeded RNG, float ``==``
  on virtual time, hash-ordered scheduling, environment reads,
  module-level mutable state, observer-effect writes.
* **Interprocedural dataflow rules** (REP008-REP012,
  :mod:`repro.analysis.flow` + :mod:`repro.analysis.rules_flow`):
  hazards that emerge from statement order and calls between functions —
  use-after-recycle, pooled-object escape, wall-clock/env taint reaching
  sinks, RNG stream aliasing across domains, fork-hostile handles inside
  forked workers.

======  ==============================================================
REP001  No wall-clock reads (``time.time``/``time.monotonic``/argless
        ``datetime.now``) in simulation-domain code — use ``sim.now``.
REP002  No unseeded or unstably-seeded RNG: module-level ``random.*``
        draws share mutable global state, and ``random.Random(x)`` must
        derive ``x`` via :func:`repro.sim.random.stable_seed`.
REP003  No float ``==``/``!=`` on virtual-time expressions (names
        ``now``/``deadline``/``at``/``*_time``) — compare with an
        ordering, a tolerance, or a ``None`` sentinel.
REP004  No iteration over ``set()``/``dict.keys()`` collections that
        feeds ``schedule()``/``schedule_at()``/``call_soon()`` — event
        order must not depend on hash-iteration order; ``sorted()``
        first.
REP005  No ``os.environ``/``os.getenv`` reads inside simulation
        components — configuration must arrive explicitly so replays do
        not depend on ambient process state.
REP006  No module-level mutable state in simulation-domain packages —
        it silently survives ``ParallelRunner`` forks and couples
        trials. (Non-empty ALL_CAPS literal tables are treated as
        constants and allowed.)
REP007  Observer-domain code (the ``repro.obs`` package) may not
        schedule/cancel events, install trace hooks, write attributes
        on a simulator, or mutate queues — probes read simulation
        state and append to observer-owned storage, nothing else (the
        zero-observer-effect contract).
REP008  No use-after-recycle: a name handed back to a ``PacketPool``
        may not be read, stored, or scheduled afterwards on any path.
REP009  No pooled-object escape: pool-acquired objects may not be
        stored into containers/attributes that outlive the handler
        without a ``# mm-lint: transfer`` ownership annotation.
REP010  No wall-clock/environment taint reaching ``schedule()``, RNG
        seeds, or obs artifacts — tracked through assignments and call
        returns, not just the call sites REP001/REP005 flag.
REP011  No seeded ``random.Random`` instance shared across the chaos /
        link / transport domains — derive one stream per domain via
        ``stable_seed``.
REP012  No fork-hostile handles (files, locks, journals, sockets)
        created pre-fork and used inside ``ParallelRunner`` /
        ``run_supervised`` / ``parallel_map`` worker functions.
======  ==============================================================

Rules REP001, REP003, REP005, REP006 and REP008-REP011 apply to
*simulation-domain* files (any file under a :data:`SIM_DOMAIN_DIRS`
directory); REP007 applies to *observer-domain* files (under an
:data:`OBS_DOMAIN_DIRS` directory); REP002, REP004 and REP012 apply
everywhere (REP002 excepts ``sim/random.py`` itself, where the blessed
streams live).

Any diagnostic can be silenced for one line with an inline escape hatch::

    self._first_above_time = 0.0  # mm-lint: disable=REP003

(``disable=all`` silences every rule on the line). The comment is the
audit trail: it marks the spot as reviewed-and-intentional, and
``mm-lint --check-suppressions`` flags comments that no longer silence
anything so the audit trail cannot rot. REP009 additionally honours a
``# mm-lint: transfer`` annotation marking a deliberate ownership
hand-off of a pooled object.

The CLI supports machine-readable output (``--output json|sarif``), a
committed-findings baseline (``--baseline lint-baseline.json`` with
``--write-baseline`` to refresh it), and a content-hash incremental
cache (``--cache DIR``) so CI lint time tracks the size of the diff, not
the tree. Run as ``mm-lint [paths…]`` or ``python -m
repro.analysis.lint``.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Protocol, Sequence, Set, Union

from repro.analysis.base import (
    OBS_DOMAIN_DIRS,
    SIM_DOMAIN_DIRS,
    Diagnostic,
    chain_parts as _chain_parts,
    disabled_codes as _disabled_codes,
    dotted as _dotted,
    has_transfer_annotation,
    is_obs_domain,
    is_sim_domain,
    iter_python_files as _iter_python_files,
    suppression_comments,
    terminal_name as _terminal_name,
)
from repro.analysis.rules_flow import FLOW_RULES, run_flow_rules

__all__ = [
    "Diagnostic",
    "OBS_DOMAIN_DIRS",
    "RULES",
    "RULE_REGISTRY",
    "Rule",
    "SIM_DOMAIN_DIRS",
    "check_suppressions",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
]


@dataclass(frozen=True)
class Rule:
    """One entry in the unified rule registry."""

    code: str
    summary: str
    #: Which engine implements it: "ast" (per-node) or "flow" (dataflow).
    engine: str
    #: Scope: "sim" (simulation-domain files), "obs" (observer-domain
    #: files), or "all".
    scope: str


#: The unified registry both engines report against. Ordered by code.
RULE_REGISTRY: Dict[str, Rule] = {
    "REP001": Rule(
        "REP001",
        "wall-clock read in simulation-domain code (use sim.now)",
        "ast",
        "sim",
    ),
    "REP002": Rule(
        "REP002",
        "unseeded or unstably-seeded RNG (derive seeds via stable_seed)",
        "ast",
        "all",
    ),
    "REP003": Rule(
        "REP003", "float equality on a virtual-time expression", "ast", "sim"
    ),
    "REP004": Rule(
        "REP004",
        "unordered iteration feeds the event queue (sort first)",
        "ast",
        "all",
    ),
    "REP005": Rule(
        "REP005", "environment read inside a simulation component", "ast", "sim"
    ),
    "REP006": Rule(
        "REP006",
        "module-level mutable state survives ParallelRunner forks",
        "ast",
        "sim",
    ),
    "REP007": Rule(
        "REP007",
        "observer-domain code schedules events or writes sim state",
        "ast",
        "obs",
    ),
    "REP008": Rule("REP008", FLOW_RULES["REP008"], "flow", "sim"),
    "REP009": Rule("REP009", FLOW_RULES["REP009"], "flow", "sim"),
    "REP010": Rule("REP010", FLOW_RULES["REP010"], "flow", "sim"),
    "REP011": Rule("REP011", FLOW_RULES["REP011"], "flow", "sim"),
    "REP012": Rule("REP012", FLOW_RULES["REP012"], "flow", "all"),
}

#: Rule code -> one-line summary (shown by ``mm-lint --list-rules``).
RULES: Dict[str, str] = {code: rule.summary for code, rule in RULE_REGISTRY.items()}

#: AST-engine rules restricted to simulation-domain files.
SIM_DOMAIN_RULES = frozenset(
    rule.code
    for rule in RULE_REGISTRY.values()
    if rule.engine == "ast" and rule.scope == "sim"
)

#: AST-engine rules restricted to observer-domain files.
OBS_DOMAIN_RULES = frozenset(
    rule.code for rule in RULE_REGISTRY.values() if rule.scope == "obs"
)

#: Codes implemented by the dataflow engine.
FLOW_RULE_CODES = frozenset(
    rule.code for rule in RULE_REGISTRY.values() if rule.engine == "flow"
)

#: Virtual-time identifiers: exactly now/deadline/at, or a ``*_time`` suffix.
_TIME_NAME_RE = re.compile(r"^(?:now|deadline|at)$|_time$")

#: ``^_?ALL_CAPS$`` names are constants by convention (REP006 exemption
#: for non-empty literal tables).
_CONST_NAME_RE = re.compile(r"^_?[A-Z][A-Z0-9_]*$")

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
    }
)

#: ``random`` module-level draw functions (all share one unseeded global).
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

_SCHEDULE_NAMES = frozenset({"schedule", "schedule_at", "call_soon"})

#: Calls forbidden in observer-domain code (REP007): anything that feeds
#: the event queue or rewires the simulator.
_OBS_FORBIDDEN_CALLS = _SCHEDULE_NAMES | frozenset({"cancel", "set_trace"})

#: Mutating methods that, called on a queue-named receiver from observer
#: code, would change what the simulation dequeues (REP007).
_QUEUE_MUTATORS = frozenset(
    {
        "push", "pop", "popleft", "append", "appendleft", "extend",
        "extendleft", "insert", "remove", "clear",
    }
)

#: Receiver name segments that identify simulator/queue objects (REP007).
_SIM_OBJECT_NAMES = frozenset({"sim", "simulator", "_sim", "_simulator"})

_MUTABLE_FACTORIES = frozenset(
    {
        "list",
        "dict",
        "set",
        "deque",
        "defaultdict",
        "OrderedDict",
        "Counter",
        "bytearray",
    }
)


def _is_blessed_random_module(path: Union[str, Path]) -> bool:
    """``repro/sim/random.py`` — the one place allowed to build streams."""
    p = Path(path)
    return p.name == "random.py" and p.parent.name == "sim"


def _is_time_named(node: ast.expr) -> bool:
    """Does this expression read like a virtual-time value?"""
    if isinstance(node, ast.Call):
        node = node.func
    name = _terminal_name(node)
    return name is not None and _TIME_NAME_RE.search(name) is not None


def _contains_stable_seed(nodes: Sequence[ast.AST]) -> bool:
    """Is any ``stable_seed(...)`` call nested in these subtrees?"""
    for root in nodes:
        for node in ast.walk(root):
            if (
                isinstance(node, ast.Call)
                and _terminal_name(node.func) == "stable_seed"
            ):
                return True
    return False


def _contains_schedule_call(nodes: Sequence[ast.AST]) -> bool:
    """Does any subtree call ``schedule``/``schedule_at``/``call_soon``?"""
    for root in nodes:
        for node in ast.walk(root):
            if (
                isinstance(node, ast.Call)
                and _terminal_name(node.func) in _SCHEDULE_NAMES
            ):
                return True
    return False


def _is_unordered_iterable(node: ast.expr) -> bool:
    """Set literal/constructor or a ``.keys()`` view — hash-ordered."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
            return True
        if isinstance(func, ast.Attribute) and func.attr == "keys":
            return not node.args and not node.keywords
    return False


def _is_mutable_initializer(node: ast.expr) -> bool:
    if isinstance(
        node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    ):
        return True
    if isinstance(node, ast.Call):
        name = _terminal_name(node.func)
        return name in _MUTABLE_FACTORIES
    return False


def _is_empty_container(node: ast.expr) -> bool:
    if isinstance(node, ast.Dict):
        return not node.keys
    if isinstance(node, ast.List):
        return not node.elts
    if isinstance(node, ast.Call):
        return not node.args and not node.keywords
    return False


class _Checker(ast.NodeVisitor):
    """One-pass visitor collecting diagnostics for every AST-engine rule."""

    def __init__(
        self,
        path: str,
        sim_domain: bool,
        blessed_random: bool,
        obs_domain: bool = False,
    ) -> None:
        self.path = path
        self.sim_domain = sim_domain
        self.blessed_random = blessed_random
        self.obs_domain = obs_domain
        self.diagnostics: List[Diagnostic] = []
        #: Local aliases of the ``random`` module (``import random as r``).
        self._random_modules: Set[str] = set()
        #: Local aliases of ``random.Random`` / ``random.SystemRandom``.
        self._random_classes: Set[str] = set()
        self._system_random_classes: Set[str] = set()
        #: Local aliases of module-level draw fns (``from random import …``).
        self._random_fns: Set[str] = set()

    # ------------------------------------------------------------------ #
    # bookkeeping

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        if code in SIM_DOMAIN_RULES and not self.sim_domain:
            return
        if code in OBS_DOMAIN_RULES and not self.obs_domain:
            return
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        self.diagnostics.append(Diagnostic(self.path, line, col, code, message))

    # ------------------------------------------------------------------ #
    # imports (REP002 alias tracking)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random":
                self._random_modules.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                bound = alias.asname or alias.name
                if alias.name == "Random":
                    self._random_classes.add(bound)
                elif alias.name == "SystemRandom":
                    self._system_random_classes.add(bound)
                elif alias.name in _GLOBAL_RANDOM_FNS:
                    self._random_fns.add(bound)
        self.generic_visit(node)

    # ------------------------------------------------------------------ #
    # calls: REP001, REP002, REP005

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        self._check_wall_clock(node, dotted)
        if not self.blessed_random:
            self._check_rng(node, dotted)
        if self.obs_domain:
            self._check_obs_call(node)
        if dotted == "os.getenv":
            self._report(
                node,
                "REP005",
                "os.getenv() read inside a simulation component; pass "
                "configuration in explicitly so replays do not depend on "
                "ambient process state",
            )
        self.generic_visit(node)

    def _check_wall_clock(self, node: ast.Call, dotted: Optional[str]) -> None:
        if dotted in _WALL_CLOCK_CALLS:
            self._report(
                node,
                "REP001",
                f"wall-clock read {dotted}() in simulation-domain code; "
                "virtual time is sim.now",
            )
            return
        # Argless datetime.now()/utcnow()/today() on a datetime-ish base.
        if (
            dotted is not None
            and not node.args
            and not node.keywords
            and dotted.rsplit(".", 1)[-1] in {"now", "utcnow", "today"}
            and any(part in {"datetime", "date"} for part in dotted.split(".")[:-1])
        ):
            self._report(
                node,
                "REP001",
                f"wall-clock read {dotted}() in simulation-domain code; "
                "virtual time is sim.now",
            )

    def _check_rng(self, node: ast.Call, dotted: Optional[str]) -> None:
        func = node.func
        # Module-level draws: random.random(), random.shuffle(), ...
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self._random_modules
            and func.attr in _GLOBAL_RANDOM_FNS
        ):
            self._report(
                node,
                "REP002",
                f"{func.value.id}.{func.attr}() draws from the shared "
                "unseeded global generator; use a named stream from "
                "sim.streams (repro.sim.random.RandomStreams)",
            )
            return
        if isinstance(func, ast.Name) and func.id in self._random_fns:
            self._report(
                node,
                "REP002",
                f"{func.id}() draws from the shared unseeded global "
                "generator; use a named stream from sim.streams",
            )
            return
        # SystemRandom: OS entropy, irreproducible by design.
        is_system = (dotted is not None and dotted.endswith(".SystemRandom")) or (
            isinstance(func, ast.Name) and func.id in self._system_random_classes
        )
        if is_system and (dotted or "").split(".", 1)[0] in (
            self._random_modules | self._system_random_classes
        ):
            self._report(
                node,
                "REP002",
                "SystemRandom draws OS entropy and can never replay; use a "
                "stable_seed-seeded random.Random",
            )
            return
        # Random(...) construction.
        is_random_ctor = (
            isinstance(func, ast.Attribute)
            and func.attr == "Random"
            and isinstance(func.value, ast.Name)
            and func.value.id in self._random_modules
        ) or (isinstance(func, ast.Name) and func.id in self._random_classes)
        if not is_random_ctor:
            return
        if not node.args and not node.keywords:
            self._report(
                node,
                "REP002",
                "Random() without a seed is seeded from OS entropy; pass a "
                "stable_seed(master, name)-derived seed",
            )
        elif not _contains_stable_seed(list(node.args) + list(node.keywords)):
            self._report(
                node,
                "REP002",
                "Random(...) seed is not derived via stable_seed(); raw "
                "seeds collide across streams and are not stable across "
                "consumers — derive with stable_seed(master, name)",
            )

    # ------------------------------------------------------------------ #
    # REP007: observer-domain code touching the simulation

    def _check_obs_call(self, node: ast.Call) -> None:
        terminal = _terminal_name(node.func)
        if terminal in _OBS_FORBIDDEN_CALLS:
            self._report(
                node,
                "REP007",
                f"observer-domain code calls {terminal}(); probes must fire "
                "on existing events only — scheduling (or cancelling, or "
                "installing trace hooks) breaks the zero-observer-effect "
                "contract",
            )
            return
        if terminal in _QUEUE_MUTATORS and isinstance(node.func, ast.Attribute):
            receiver = _chain_parts(node.func.value)
            if any("queue" in part.lower() for part in receiver):
                self._report(
                    node,
                    "REP007",
                    f"observer-domain code mutates a queue "
                    f"({'.'.join(receiver)}.{terminal}()); probes may only "
                    "read simulation state",
                )

    def _check_obs_assign(
        self, stmt: ast.stmt, targets: Sequence[ast.expr]
    ) -> None:
        for target in targets:
            if not isinstance(target, ast.Attribute):
                continue
            base = _chain_parts(target.value)
            if any(part in _SIM_OBJECT_NAMES for part in base):
                self._report(
                    stmt,
                    "REP007",
                    f"observer-domain code writes simulator state "
                    f"({'.'.join(base)}.{target.attr} = ...); attach through "
                    "Simulator.use_metrics and keep all observer state on "
                    "the registry",
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        if self.obs_domain:
            self._check_obs_assign(node, node.targets)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if self.obs_domain:
            self._check_obs_assign(node, [node.target])
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self.obs_domain:
            self._check_obs_assign(node, [node.target])
        self.generic_visit(node)

    # ------------------------------------------------------------------ #
    # REP003: float equality on virtual-time expressions

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[index], operands[index + 1]
            for side, other in ((left, right), (right, left)):
                if not _is_time_named(side):
                    continue
                if isinstance(other, ast.Constant) and (
                    other.value is None or isinstance(other.value, str)
                ):
                    continue
                self._report(
                    node,
                    "REP003",
                    "float equality on a virtual-time expression "
                    f"({ast.unparse(side)}); exact comparison breaks under "
                    "float rounding — use an ordering, a tolerance, or a "
                    "None sentinel",
                )
                break
        self.generic_visit(node)

    # ------------------------------------------------------------------ #
    # REP004: unordered iteration feeding the event queue

    def visit_For(self, node: ast.For) -> None:
        if _is_unordered_iterable(node.iter) and _contains_schedule_call(
            list(node.body)
        ):
            self._report(
                node,
                "REP004",
                "iterating a set/dict-view while scheduling events makes "
                "event order depend on hash-iteration order; iterate "
                "sorted(...) instead",
            )
        self.generic_visit(node)

    def _check_comprehension(
        self,
        node: Union[ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp],
        elements: Sequence[ast.AST],
    ) -> None:
        if any(
            _is_unordered_iterable(gen.iter) for gen in node.generators
        ) and _contains_schedule_call(elements):
            self._report(
                node,
                "REP004",
                "comprehension over a set/dict-view schedules events in "
                "hash-iteration order; iterate sorted(...) instead",
            )
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node, [node.elt])

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._check_comprehension(node, [node.elt])

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comprehension(node, [node.elt])

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehension(node, [node.key, node.value])

    # ------------------------------------------------------------------ #
    # REP005: os.environ reads

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if _dotted(node) == "os.environ":
            self._report(
                node,
                "REP005",
                "os.environ read inside a simulation component; pass "
                "configuration in explicitly so replays do not depend on "
                "ambient process state",
            )
        self.generic_visit(node)

    # ------------------------------------------------------------------ #
    # REP006: module-level mutable state (driven from lint_source — the
    # visitor recursion above never enters Module.body assignments).

    def check_module_level(self, tree: ast.Module) -> None:
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                targets: List[ast.expr] = stmt.targets
                value: Optional[ast.expr] = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
                value = stmt.value
            else:
                continue
            if value is None or not _is_mutable_initializer(value):
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if name.startswith("__") and name.endswith("__"):
                    continue  # __all__ and friends
                if _CONST_NAME_RE.match(name) and not _is_empty_container(value):
                    continue  # non-empty ALL_CAPS literal: a constant table
                self._report(
                    stmt,
                    "REP006",
                    f"module-level mutable {name!r} survives ParallelRunner "
                    "forks and couples trials; move it onto an object owned "
                    "by the simulation",
                )


def lint_source(
    source: str,
    path: Union[str, Path] = "<string>",
    select: Optional[Set[str]] = None,
    *,
    respect_suppressions: bool = True,
) -> List[Diagnostic]:
    """Lint one module's source text; returns sorted diagnostics.

    Runs both engines: the per-node AST rules and (unless ``select``
    excludes every flow rule) the interprocedural dataflow rules.

    Args:
        source: the module text.
        path: where it (notionally) lives — drives the simulation-domain
            rule scoping and appears in diagnostics.
        select: restrict to these rule codes (default: all rules).
        respect_suppressions: honour inline ``# mm-lint: disable=`` and
            ``# mm-lint: transfer`` comments (disabled by the
            stale-suppression audit, which needs the raw findings).
    """
    path_str = str(path)
    try:
        tree = ast.parse(source, filename=path_str)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path_str,
                exc.lineno or 1,
                (exc.offset or 1) - 1,
                "E999",
                f"syntax error: {exc.msg}",
            )
        ]
    sim_domain = is_sim_domain(path)
    checker = _Checker(
        path_str,
        sim_domain=sim_domain,
        blessed_random=_is_blessed_random_module(path),
        obs_domain=is_obs_domain(path),
    )
    checker.visit(tree)
    checker.check_module_level(tree)
    diagnostics = list(checker.diagnostics)
    if select is None or select & FLOW_RULE_CODES:
        diagnostics.extend(run_flow_rules(tree, path_str, sim_domain=sim_domain))
    lines = source.splitlines()
    kept: List[Diagnostic] = []
    for diag in diagnostics:
        if select is not None and diag.code not in select:
            continue
        line_text = lines[diag.line - 1] if 0 < diag.line <= len(lines) else ""
        if respect_suppressions:
            disabled = _disabled_codes(line_text)
            if "ALL" in disabled or diag.code in disabled:
                continue
            if diag.code == "REP009" and has_transfer_annotation(line_text):
                continue
        kept.append(diag)
    kept.sort(key=lambda d: (d.line, d.col, d.code))
    return kept


def lint_file(
    path: Union[str, Path],
    select: Optional[Set[str]] = None,
    cache: Optional["LintCacheProtocol"] = None,
) -> List[Diagnostic]:
    """Lint one file on disk (optionally through the incremental cache)."""
    raw = Path(path).read_bytes()
    if cache is not None:
        key = cache.key(raw, sorted(select) if select else None)
        cached = cache.get(key)
        if cached is not None:
            return cached
    diagnostics = lint_source(raw.decode("utf-8"), path, select)
    if cache is not None:
        cache.put(key, diagnostics)
    return diagnostics


class LintCacheProtocol(Protocol):
    """Structural interface ``lint_file`` expects of a cache (see
    :class:`repro.analysis.cache.LintCache`)."""

    def key(self, source: bytes, select: Optional[Sequence[str]]) -> str:
        ...

    def get(self, key: str) -> Optional[List[Diagnostic]]:
        ...

    def put(self, key: str, diagnostics: Sequence[Diagnostic]) -> None:
        ...


def lint_paths(
    paths: Sequence[Union[str, Path]],
    select: Optional[Set[str]] = None,
    cache: Optional[LintCacheProtocol] = None,
) -> List[Diagnostic]:
    """Lint files and directory trees; returns all diagnostics."""
    diagnostics: List[Diagnostic] = []
    for path in _iter_python_files(paths):
        diagnostics.extend(lint_file(path, select, cache))
    return diagnostics


def check_suppressions(
    paths: Sequence[Union[str, Path]],
) -> List[Diagnostic]:
    """Find stale ``# mm-lint: disable=`` comments (``--check-suppressions``).

    A suppression is *stale* when the code it names (or, for
    ``disable=all``, any rule) no longer produces a diagnostic on that
    line — the hazard it documented is gone, so the comment is now a
    misleading audit trail. Suppressions inside string literals are
    ignored (they are documentation, not comments).
    """
    stale: List[Diagnostic] = []
    for file_path in _iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError:
            continue
        comments = suppression_comments(source)
        if not comments:
            continue
        raw = lint_source(source, file_path, respect_suppressions=False)
        by_line: Dict[int, Set[str]] = {}
        for diag in raw:
            by_line.setdefault(diag.line, set()).add(diag.code)
        for line, codes in sorted(comments.items()):
            present = by_line.get(line, set())
            if "ALL" in codes:
                if not present:
                    stale.append(
                        Diagnostic(
                            str(file_path),
                            line,
                            0,
                            "SUP001",
                            "stale suppression: 'disable=all' but no rule "
                            "fires on this line — remove the comment",
                        )
                    )
                continue
            for code in sorted(codes - present):
                stale.append(
                    Diagnostic(
                        str(file_path),
                        line,
                        0,
                        "SUP001",
                        f"stale suppression: 'disable={code}' but {code} "
                        "no longer fires on this line — remove the comment",
                    )
                )
    return stale


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (console script ``mm-lint``)."""
    parser = argparse.ArgumentParser(
        prog="mm-lint",
        description="Determinism lint for the Mahimahi reproduction "
        "(rules REP001-REP012; see repro.analysis.lint).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to enable (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    parser.add_argument(
        "--output",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text; json/sarif for CI annotation)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="subtract findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to --baseline FILE and exit 0",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        help="content-hash incremental cache directory",
    )
    parser.add_argument(
        "--check-suppressions",
        action="store_true",
        help="audit inline disable= comments; stale ones fail the run",
    )
    options = parser.parse_args(argv)
    if options.list_rules:
        for code, summary in RULES.items():
            print(f"{code}  {summary}")
        return 0

    if options.check_suppressions:
        stale = check_suppressions(options.paths)
        for diag in stale:
            print(diag.format())
        if stale:
            print(
                f"mm-lint: {len(stale)} stale suppression(s)", file=sys.stderr
            )
            return 1
        return 0

    select: Optional[Set[str]] = None
    if options.select:
        select = {code.strip().upper() for code in options.select.split(",")}
        unknown = select - set(RULES)
        if unknown:
            parser.error(f"unknown rule code(s): {', '.join(sorted(unknown))}")

    cache: Optional[LintCacheProtocol] = None
    if options.cache:
        from repro.analysis.cache import LintCache

        cache = LintCache(options.cache)

    diagnostics = lint_paths(options.paths, select, cache)

    if options.write_baseline:
        if not options.baseline:
            parser.error("--write-baseline requires --baseline FILE")
        from repro.analysis.baseline import write_baseline

        count = write_baseline(options.baseline, diagnostics)
        print(
            f"mm-lint: wrote {count} finding(s) to baseline "
            f"{options.baseline}",
            file=sys.stderr,
        )
        return 0

    baselined = 0
    if options.baseline:
        from repro.analysis.baseline import BaselineError, load_baseline, partition

        try:
            entries = load_baseline(options.baseline)
        except FileNotFoundError:
            parser.error(f"baseline file not found: {options.baseline}")
        except BaselineError as exc:
            parser.error(str(exc))
        diagnostics, baselined = partition(diagnostics, entries)

    if options.output == "json":
        from repro.analysis.output import to_json

        sys.stdout.write(to_json(diagnostics))
    elif options.output == "sarif":
        from repro.analysis.output import to_sarif

        sys.stdout.write(to_sarif(diagnostics, RULES))
    else:
        for diag in diagnostics:
            print(diag.format())
    if diagnostics:
        suffix = f" ({baselined} baselined)" if baselined else ""
        print(
            f"mm-lint: {len(diagnostics)} determinism violation(s){suffix}",
            file=sys.stderr,
        )
        return 1
    if baselined:
        print(
            f"mm-lint: clean ({baselined} baselined finding(s) remain)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
