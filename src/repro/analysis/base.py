"""Shared front end for the static-analysis passes (``mm-lint``).

Both the per-node AST lint (:mod:`repro.analysis.lint`, rules
REP001-REP007) and the interprocedural dataflow pass
(:mod:`repro.analysis.flow` + :mod:`repro.analysis.rules_flow`, rules
REP008-REP012) share one front end: the :class:`Diagnostic` type, the
domain classification (which files are simulation-domain or
observer-domain), the inline suppression grammar, file discovery, and a
handful of AST chain helpers. Keeping these here breaks the import cycle
``lint -> rules_flow -> flow`` would otherwise create.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Union

__all__ = [
    "DISABLE_RE",
    "Diagnostic",
    "OBS_DOMAIN_DIRS",
    "SIM_DOMAIN_DIRS",
    "TRANSFER_RE",
    "chain_parts",
    "disabled_codes",
    "dotted",
    "has_transfer_annotation",
    "is_obs_domain",
    "is_sim_domain",
    "iter_python_files",
    "suppression_comments",
    "terminal_name",
]

#: Directories whose code runs inside the simulated world. A file is
#: "simulation-domain" when any of its path components is one of these.
SIM_DOMAIN_DIRS = frozenset(
    {"sim", "linkem", "transport", "core", "browser", "web", "dns", "http",
     "chaos", "load"}
)

#: Directories whose code *observes* the simulated world. A file is
#: "observer-domain" when any of its path components is one of these;
#: REP007 holds such code to the zero-observer-effect contract.
OBS_DOMAIN_DIRS = frozenset({"obs"})

#: Inline escape hatch: a comment of the form ``mm-lint: disable=<CODE>``
#: (or ``disable=all``) on the offending line. Spelled with a
#: placeholder here so this very comment never registers as a stale
#: suppression in the ``--check-suppressions`` audit.
DISABLE_RE = re.compile(r"#\s*mm-lint:\s*disable=([A-Za-z0-9_,\s]+)")

#: Ownership-transfer annotation for REP009: a pooled object deliberately
#: handed to a longer-lived owner (``# mm-lint: transfer``). Unlike
#: ``disable=``, it only waives the escape rule, and it documents intent:
#: the new owner is now responsible for recycling (or leaking) the object.
TRANSFER_RE = re.compile(r"#\s*mm-lint:\s*transfer\b")


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding, pointing at a file position."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """``path:line:col: REPxxx message`` — editor-clickable."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def is_sim_domain(path: Union[str, Path]) -> bool:
    """Whether ``path`` lies in a simulation-domain directory.

    Classification is lexical: a symlink *named* after a sim-domain
    directory classifies everything under it, regardless of where the
    link target lives (the lint never resolves links).
    """
    return any(part in SIM_DOMAIN_DIRS for part in Path(path).parts[:-1])


def is_obs_domain(path: Union[str, Path]) -> bool:
    """Whether ``path`` lies in an observer-domain directory."""
    return any(part in OBS_DOMAIN_DIRS for part in Path(path).parts[:-1])


def disabled_codes(line: str) -> Set[str]:
    """Rule codes silenced by an inline ``# mm-lint: disable=`` comment."""
    match = DISABLE_RE.search(line)
    if match is None:
        return set()
    return {code.strip().upper() for code in match.group(1).split(",") if code.strip()}


def has_transfer_annotation(line: str) -> bool:
    """Whether the line carries the REP009 ownership-transfer annotation."""
    return TRANSFER_RE.search(line) is not None


def suppression_comments(source: str) -> Dict[int, Set[str]]:
    """Map line number -> codes suppressed by a *real* comment there.

    Unlike the per-line regex used while linting (which deliberately
    matches anything that looks like a suppression), this tokenizes the
    source so suppressions quoted inside string literals/docstrings are
    not counted. Used by ``mm-lint --check-suppressions``: a comment the
    tokenizer sees but that silences nothing is a stale suppression.
    """
    found: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            codes = disabled_codes(tok.string)
            if codes:
                found.setdefault(tok.start[0], set()).update(codes)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}
    return found


def dotted(node: ast.expr) -> Optional[str]:
    """Dotted-name string of a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def terminal_name(node: ast.expr) -> Optional[str]:
    """Last identifier of a Name/Attribute chain (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def chain_parts(node: ast.expr) -> List[str]:
    """All identifiers of a Name/Attribute chain (``a.b.c`` ->
    ``[a, b, c]``); empty when the chain is rooted elsewhere."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return []
    parts.append(node.id)
    parts.reverse()
    return parts


def iter_python_files(paths: Sequence[Union[str, Path]]) -> Iterator[Path]:
    """Yield ``.py`` files under the given files/directories, sorted."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if any(
                    part.startswith(".") or part == "__pycache__"
                    for part in candidate.parts
                ):
                    continue
                yield candidate
        else:
            yield path
