"""Flow-sensitive lint rules REP008-REP012 (``mm-lint``).

These rules consume the events emitted by the interprocedural dataflow
engine in :mod:`repro.analysis.flow` and turn them into diagnostics:

======  ==============================================================
REP008  Use-after-recycle: a name handed back to a ``PacketPool`` (via
        ``pool.recycle(x)``, the inline ``x._in_pool = True`` hand-back,
        or a callee that recycles its parameter) may not be read,
        stored, or scheduled afterwards along any path — the record can
        be re-stamped by the next acquire at any moment.
REP009  Pooled-object escape: an object acquired from a pool may not be
        stored into containers or attributes that outlive the handler
        (``self.last = pkt``, ``self._log.append(pkt)``) without an
        explicit ``# mm-lint: transfer`` ownership annotation.
REP010  Wall-clock/environment taint: values *derived from*
        ``time.*``/``os.environ`` (tracked through assignments,
        arithmetic, and call returns — not just the call site REP001 and
        REP005 already flag) may not reach ``schedule()``, RNG seeds, or
        observability artifacts.
REP011  RNG stream aliasing: one seeded ``random.Random`` instance may
        not be shared across the chaos / link / transport domains — each
        domain derives its own stream via ``stable_seed``.
REP012  Fork-hostile handles: file descriptors, locks, journals, and
        sockets created before the fork may not be used inside worker
        functions handed to ``ParallelRunner`` / ``run_supervised`` /
        ``parallel_map`` — the child inherits a duplicated, corrupt
        handle.
======  ==============================================================

REP008-REP011 apply to simulation-domain files; REP012 applies
everywhere (the harness code that forks lives outside the sim domain).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.analysis.base import Diagnostic
from repro.analysis.flow import (
    HANDLE,
    POOLED,
    RECYCLED,
    FlowEngine,
    FlowListener,
    TagSet,
)

__all__ = ["FLOW_RULES", "FlowRuleChecker", "run_flow_rules"]

#: Rule code -> one-line summary (merged into the mm-lint registry).
FLOW_RULES: Dict[str, str] = {
    "REP008": "use-after-recycle of a pooled object (flow analysis)",
    "REP009": "pooled object escapes its handler without ownership transfer",
    "REP010": "wall-clock/environment taint reaches a schedule/seed/artifact sink",
    "REP011": "one seeded RNG instance shared across chaos/link/transport domains",
    "REP012": "fork-hostile handle used inside a forked worker function",
}

#: Flow rules restricted to simulation-domain files.
SIM_DOMAIN_FLOW_RULES = frozenset({"REP008", "REP009", "REP010", "REP011"})

#: Read contexts that are legitimately part of the recycle hand-back.
_ALLOWED_READ_CONTEXTS = frozenset({"recycle", "freelist", "inpool", "assert"})

#: (domain, keywords) — matched against call-chain segments, in order;
#: the first matching domain wins (so ``ChaosPipe`` is chaos, not link).
_RNG_DOMAINS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("chaos", ("chaos", "fault", "gilbert", "inject")),
    ("transport", ("tcp", "udp", "transport", "congestion")),
    ("link", ("link", "pipe", "codel", "delay", "queue", "aqm", "trace")),
)

_SINK_DESCRIPTION = {
    "schedule": "the event queue",
    "seed": "an RNG seed",
    "artifact": "an observability artifact",
    "call": "a taint sink inside the callee",
}


def classify_rng_domain(callee_chain: List[str]) -> Optional[str]:
    """Which sim domain a call chain belongs to, if recognisable."""
    for domain, keywords in _RNG_DOMAINS:
        for part in callee_chain:
            lowered = part.lower()
            if any(keyword in lowered for keyword in keywords):
                return domain
    return None


class FlowRuleChecker(FlowListener):
    """Turn dataflow events into REP008-REP012 diagnostics."""

    def __init__(self, path: str, sim_domain: bool) -> None:
        self.path = path
        self.sim_domain = sim_domain
        self.diagnostics: List[Diagnostic] = []
        #: REP011 bookkeeping: rng name -> (domain, first callee) per scope.
        self._rng_domains: Dict[str, Tuple[str, str]] = {}

    # ------------------------------------------------------------------ #

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        if code in SIM_DOMAIN_FLOW_RULES and not self.sim_domain:
            return
        self.diagnostics.append(
            Diagnostic(
                self.path,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0),
                code,
                message,
            )
        )

    # ------------------------------------------------------------------ #
    # engine events

    def enter_function(self, qualname: str) -> None:
        self._rng_domains = {}

    def read(
        self,
        name: str,
        tags: TagSet,
        node: ast.AST,
        context: str,
        recycled_line: Optional[int],
    ) -> None:
        if RECYCLED not in tags or context in _ALLOWED_READ_CONTEXTS:
            return
        where = f" (recycled at line {recycled_line})" if recycled_line else ""
        self._report(
            node,
            "REP008",
            f"use-after-recycle: {name!r} may already be back in the "
            f"pool{where}; a concurrent acquire can re-stamp it under "
            "you — make the recycle the last use, or restructure so "
            "this path keeps ownership",
        )

    def store_attr(
        self,
        base_name: str,
        base_tags: TagSet,
        attr: str,
        value_tags: TagSet,
        clearing: bool,
        node: ast.AST,
    ) -> None:
        if RECYCLED in base_tags and not clearing:
            self._report(
                node,
                "REP008",
                f"use-after-recycle: writing {base_name}.{attr} after "
                f"{base_name!r} was handed back to the pool mutates a "
                "record the next acquire may already own",
            )
        # Composition into another short-lived object (``packet.payload =
        # segment`` while assembling an in-flight packet) stays inside
        # the pool lifecycle; only stores onto long-lived bases escape.
        if POOLED in value_tags and self._outlives_handler([base_name]):
            self._report(
                node,
                "REP009",
                f"pooled object escapes into attribute "
                f"{base_name}.{attr}; the store outlives the handler "
                "while the pool can re-stamp the object — copy the data "
                "out, or annotate the hand-off with '# mm-lint: transfer'",
            )

    def store_subscript(
        self, base_chain: List[str], value_tags: TagSet, node: ast.AST
    ) -> None:
        if POOLED not in value_tags:
            return
        if self._outlives_handler(base_chain):
            target = ".".join(base_chain) if base_chain else "<expr>"
            self._report(
                node,
                "REP009",
                f"pooled object escapes into container {target}[...]; "
                "the store outlives the handler while the pool can "
                "re-stamp the object — copy the data out, or annotate "
                "the hand-off with '# mm-lint: transfer'",
            )

    def container_store(
        self, receiver_chain: List[str], value_tags: TagSet, node: ast.AST
    ) -> None:
        if POOLED not in value_tags:
            return
        if self._outlives_handler(receiver_chain):
            target = ".".join(receiver_chain) if receiver_chain else "<expr>"
            self._report(
                node,
                "REP009",
                f"pooled object escapes into container {target}; the "
                "store outlives the handler while the pool can re-stamp "
                "the object — copy the data out, or annotate the "
                "hand-off with '# mm-lint: transfer'",
            )

    @staticmethod
    def _outlives_handler(chain: List[str]) -> bool:
        """Attribute-rooted receivers (``self.x``, ``obj.attr``) outlive
        the handler; a bare local name does not."""
        if not chain:
            return True  # computed receiver: assume the worst
        if chain[0] in ("self", "cls"):
            return True
        return len(chain) >= 2

    def sink(
        self, kind: str, callee: List[str], taints: TagSet, node: ast.AST
    ) -> None:
        origin = " and ".join(
            sorted(tag.split(":", 1)[1] for tag in taints)
        ).replace("time", "wall-clock").replace("env", "os.environ")
        target = _SINK_DESCRIPTION.get(kind, kind)
        callee_name = ".".join(callee) if callee else "<call>"
        self._report(
            node,
            "REP010",
            f"{origin}-tainted value reaches {target} via "
            f"{callee_name}(); replays would diverge — derive the value "
            "from sim.now or pass configuration in explicitly",
        )

    def rng_share(self, name: str, callee: List[str], node: ast.AST) -> None:
        domain = classify_rng_domain(callee)
        if domain is None:
            return
        callee_name = ".".join(callee)
        previous = self._rng_domains.get(name)
        if previous is None:
            self._rng_domains[name] = (domain, callee_name)
            return
        prev_domain, prev_callee = previous
        if prev_domain == domain:
            return
        self._report(
            node,
            "REP011",
            f"seeded RNG {name!r} is shared across domains: already fed "
            f"to {prev_callee}() [{prev_domain}], now to {callee_name}() "
            f"[{domain}]; aliased streams couple the domains' draw "
            "sequences — derive one stream per domain via "
            "stable_seed(master, name)",
        )

    def worker_capture(
        self, worker: str, free_name: str, tags: TagSet, node: ast.AST
    ) -> None:
        if HANDLE not in tags:
            return
        self._report(
            node,
            "REP012",
            f"fork-hostile handle {free_name!r} is created before the "
            f"fork but used inside worker {worker!r}; the forked child "
            "inherits a duplicated descriptor/lock state (torn writes, "
            "deadlocks) — open the handle inside the worker, post-fork",
        )


def run_flow_rules(
    tree: ast.Module, path: str, *, sim_domain: bool
) -> List[Diagnostic]:
    """Run the dataflow engine over one parsed module.

    Rule scoping (sim-domain only for REP008-REP011) happens inside the
    checker; rule *selection* happens in ``lint_source`` alongside the
    AST rules, so ``--select`` treats both engines uniformly.
    """
    checker = FlowRuleChecker(path, sim_domain)
    engine = FlowEngine(tree, path, checker)
    engine.run()
    return checker.diagnostics
