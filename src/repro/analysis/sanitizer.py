"""Runtime determinism sanitizer: digest and diff executed event streams.

Static lint (:mod:`repro.analysis.lint`) catches determinism hazards it can
see; this module catches the ones it cannot, by *measuring* the contract:
an opt-in :class:`~repro.sim.simulator.Simulator` execution observer
(:class:`EventStreamDigest`) folds every executed event's
``(time, seq, callback qualname)`` into a running BLAKE2 digest, and
:func:`check_determinism` replays a scenario ``runs`` times and compares
the digests. Two replays of a correctly written scenario produce the same
digest bit for bit; any divergence is reported at the *first divergent
event*, with both runs' surrounding context — which usually names the
guilty callback outright.

Run ``python -m repro.analysis.sanitizer`` for a self-contained 2-run
digest check over a reduced-scale replay scenario (the CI bench-smoke
job's determinism gate).
"""

from __future__ import annotations

import argparse
import hashlib
import sys
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from repro.errors import DeterminismError
from repro.sim.events import EventCallback
from repro.sim.simulator import Simulator

if TYPE_CHECKING:
    from repro.load.runner import LoadSession

__all__ = [
    "DeterminismReport",
    "EventStreamDigest",
    "callback_name",
    "check_determinism",
    "check_observer_effect",
    "main",
]

#: One executed event, as folded into the digest.
TraceEntry = Tuple[float, int, str]

#: A scenario builder: seed in, fully built (not yet run) simulator out.
ScenarioBuilder = Callable[[int], Simulator]


def callback_name(callback: object) -> str:
    """Stable, address-free name for an event callback.

    ``repr`` would embed ``0x7f…`` object addresses, which differ between
    runs of identical behaviour — exactly the false positive a determinism
    checker must not produce. Qualified names (unwrapping
    ``functools.partial`` chains, falling back to the callable's type) are
    identical across processes and platforms.
    """
    qualname = getattr(callback, "__qualname__", None)
    if isinstance(qualname, str):
        return qualname
    inner = getattr(callback, "func", None)  # functools.partial and kin
    if inner is not None and inner is not callback:
        return callback_name(inner)
    return type(callback).__qualname__


class EventStreamDigest:
    """Simulator execution observer folding events into a BLAKE2 digest.

    Install with ``sim.set_trace(digest)`` before running. Each executed
    event contributes ``repr(time) | seq | qualname`` — virtual times are
    folded through ``repr``, so even a single-ulp scheduling difference
    changes the digest.

    Args:
        keep_log: also retain the full entry list (needed to locate the
            first divergent event when two digests disagree; costs one
            tuple per event).
        context: how many recent entries to keep for diagnostics when the
            full log is off.
    """

    def __init__(self, keep_log: bool = False, context: int = 8) -> None:
        self._hash = hashlib.blake2b(digest_size=16)
        self.events = 0
        self.log: Optional[List[TraceEntry]] = [] if keep_log else None
        self._context = max(1, context)
        self._recent: List[TraceEntry] = []

    def __call__(self, time: float, seq: int, callback: EventCallback) -> None:
        entry = (time, seq, callback_name(callback))
        self._hash.update(
            f"{entry[0]!r}|{entry[1]}|{entry[2]}\n".encode("utf-8")
        )
        self.events += 1
        if self.log is not None:
            self.log.append(entry)
        else:
            self._recent.append(entry)
            if len(self._recent) > self._context:
                del self._recent[0]

    @property
    def hexdigest(self) -> str:
        """Digest over every event folded so far."""
        return self._hash.hexdigest()

    @property
    def recent(self) -> List[TraceEntry]:
        """The most recent entries (the full log when ``keep_log``)."""
        if self.log is not None:
            return self.log[-self._context:]
        return list(self._recent)

    def __repr__(self) -> str:
        return (
            f"<EventStreamDigest events={self.events} "
            f"digest={self.hexdigest}>"
        )


@dataclass(frozen=True)
class DeterminismReport:
    """Successful :func:`check_determinism` outcome."""

    seed: int
    runs: int
    events: int
    digest: str

    def __str__(self) -> str:
        return (
            f"deterministic: {self.runs} runs of seed {self.seed} replayed "
            f"{self.events} events identically (digest {self.digest})"
        )


def _format_entry(entry: TraceEntry) -> str:
    time, seq, name = entry
    return f"t={time!r} #{seq} {name}"


def _divergence_message(
    seed: int,
    run: int,
    reference: EventStreamDigest,
    candidate: EventStreamDigest,
) -> str:
    """Locate and describe the first divergent event of two runs."""
    ref_log, cand_log = reference.log, candidate.log
    lines = [
        f"seed {seed}: run {run} diverged from run 0 "
        f"(digest {candidate.hexdigest} != {reference.hexdigest}, "
        f"{candidate.events} vs {reference.events} events)"
    ]
    if ref_log is None or cand_log is None:
        lines.append("event logs were not kept; re-run with keep_log=True")
        lines.append("run 0 tail: " + "; ".join(map(_format_entry, reference.recent)))
        lines.append(f"run {run} tail: " + "; ".join(map(_format_entry, candidate.recent)))
        return "\n".join(lines)
    index = next(
        (i for i, (a, b) in enumerate(zip(ref_log, cand_log)) if a != b),
        min(len(ref_log), len(cand_log)),
    )
    lines.append(f"first divergent event: index {index}")
    start = max(0, index - 3)
    for label, log in (("run 0", ref_log), (f"run {run}", cand_log)):
        for position in range(start, min(index + 1, len(log))):
            marker = ">>" if position == index else "  "
            lines.append(
                f"  {marker} {label}[{position}]: {_format_entry(log[position])}"
            )
        if index >= len(log):
            lines.append(
                f"  >> {label}[{index}]: <event stream ended at "
                f"{len(log)} events>"
            )
    return "\n".join(lines)


def check_determinism(
    build: ScenarioBuilder,
    seed: int = 0,
    runs: int = 2,
    until: Optional[float] = None,
    max_events: Optional[int] = None,
    keep_log: bool = True,
) -> DeterminismReport:
    """Replay ``build(seed)`` and verify the event streams are identical.

    Args:
        build: scenario builder — returns a fully built, *not yet run*
            :class:`Simulator` for the given seed. It is called ``runs``
            times; each call must construct a fresh world.
        seed: seed handed to every ``build`` call (identical inputs are
            the whole point).
        runs: how many independent replays to compare (>= 2).
        until / max_events: forwarded to :meth:`Simulator.run`.
        keep_log: retain full event logs so a divergence report can show
            the first divergent event (disable only for very long runs).

    Returns:
        A :class:`DeterminismReport` when all runs replayed identically.

    Raises:
        DeterminismError: on the first run whose event stream differs
            from run 0's; the message pinpoints the first divergent event
            with both sides' context.
    """
    if runs < 2:
        raise ValueError(f"need at least 2 runs to compare, got {runs!r}")
    reference: Optional[EventStreamDigest] = None
    for run in range(runs):
        sim = build(seed)
        if not isinstance(sim, Simulator):
            raise TypeError(
                f"scenario builder must return a Simulator, got {type(sim)!r}"
            )
        digest = EventStreamDigest(keep_log=keep_log)
        sim.set_trace(digest)
        sim.run(until=until, max_events=max_events)
        if reference is None:
            reference = digest
        elif digest.hexdigest != reference.hexdigest:
            raise DeterminismError(
                _divergence_message(seed, run, reference, digest)
            )
    assert reference is not None
    return DeterminismReport(
        seed=seed,
        runs=runs,
        events=reference.events,
        digest=reference.hexdigest,
    )


def check_observer_effect(
    build: Callable[[int, bool], Simulator],
    seed: int = 0,
    until: Optional[float] = None,
    max_events: Optional[int] = None,
    keep_log: bool = True,
) -> DeterminismReport:
    """Verify instrumentation has *zero observer effect*.

    Runs ``build(seed, False)`` (uninstrumented) and ``build(seed, True)``
    (with a :class:`~repro.obs.registry.MetricsRegistry` attached) and
    requires bit-identical event-stream digests — the repro.obs contract:
    probes only read simulation state and append to observer-owned
    storage, so turning them on must not move a single event.

    Args:
        build: two-argument scenario builder ``(seed, instrument)``; the
            instrumented call must attach a registry before building the
            world.
        seed / until / max_events / keep_log: as in
            :func:`check_determinism`.

    Raises:
        DeterminismError: if the instrumented stream differs.
        ValueError: if the instrumented build forgot to attach a registry.
    """
    digests = []
    for instrument in (False, True):
        sim = build(seed, instrument)
        if instrument and sim.metrics is None:
            raise ValueError(
                "instrumented build did not attach a MetricsRegistry "
                "(call MetricsRegistry.install(sim) before building the world)"
            )
        digest = EventStreamDigest(keep_log=keep_log)
        sim.set_trace(digest)
        sim.run(until=until, max_events=max_events)
        digests.append(digest)
    plain, instrumented = digests
    if instrumented.hexdigest != plain.hexdigest:
        raise DeterminismError(
            "OBSERVER EFFECT: instrumented run diverged from "
            "uninstrumented (a probe scheduled an event or mutated "
            "simulation state)\n"
            + _divergence_message(seed, 1, plain, instrumented)
        )
    return DeterminismReport(
        seed=seed, runs=2, events=plain.events, digest=plain.hexdigest
    )


# ---------------------------------------------------------------------- #
# CLI smoke scenario (the CI bench-smoke determinism gate)


def _smoke_scenario(seed: int, instrument: bool = False) -> Simulator:
    """Reduced-scale replay scenario exercising the full stack.

    One synthetic multi-origin site loaded through ReplayShell + LinkShell
    (14 Mbit/s) + DelayShell (30 ms) — the Table 2 shape at Figure 2 cost:
    browser, DNS, HTTP, TCP, link emulation, and host jitter all feed the
    event stream, so the digest covers every simulation-domain package.
    """
    from repro.browser import Browser
    from repro.core import HostMachine, ShellStack
    from repro.corpus.sitegen import generate_site

    site = generate_site("smoke.example", seed=seed, n_origins=4, scale=0.3)
    sim = Simulator(seed=seed)
    if instrument:
        from repro.obs import MetricsRegistry

        MetricsRegistry.install(sim)
    machine = HostMachine(sim)
    stack = ShellStack(machine)
    stack.add_replay(site.to_recorded_site())
    stack.add_link(14.0, 14.0)
    stack.add_delay(0.030)
    browser = Browser(
        sim, stack.transport, stack.resolver_endpoint, machine=machine
    )
    browser.load(site.page)
    return sim


def _chaos_plan():
    """The sanitizer's nontrivial fault plan: every injection layer.

    A downlink outage, a bursty-loss chain, one server stall, and one
    DNS SERVFAIL — so the chaos digest covers link suppression, the GE
    RNG stream, the server fault path (split/stall/resume), and the DNS
    fault path in a single scenario.
    """
    from repro.chaos import (
        DnsFaultClause,
        FaultPlan,
        GilbertElliottClause,
        OutageClause,
        ServerFaultClause,
    )

    return FaultPlan(
        clauses=(
            OutageClause(direction="downlink", start=0.35, duration=0.15),
            GilbertElliottClause(
                direction="downlink",
                p_good_bad=0.05, p_bad_good=0.4, loss_bad=0.5,
            ),
            ServerFaultClause(
                kind="stall", skip=3, count=1, after_bytes=512, stall=0.3,
            ),
            DnsFaultClause(kind="servfail", skip=1, count=1),
        ),
        name="sanitizer",
    )


def _chaos_scenario(seed: int, instrument: bool = False) -> Simulator:
    """The smoke scenario under fault injection.

    Same world as :func:`_smoke_scenario` plus a ChaosShell running
    :func:`_chaos_plan` between the link and the delay — the determinism
    contract must hold with every fault layer firing (same seed + same
    plan => bit-identical event stream).
    """
    from repro.browser import Browser
    from repro.core import HostMachine, ShellStack
    from repro.corpus.sitegen import generate_site

    site = generate_site("smoke.example", seed=seed, n_origins=4, scale=0.3)
    sim = Simulator(seed=seed)
    if instrument:
        from repro.obs import MetricsRegistry

        MetricsRegistry.install(sim)
    machine = HostMachine(sim)
    stack = ShellStack(machine)
    stack.add_replay(site.to_recorded_site())
    stack.add_link(14.0, 14.0)
    stack.add_chaos(_chaos_plan())
    stack.add_delay(0.030)
    browser = Browser(
        sim, stack.transport, stack.resolver_endpoint, machine=machine
    )
    browser.load(site.page)
    return sim


def _load_world(seed: int, instrument: bool) -> LoadSession:
    """The load sanitizer's world: a reduced heavy-traffic level.

    60 open-loop clients (browser/api/fetch mix) Poisson-arriving at
    8/s against a 3-site corpus behind one ReplayShell — every load-path
    stream (arrivals, population, and the world under them) feeds the
    digest.
    """
    from repro.load import LoadScenario, Poisson, default_population
    from repro.load.runner import LoadSession

    population = default_population(seed=1, n_sites=3, scale=0.2)
    scenario = LoadScenario(population, Poisson(8.0), clients=60)
    return LoadSession(scenario, seed, instrument=instrument)


def _load_scenario(seed: int, instrument: bool = False) -> Simulator:
    """Digest-check builder for the heavy-traffic load scenario."""
    return _load_world(seed, instrument).sim


def _load_artifact_bytes(seed: int) -> bytes:
    """One reduced capacity sweep, serialised to artifact bytes.

    The artifact half of the load determinism contract: two sweeps of
    the same seed must serialise to *identical bytes* — quantiles, knee,
    occupancy series and all — not merely identical event streams.
    """
    from repro.load import (
        capacity_artifact_bytes,
        default_population,
        run_capacity_curve,
    )

    population = default_population(seed=1, n_sites=3, scale=0.2)
    curve = run_capacity_curve(
        population, [10, 20, 40], window=5.0, seed=seed,
        capture_digest=True,
    )
    return capacity_artifact_bytes(curve, meta={"seed": seed})


_SCENARIOS = {
    "smoke": _smoke_scenario,
    "chaos": _chaos_scenario,
    "load": _load_scenario,
}

#: Scenarios that can also prove *artifact* byte-identity across runs.
_ARTIFACT_SCENARIOS = {
    "load": _load_artifact_bytes,
}


def main(argv: Optional[List[str]] = None) -> int:
    """2-run digest check over the built-in smoke scenario."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.sanitizer",
        description="Determinism sanitizer: replay a reduced-scale "
        "record-and-replay scenario and verify bit-identical event "
        "streams.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--runs", type=int, default=2)
    parser.add_argument(
        "--scenario",
        choices=sorted(_SCENARIOS),
        default="smoke",
        help="smoke: plain replay stack; chaos: the same stack under a "
        "nontrivial fault plan (outage + Gilbert-Elliott loss + server "
        "stall + DNS SERVFAIL); load: an open-loop heavy-traffic level "
        "(60 mixed clients, Poisson arrivals) through repro.load",
    )
    parser.add_argument(
        "--max-events",
        type=int,
        default=5_000_000,
        help="safety valve forwarded to Simulator.run",
    )
    parser.add_argument(
        "--obs-check",
        action="store_true",
        help="also verify zero observer effect: the event-stream digest "
        "with a metrics registry attached must be bit-identical to "
        "the uninstrumented run's",
    )
    parser.add_argument(
        "--artifact-check",
        action="store_true",
        help="also serialise the scenario's measurement artifact twice "
        "and require byte-identical output (supported by: "
        + ", ".join(sorted(_ARTIFACT_SCENARIOS)) + ")",
    )
    options = parser.parse_args(argv)
    scenario = _SCENARIOS[options.scenario]
    try:
        report = check_determinism(
            scenario,
            seed=options.seed,
            runs=options.runs,
            max_events=options.max_events,
        )
    except DeterminismError as exc:
        print(f"DETERMINISM VIOLATION\n{exc}", file=sys.stderr)
        return 1
    print(report)
    if options.obs_check:
        try:
            obs_report = check_observer_effect(
                scenario,
                seed=options.seed,
                max_events=options.max_events,
            )
        except DeterminismError as exc:
            print(f"DETERMINISM VIOLATION\n{exc}", file=sys.stderr)
            return 1
        print(
            f"zero observer effect: instrumented digest matches "
            f"({obs_report.events} events, digest {obs_report.digest})"
        )
    if options.artifact_check:
        artifact_fn = _ARTIFACT_SCENARIOS.get(options.scenario)
        if artifact_fn is None:
            print(
                f"error: --artifact-check is not supported for scenario "
                f"{options.scenario!r} (supported: "
                f"{', '.join(sorted(_ARTIFACT_SCENARIOS))})",
                file=sys.stderr,
            )
            return 2
        first = artifact_fn(options.seed)
        for run in range(1, max(2, options.runs)):
            candidate = artifact_fn(options.seed)
            if candidate != first:
                offset = next(
                    (i for i, (a, b) in enumerate(zip(first, candidate))
                     if a != b),
                    min(len(first), len(candidate)),
                )
                print(
                    f"DETERMINISM VIOLATION\nseed {options.seed}: artifact "
                    f"run {run} diverged from run 0 at byte {offset} "
                    f"({len(candidate)} vs {len(first)} bytes)",
                    file=sys.stderr,
                )
                return 1
        print(
            f"artifact-deterministic: {max(2, options.runs)} serialisations "
            f"of seed {options.seed} are byte-identical "
            f"({len(first)} bytes)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
