"""Interprocedural dataflow engine for ``mm-lint`` (rules REP008-REP012).

The per-node AST rules in :mod:`repro.analysis.lint` catch determinism
hazards visible in a single expression. The hazards PR 6's hot-core
rewrite introduced — use-after-recycle, pooled objects escaping their
handler, wall-clock values flowing into the event queue — are *flow*
properties: they emerge from the order of statements and from calls
between functions. This module supplies the machinery to see them:

* a per-module **function table and call graph** (module-level functions,
  methods resolved through ``self``, nested defs);
* **function summaries** computed to a fixpoint — which parameters a
  function recycles, which flow through to its return value, which reach
  a taint sink inside it, and which tags its return value carries;
* a forward **abstract interpretation** over each function body: every
  name maps to a set of abstract tags (``pooled``, ``recycled``,
  ``taint:time``, ``taint:env``, ``rng``, ``handle``), branches join by
  union (a *may* analysis: "recycled on some path" taints the join), and
  loops run to a two-iteration fixpoint so loop-carried facts propagate.

The engine is policy-free: as it interprets, it emits events (name
reads, attribute/container stores, sink calls, RNG sharing, worker
captures) to a :class:`FlowListener`. The REP008-REP012 decisions and
messages live in :mod:`repro.analysis.rules_flow`, which implements the
listener; :mod:`repro.analysis.lint` drives both from ``lint_source``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, cast

from repro.analysis.base import chain_parts, dotted, terminal_name

__all__ = [
    "FlowEngine",
    "FlowListener",
    "FunctionInfo",
    "HANDLE",
    "POOLED",
    "RECYCLED",
    "RNG",
    "Summary",
    "TAINT_ENV",
    "TAINT_TIME",
    "TagSet",
]

TagSet = FrozenSet[str]

EMPTY: TagSet = frozenset()

#: The object was acquired from a :class:`~repro.net.packet.PacketPool`
#: free list (directly, via an ``acquire*`` method, or through a local
#: function that returns a pooled object).
POOLED = "pooled"

#: The object was handed back to a pool (``pool.recycle(x)``, the inline
#: ``x._in_pool = True`` hand-back, or a callee that recycles the
#: argument). Reading it afterwards can observe a re-stamped record.
RECYCLED = "recycled"

#: A pool free list itself (``pool.packets`` / ``pool.segments``);
#: ``.pop()`` yields POOLED, ``.append()`` is the hand-back.
FREELIST = "freelist"

#: Value derived from a wall-clock read (``time.time()`` and friends).
TAINT_TIME = "taint:time"

#: Value derived from the process environment (``os.environ``/``getenv``).
TAINT_ENV = "taint:env"

#: A ``random.Random`` instance (or a named stream from ``RandomStreams``).
RNG = "rng"

#: A fork-hostile handle: open file, lock, journal, socket, DB connection.
HANDLE = "handle"

#: Marker for names bound to a local function definition.
FUNC = "func"

_TAINT_TAGS: TagSet = frozenset({TAINT_TIME, TAINT_ENV})

#: Tags that propagate through operators, containers and unknown calls.
#: (POOLED/RECYCLED identify one object and do not survive arithmetic.)
_PARAM_PREFIX = "param:"

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
    }
)

_SCHEDULE_NAMES = frozenset({"schedule", "schedule_at", "call_soon"})

_SEED_SINKS = frozenset({"stable_seed", "seed", "Random"})

_ARTIFACT_SINKS = frozenset({"write_artifact"})

#: Callables that fan work out to forked workers; function-valued
#: arguments run post-fork and may not capture pre-fork handles (REP012).
_RUNNER_NAMES = frozenset(
    {"ParallelRunner", "parallel_map", "run_supervised", "run_page_loads"}
)

#: Runner keyword arguments whose callables run in the *parent* process
#: (completion callbacks like parallel_map's on_result), so handle
#: capture there is fine.
_PARENT_SIDE_KWARGS = frozenset({"on_result", "on_error", "on_progress"})

#: Factories whose results are fork-hostile handles (REP012 sources).
_HANDLE_TERMINALS = frozenset(
    {
        "open",
        "Lock",
        "RLock",
        "Semaphore",
        "BoundedSemaphore",
        "Condition",
        "TrialJournal",
    }
)

_HANDLE_DOTTED = frozenset({"socket.socket", "sqlite3.connect", "socket.create_connection"})

#: Container-mutator method names that store their argument (REP009).
_CONTAINER_ADDERS = frozenset(
    {"append", "appendleft", "add", "insert", "extend", "extendleft", "push", "put"}
)

_FREELIST_ATTRS = frozenset({"packets", "segments"})


def _poolish(parts: Sequence[str]) -> bool:
    """Does any chain segment name a pool (``pool``, ``_pool``, ...)?"""
    return any("pool" in part.lower() for part in parts)


def _param_indices(tags: TagSet) -> List[int]:
    """Parameter indices encoded in summary-mode tags."""
    return [
        int(tag[len(_PARAM_PREFIX):])
        for tag in tags
        if tag.startswith(_PARAM_PREFIX)
    ]


def _is_clearing_value(node: ast.expr) -> bool:
    """An *empty* value (None, (), [], {}): field-clearing stores on a
    recycled object during the inline hand-back are allowed. Non-empty
    constants are re-stamps, not clears, and stay reportable."""
    if isinstance(node, ast.Constant):
        return node.value is None
    if isinstance(node, (ast.Tuple, ast.List)):
        return not node.elts
    if isinstance(node, ast.Dict):
        return not node.keys
    return False


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method in the module's function table."""

    name: str
    qualname: str
    node: ast.AST
    params: Tuple[str, ...]
    class_name: Optional[str]


@dataclass
class Summary:
    """Interprocedural facts about one function, grown to a fixpoint."""

    #: Tags the return value carries intrinsically (e.g. POOLED for an
    #: acquire wrapper, TAINT_TIME for a wall-clock reader).
    return_tags: TagSet = EMPTY
    #: Parameter indices whose tags flow into the return value.
    passthrough: FrozenSet[int] = frozenset()
    #: Parameter indices handed back to a pool on some path.
    recycles: FrozenSet[int] = frozenset()
    #: Parameter indices that reach a schedule/seed/artifact sink inside.
    taint_sinks: FrozenSet[int] = frozenset()

    def merge(self, other: "Summary") -> bool:
        """Union ``other`` in; True when anything grew."""
        before = (
            self.return_tags,
            self.passthrough,
            self.recycles,
            self.taint_sinks,
        )
        self.return_tags = self.return_tags | other.return_tags
        self.passthrough = self.passthrough | other.passthrough
        self.recycles = self.recycles | other.recycles
        self.taint_sinks = self.taint_sinks | other.taint_sinks
        return before != (
            self.return_tags,
            self.passthrough,
            self.recycles,
            self.taint_sinks,
        )


class FlowListener:
    """Event sink for the interpreter; the base class ignores everything.

    :mod:`repro.analysis.rules_flow` subclasses this to turn events into
    REP008-REP012 diagnostics. Contexts passed to :meth:`read`:

    ``load``
        An ordinary read (the only context REP008 reports on).
    ``recycle`` / ``freelist``
        The name is being handed back to a pool — part of recycling.
    ``inpool``
        Reading the ``_in_pool`` idempotency flag.
    ``assert``
        Inside an ``assert`` statement (debug guards may inspect
        recycled objects; the statement vanishes under ``-O``).
    """

    def enter_function(self, qualname: str) -> None:
        """A new function body is about to be interpreted."""

    def exit_function(self) -> None:
        """The current function body is done."""

    def read(
        self,
        name: str,
        tags: TagSet,
        node: ast.AST,
        context: str,
        recycled_line: Optional[int],
    ) -> None:
        """A name was read (Load) with the given abstract tags."""

    def store_attr(
        self,
        base_name: str,
        base_tags: TagSet,
        attr: str,
        value_tags: TagSet,
        clearing: bool,
        node: ast.AST,
    ) -> None:
        """``base.attr = value`` — base/value tags as computed."""

    def store_subscript(
        self, base_chain: List[str], value_tags: TagSet, node: ast.AST
    ) -> None:
        """``base[...] = value``."""

    def container_store(
        self, receiver_chain: List[str], value_tags: TagSet, node: ast.AST
    ) -> None:
        """``receiver.append(value)`` (or another adder method)."""

    def sink(
        self, kind: str, callee: List[str], taints: TagSet, node: ast.AST
    ) -> None:
        """A tainted value reached a sink (kind: schedule/seed/artifact)."""

    def rng_share(self, name: str, callee: List[str], node: ast.AST) -> None:
        """An RNG-tagged name was passed to the given callee."""

    def worker_capture(
        self, worker: str, free_name: str, tags: TagSet, node: ast.AST
    ) -> None:
        """A worker function passed to a fork runner reads a free
        variable carrying the given tags."""


Env = Dict[str, TagSet]


def _join_env(a: Env, b: Env) -> Env:
    """Per-name union of two branch states (may-analysis join)."""
    out: Env = dict(a)
    for name, tags in b.items():
        existing = out.get(name)
        out[name] = tags if existing is None else existing | tags
    return out


def _block_terminates(stmts: Sequence[ast.stmt]) -> bool:
    """Does this block always divert control (return/raise/break/...)?

    Conservative syntactic check on the final statement: a block ending
    in ``return``/``raise``/``break``/``continue`` — or in an ``if``
    whose branches both terminate — never falls through, so its state
    must not be joined into the code after the conditional.
    """
    if not stmts:
        return False
    last = stmts[-1]
    if isinstance(last, (ast.Return, ast.Raise, ast.Break, ast.Continue)):
        return True
    if isinstance(last, ast.If):
        return _block_terminates(last.body) and _block_terminates(last.orelse)
    if isinstance(last, (ast.With, ast.AsyncWith)):
        return _block_terminates(last.body)
    return False


def _free_reads(func: ast.AST) -> List[Tuple[str, ast.AST]]:
    """Free-variable reads of a function/lambda body.

    Names loaded in the body that are neither parameters nor bound by
    any assignment-like construct inside it. Order of first occurrence.
    """
    if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        body: List[ast.AST] = list(func.body)
        arguments = func.args
    elif isinstance(func, ast.Lambda):
        body = [func.body]
        arguments = func.args
    else:
        return []
    bound: Set[str] = set()
    for group in (
        arguments.posonlyargs,
        arguments.args,
        arguments.kwonlyargs,
    ):
        for arg in group:
            bound.add(arg.arg)
    if arguments.vararg is not None:
        bound.add(arguments.vararg.arg)
    if arguments.kwarg is not None:
        bound.add(arguments.kwarg.arg)
    loads: List[Tuple[str, ast.AST]] = []
    for root in body:
        for node in ast.walk(root):
            if isinstance(node, ast.Name):
                if isinstance(node.ctx, ast.Load):
                    loads.append((node.id, node))
                else:
                    bound.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                bound.add(node.name)
            elif isinstance(node, ast.ClassDef):
                bound.add(node.name)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    bound.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(node, ast.ExceptHandler) and node.name:
                bound.add(node.name)
    seen: Set[str] = set()
    out: List[Tuple[str, ast.AST]] = []
    for name, node in loads:
        if name in bound or name in seen:
            continue
        seen.add(name)
        out.append((name, node))
    return out


class _FunctionTable(ast.NodeVisitor):
    """Collect every function/method with a resolvable qualname."""

    def __init__(self) -> None:
        self.functions: List[FunctionInfo] = []
        self.module_funcs: Dict[str, FunctionInfo] = {}
        self.methods: Dict[Tuple[str, str], FunctionInfo] = {}
        self._class_stack: List[str] = []
        self._func_stack: List[str] = []

    def _collect(self, node: ast.AST, name: str) -> None:
        arguments = getattr(node, "args", None)
        params: List[str] = []
        if isinstance(arguments, ast.arguments):
            for group in (arguments.posonlyargs, arguments.args):
                for arg in group:
                    params.append(arg.arg)
        qual_parts = self._class_stack + self._func_stack + [name]
        class_name = self._class_stack[-1] if self._class_stack else None
        info = FunctionInfo(
            name=name,
            qualname=".".join(qual_parts),
            node=node,
            params=tuple(params),
            class_name=class_name if not self._func_stack else None,
        )
        self.functions.append(info)
        if not self._class_stack and not self._func_stack:
            self.module_funcs[name] = info
        if info.class_name is not None:
            self.methods[(info.class_name, name)] = info

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._collect(node, node.name)
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._collect(node, node.name)
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()


class FlowEngine:
    """Run the dataflow analysis for one module and emit rule events."""

    #: Fixpoint iterations for mutually recursive summaries. Summaries
    #: grow monotonically, so iteration count only bounds *depth* of
    #: transitive facts through call cycles; 5 covers real code.
    _SUMMARY_ROUNDS = 5

    def __init__(self, tree: ast.Module, path: str, listener: FlowListener) -> None:
        self.tree = tree
        self.path = path
        self.listener = listener
        table = _FunctionTable()
        table.visit(tree)
        self.functions = table.functions
        self.module_funcs = table.module_funcs
        self.methods = table.methods
        self.summaries: Dict[str, Summary] = {
            info.qualname: Summary() for info in self.functions
        }
        self.module_env: Env = {}

    # ------------------------------------------------------------------ #

    def run(self) -> None:
        """Summaries to fixpoint, then a checking pass over everything."""
        null = FlowListener()
        for _ in range(self._SUMMARY_ROUNDS):
            changed = False
            for info in self.functions:
                interp = _Interpreter(self, info, null, summary=Summary())
                interp.run_summary()
                assert interp.summary is not None
                if self.summaries[info.qualname].merge(interp.summary):
                    changed = True
            if not changed:
                break
        # Module-level pass builds the module environment (handles, RNGs
        # bound at import time) and checks module-level statements.
        self.listener.enter_function("<module>")
        module_interp = _Interpreter(self, None, self.listener, summary=None)
        module_interp.run_module(self.tree)
        self.module_env = module_interp.env
        self.listener.exit_function()
        for info in self.functions:
            self.listener.enter_function(info.qualname)
            interp = _Interpreter(self, info, self.listener, summary=None)
            interp.run_check()
            self.listener.exit_function()

    def resolve_call(
        self, func: ast.expr, class_name: Optional[str]
    ) -> Optional[Tuple[FunctionInfo, int]]:
        """Resolve a call target to (function, parameter offset).

        Offset is 1 for ``self.method(...)`` calls (the receiver binds
        the leading ``self`` parameter), 0 otherwise.
        """
        if isinstance(func, ast.Name):
            info = self.module_funcs.get(func.id)
            if info is not None:
                return info, 0
            return None
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and class_name is not None
        ):
            info = self.methods.get((class_name, func.attr))
            if info is not None:
                return info, 1
        return None


class _Interpreter:
    """Forward abstract interpretation of one function body (or the
    module body), emitting events to the engine's listener."""

    def __init__(
        self,
        engine: FlowEngine,
        info: Optional[FunctionInfo],
        listener: FlowListener,
        summary: Optional[Summary],
    ) -> None:
        self.engine = engine
        self.info = info
        self.listener = listener
        self.summary = summary
        self.env: Env = {}
        #: Where each currently-recycled name was recycled (for messages).
        self.recycled_at: Dict[str, int] = {}
        #: Function defs seen in this scope (REP012 worker resolution).
        self.local_defs: Dict[str, ast.AST] = {}
        self._read_ctx = "load"
        self._in_assert = False

    # ------------------------------------------------------------------ #
    # entry points

    def run_summary(self) -> None:
        assert self.info is not None and self.summary is not None
        for index, param in enumerate(self.info.params):
            self.env[param] = frozenset({f"{_PARAM_PREFIX}{index}"})
        self._exec_block(self._body())

    def run_check(self) -> None:
        assert self.info is not None
        self.env = dict(self.engine.module_env)
        for param in self.info.params:
            self.env[param] = EMPTY
        self._exec_block(self._body())

    def run_module(self, tree: ast.Module) -> None:
        self._exec_block(tree.body)

    def _body(self) -> List[ast.stmt]:
        assert self.info is not None
        body = getattr(self.info.node, "body", None)
        return list(body) if isinstance(body, list) else []

    @property
    def _class_name(self) -> Optional[str]:
        return self.info.class_name if self.info is not None else None

    # ------------------------------------------------------------------ #
    # state helpers

    def _mark_recycled(self, name: str, node: ast.AST) -> None:
        tags = self.env.get(name, EMPTY)
        self.env[name] = (tags - {POOLED}) | {RECYCLED}
        self.recycled_at.setdefault(name, getattr(node, "lineno", 0))
        if self.summary is not None:
            for index in _param_indices(tags):
                self.summary.recycles = self.summary.recycles | {index}

    def _clear_recycled(self, name: str) -> None:
        tags = self.env.get(name, EMPTY)
        self.env[name] = tags - {RECYCLED}
        self.recycled_at.pop(name, None)

    def _check_read(self, name: str, tags: TagSet, node: ast.AST) -> None:
        context = "assert" if self._in_assert else self._read_ctx
        self.listener.read(name, tags, node, context, self.recycled_at.get(name))

    def _record_sink(self, kind: str, callee: List[str], tags: TagSet, node: ast.AST) -> None:
        taints = tags & _TAINT_TAGS
        if taints:
            self.listener.sink(kind, callee, taints, node)
        if self.summary is not None:
            for index in _param_indices(tags):
                self.summary.taint_sinks = self.summary.taint_sinks | {index}

    # ------------------------------------------------------------------ #
    # expressions

    def _read_name(self, node: ast.Name, ctx: Optional[str] = None) -> TagSet:
        tags = self.env.get(node.id, EMPTY)
        saved = self._read_ctx
        if ctx is not None:
            self._read_ctx = ctx
        self._check_read(node.id, tags, node)
        self._read_ctx = saved
        return tags

    def _propagate(self, tags: TagSet) -> TagSet:
        """Tags that survive operators/containers/unknown calls."""
        return frozenset(
            tag
            for tag in tags
            if tag in _TAINT_TAGS or tag.startswith(_PARAM_PREFIX)
        )

    def _eval(self, node: Optional[ast.expr]) -> TagSet:
        if node is None:
            return EMPTY
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load):
                return self._read_name(node)
            return self.env.get(node.id, EMPTY)
        if isinstance(node, ast.Constant):
            return EMPTY
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Subscript):
            if dotted(node.value) == "os.environ":
                self._eval(node.slice)
                return frozenset({TAINT_ENV})
            value = self._eval(node.value)
            self._eval(node.slice)
            return self._propagate(value) | (value & {FREELIST})
        if isinstance(node, ast.BinOp):
            return self._propagate(self._eval(node.left) | self._eval(node.right))
        if isinstance(node, ast.UnaryOp):
            return self._propagate(self._eval(node.operand))
        if isinstance(node, ast.BoolOp):
            tags: TagSet = EMPTY
            for value_node in node.values:
                tags |= self._eval(value_node)
            # `a or default`: identity tags survive boolean alternation.
            return tags
        if isinstance(node, ast.Compare):
            tags = self._eval(node.left)
            for comparator in node.comparators:
                tags |= self._eval(comparator)
            return self._propagate(tags)
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return self._eval(node.body) | self._eval(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            tags = EMPTY
            for elt in node.elts:
                tags |= self._eval(elt)
            return self._propagate(tags)
        if isinstance(node, ast.Dict):
            tags = EMPTY
            for key in node.keys:
                if key is not None:
                    tags |= self._eval(key)
            for value_node in node.values:
                tags |= self._eval(value_node)
            return self._propagate(tags)
        if isinstance(node, ast.JoinedStr):
            tags = EMPTY
            for value_node in node.values:
                tags |= self._eval(value_node)
            return self._propagate(tags)
        if isinstance(node, ast.FormattedValue):
            return self._propagate(self._eval(node.value))
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.Await):
            return self._eval(node.value)
        if isinstance(node, ast.NamedExpr):
            tags = self._eval(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = tags
                self._clear_recycled(node.target.id)
            return tags
        if isinstance(node, ast.Lambda):
            return EMPTY
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            return self._eval_comprehension(node)
        return EMPTY

    def _eval_comprehension(
        self,
        node: "ast.ListComp | ast.SetComp | ast.GeneratorExp | ast.DictComp",
    ) -> TagSet:
        saved: Dict[str, Optional[TagSet]] = {}
        element_tags: TagSet = EMPTY
        for gen in node.generators:
            iter_tags = self._propagate(self._eval(gen.iter))
            for target_node in ast.walk(gen.target):
                if isinstance(target_node, ast.Name):
                    saved.setdefault(target_node.id, self.env.get(target_node.id))
                    self.env[target_node.id] = iter_tags
            for if_node in gen.ifs:
                self._eval(if_node)
        if isinstance(node, ast.DictComp):
            element_tags = self._eval(node.key) | self._eval(node.value)
        else:
            element_tags = self._eval(node.elt)
        for name, previous in saved.items():
            if previous is None:
                self.env.pop(name, None)
            else:
                self.env[name] = previous
        return self._propagate(element_tags)

    def _eval_attribute(self, node: ast.Attribute) -> TagSet:
        if dotted(node) == "os.environ":
            return frozenset({TAINT_ENV})
        base = node.value
        if isinstance(base, ast.Name) and isinstance(base.ctx, ast.Load):
            ctx = "inpool" if node.attr == "_in_pool" else None
            base_tags = self._read_name(base, ctx)
        else:
            base_tags = self._eval(base)
        if node.attr in _FREELIST_ATTRS:
            chain = chain_parts(node)
            if (chain and _poolish(chain[:-1])) or FREELIST in base_tags:
                return frozenset({FREELIST})
        return self._propagate(base_tags)

    # ------------------------------------------------------------------ #
    # calls

    def _eval_call(self, node: ast.Call) -> TagSet:
        func = node.func
        term = terminal_name(func)
        dotted_name = dotted(func)
        if isinstance(func, ast.Attribute):
            receiver_tags = self._eval(func.value)
            receiver_chain = chain_parts(func.value)
        else:
            receiver_tags = EMPTY
            receiver_chain = []

        is_recycle = term == "recycle" and (
            not receiver_chain or _poolish(receiver_chain)
        )
        is_freelist_store = (
            term in _CONTAINER_ADDERS
            and isinstance(func, ast.Attribute)
            and (
                FREELIST in receiver_tags
                or (
                    _poolish(receiver_chain)
                    and bool(receiver_chain)
                    and receiver_chain[-1] in _FREELIST_ATTRS
                )
            )
        )
        arg_ctx: Optional[str] = None
        if is_recycle:
            arg_ctx = "recycle"
        elif is_freelist_store:
            arg_ctx = "freelist"

        arg_tags: List[TagSet] = []
        for arg in node.args:
            if isinstance(arg, ast.Name) and arg_ctx is not None:
                arg_tags.append(self._read_name(arg, arg_ctx))
            else:
                arg_tags.append(self._eval(arg))
        kw_tags: List[Tuple[Optional[str], TagSet, ast.expr]] = []
        for keyword in node.keywords:
            kw_tags.append((keyword.arg, self._eval(keyword.value), keyword.value))
        all_arg_tags: TagSet = EMPTY
        for tags in arg_tags:
            all_arg_tags |= tags
        for _, tags, _node in kw_tags:
            all_arg_tags |= tags

        callee_chain = chain_parts(func) or ([term] if term else [])

        # -- pool lifecycle effects ------------------------------------ #
        if is_recycle:
            for arg in node.args:
                if isinstance(arg, ast.Name):
                    self._mark_recycled(arg.id, arg)
            if self.summary is not None:
                for tags in arg_tags:
                    for index in _param_indices(tags):
                        self.summary.recycles = self.summary.recycles | {index}
            return EMPTY
        if is_freelist_store:
            for arg in node.args:
                if isinstance(arg, ast.Name):
                    self._mark_recycled(arg.id, arg)
            return EMPTY

        # -- container stores (REP009) --------------------------------- #
        if (
            term in _CONTAINER_ADDERS
            and isinstance(func, ast.Attribute)
            and POOLED in all_arg_tags
        ):
            self.listener.container_store(receiver_chain, all_arg_tags, node)

        # -- RNG sharing (REP011) -------------------------------------- #
        if callee_chain:
            for arg in node.args:
                if isinstance(arg, ast.Name) and RNG in self.env.get(arg.id, EMPTY):
                    self.listener.rng_share(arg.id, callee_chain, node)
            for keyword in node.keywords:
                value = keyword.value
                if isinstance(value, ast.Name) and RNG in self.env.get(
                    value.id, EMPTY
                ):
                    self.listener.rng_share(value.id, callee_chain, node)

        # -- taint sinks (REP010) -------------------------------------- #
        if term in _SCHEDULE_NAMES:
            self._record_sink("schedule", callee_chain, all_arg_tags, node)
        elif term in _SEED_SINKS:
            self._record_sink("seed", callee_chain, all_arg_tags, node)
        elif term in _ARTIFACT_SINKS:
            self._record_sink("artifact", callee_chain, all_arg_tags, node)

        # -- fork-hostile worker captures (REP012) --------------------- #
        if term in _RUNNER_NAMES:
            self._check_worker_args(node)

        # -- local call: apply the callee's summary -------------------- #
        resolved = self.engine.resolve_call(func, self._class_name)
        if resolved is not None:
            info, offset = resolved
            callee_summary = self.engine.summaries.get(info.qualname, Summary())
            param_of_kw = {name: i for i, name in enumerate(info.params)}
            mapped: List[Tuple[int, Optional[ast.expr], TagSet]] = []
            for position, arg in enumerate(node.args):
                mapped.append((position + offset, arg, arg_tags[position]))
            for kw_name, tags, value_node in kw_tags:
                if kw_name is not None and kw_name in param_of_kw:
                    mapped.append((param_of_kw[kw_name], value_node, tags))
            result = callee_summary.return_tags
            for index, arg_node, tags in mapped:
                if index in callee_summary.recycles and isinstance(
                    arg_node, ast.Name
                ):
                    self._mark_recycled(arg_node.id, arg_node)
                if index in callee_summary.taint_sinks:
                    self._record_sink("call", [info.name], tags, node)
                if index in callee_summary.passthrough:
                    result |= tags
            return result

        # -- intrinsic sources ----------------------------------------- #
        if dotted_name in _WALL_CLOCK_CALLS:
            return frozenset({TAINT_TIME})
        if (
            dotted_name is not None
            and not node.args
            and not node.keywords
            and dotted_name.rsplit(".", 1)[-1] in {"now", "utcnow", "today"}
            and any(
                part in {"datetime", "date"}
                for part in dotted_name.split(".")[:-1]
            )
        ):
            return frozenset({TAINT_TIME})
        if dotted_name == "os.getenv" or (
            dotted_name is not None and dotted_name.startswith("os.environ.")
        ):
            return frozenset({TAINT_ENV})
        if term is not None and term.startswith("acquire") and (
            _poolish(receiver_chain) or FREELIST in receiver_tags
        ):
            return frozenset({POOLED})
        if term == "pop" and FREELIST in receiver_tags:
            return frozenset({POOLED})
        if term == "Random":
            return frozenset({RNG}) | self._propagate(all_arg_tags)
        if term == "stream" and any(
            "stream" in part.lower() for part in receiver_chain
        ):
            return frozenset({RNG})
        if term in _HANDLE_TERMINALS or dotted_name in _HANDLE_DOTTED:
            return frozenset({HANDLE})

        # Unknown call: taint flows through (str(t), min(t, x), ...).
        return self._propagate(all_arg_tags | receiver_tags)

    def _check_worker_args(self, node: ast.Call) -> None:
        """REP012: inspect function-valued args of a fork-runner call."""
        candidates: List[ast.expr] = list(node.args)
        candidates.extend(
            keyword.value
            for keyword in node.keywords
            if keyword.arg not in _PARENT_SIDE_KWARGS
        )
        for arg in candidates:
            worker: Optional[ast.AST] = None
            worker_name = "<lambda>"
            if isinstance(arg, ast.Lambda):
                worker = arg
            elif isinstance(arg, ast.Name):
                worker = self.local_defs.get(arg.id)
                if worker is None:
                    info = self.engine.module_funcs.get(arg.id)
                    worker = info.node if info is not None else None
                worker_name = arg.id
            if worker is None:
                continue
            for free_name, read_node in _free_reads(worker):
                tags = self.env.get(
                    free_name, self.engine.module_env.get(free_name, EMPTY)
                )
                if tags:
                    self.listener.worker_capture(
                        worker_name, free_name, tags, read_node
                    )

    # ------------------------------------------------------------------ #
    # statements

    def _exec_block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._exec(stmt)

    def _branch(self, stmts: Sequence[ast.stmt]) -> Env:
        """Run a block on a copy of the current state; return its out-state."""
        saved_env = self.env
        saved_recycled = dict(self.recycled_at)
        self.env = dict(saved_env)
        self._exec_block(stmts)
        out = self.env
        self.env = saved_env
        # recycled_at lines accumulate across branches (first line wins).
        for name, line in self.recycled_at.items():
            saved_recycled.setdefault(name, line)
        self.recycled_at = saved_recycled
        return out

    def _exec(self, stmt: ast.stmt) -> None:
        kind = type(stmt).__name__
        if isinstance(stmt, ast.Assign):
            value_tags = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign_target(target, value_tags, stmt.value, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value_tags = self._eval(stmt.value)
                self._assign_target(stmt.target, value_tags, stmt.value, stmt)
        elif isinstance(stmt, ast.AugAssign):
            value_tags = self._eval(stmt.value)
            target = stmt.target
            if isinstance(target, ast.Name):
                current = self._read_name(
                    ast.copy_location(ast.Name(id=target.id, ctx=ast.Load()), target)
                )
                self.env[target.id] = current | self._propagate(value_tags)
            elif isinstance(target, ast.Attribute) and isinstance(
                target.value, ast.Name
            ):
                base_tags = self.env.get(target.value.id, EMPTY)
                self.listener.store_attr(
                    target.value.id,
                    base_tags,
                    target.attr,
                    value_tags,
                    False,
                    stmt,
                )
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.Return):
            tags = self._eval(stmt.value)
            if self.summary is not None:
                generated = frozenset(
                    tag for tag in tags if not tag.startswith(_PARAM_PREFIX)
                ) - {FREELIST}
                self.summary.return_tags = self.summary.return_tags | generated
                self.summary.passthrough = self.summary.passthrough | frozenset(
                    _param_indices(tags)
                )
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            body_env = self._branch(stmt.body)
            else_env = self._branch(stmt.orelse)
            # A branch that always diverts control (return/raise/...)
            # contributes nothing to the fall-through state; joining it
            # anyway would, e.g., leak RECYCLED tags from an early-return
            # hand-back path into code that only runs when it was taken.
            body_exits = _block_terminates(stmt.body)
            else_exits = _block_terminates(stmt.orelse)
            if body_exits and not else_exits:
                self.env = else_env
            elif else_exits and not body_exits:
                self.env = body_env
            else:
                self.env = _join_env(body_env, else_env)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            once = _join_env(self.env, self._branch(stmt.body))
            self.env = once
            self.env = _join_env(once, self._branch(stmt.body))
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_tags = self._propagate(self._eval(stmt.iter))
            for target_node in ast.walk(stmt.target):
                if isinstance(target_node, ast.Name):
                    self.env[target_node.id] = iter_tags
                    self._clear_recycled(target_node.id)
            once = _join_env(self.env, self._branch(stmt.body))
            self.env = once
            self.env = _join_env(once, self._branch(stmt.body))
            self._exec_block(stmt.orelse)
        elif kind in ("Try", "TryStar"):
            # TryStar (3.11+) shares Try's field layout; dispatch on the
            # node-type name so 3.9/3.10 parsers never see the class.
            try_stmt = cast(ast.Try, stmt)
            pre = dict(self.env)
            after_body = self._branch(try_stmt.body + try_stmt.orelse)
            joined = _join_env(pre, after_body)
            for handler in try_stmt.handlers:
                saved = self.env
                self.env = dict(joined)
                if handler.name:
                    self.env[handler.name] = EMPTY
                self._exec_block(handler.body)
                joined = _join_env(joined, self.env)
                self.env = saved
            self.env = joined
            self._exec_block(try_stmt.finalbody)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                tags = self._eval(item.context_expr)
                if isinstance(item.optional_vars, ast.Name):
                    self.env[item.optional_vars.id] = tags
                    self._clear_recycled(item.optional_vars.id)
            self._exec_block(stmt.body)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.local_defs[stmt.name] = stmt
            self.env[stmt.name] = frozenset({FUNC})
        elif isinstance(stmt, ast.ClassDef):
            self.env[stmt.name] = EMPTY
        elif isinstance(stmt, ast.Assert):
            self._in_assert = True
            self._eval(stmt.test)
            if stmt.msg is not None:
                self._eval(stmt.msg)
            self._in_assert = False
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
                    self.recycled_at.pop(target.id, None)
        elif isinstance(stmt, ast.Raise):
            self._eval(stmt.exc)
            self._eval(stmt.cause)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                bound = (alias.asname or alias.name).split(".")[0]
                self.env.setdefault(bound, EMPTY)
        elif kind == "Match":
            # Structural pattern matching (3.10+): evaluate the subject,
            # then join all case bodies as alternative branches.
            self._eval(getattr(stmt, "subject", None))
            joined: Optional[Env] = None
            for case in getattr(stmt, "cases", []):
                out = self._branch(case.body)
                joined = out if joined is None else _join_env(joined, out)
            if joined is not None:
                self.env = _join_env(self.env, joined)
        # Pass/Break/Continue/Global/Nonlocal: no dataflow effect.

    def _assign_target(
        self,
        target: ast.expr,
        value_tags: TagSet,
        value_node: ast.expr,
        stmt: ast.stmt,
    ) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value_tags
            self._clear_recycled(target.id)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            element_tags = self._propagate(value_tags)
            for elt in target.elts:
                self._assign_target(elt, element_tags, value_node, stmt)
            return
        if isinstance(target, ast.Attribute):
            base = target.value
            if isinstance(base, ast.Name):
                base_tags = self.env.get(base.id, EMPTY)
                if target.attr == "_in_pool":
                    if (
                        isinstance(value_node, ast.Constant)
                        and value_node.value is True
                    ):
                        self._mark_recycled(base.id, stmt)
                    elif (
                        isinstance(value_node, ast.Constant)
                        and value_node.value is False
                    ):
                        self._clear_recycled(base.id)
                    return
                self.listener.store_attr(
                    base.id,
                    base_tags,
                    target.attr,
                    value_tags,
                    _is_clearing_value(value_node),
                    stmt,
                )
            else:
                self._eval(base)
                chain = chain_parts(target)
                if POOLED in value_tags:
                    self.listener.store_attr(
                        chain[0] if chain else "<expr>",
                        EMPTY,
                        target.attr,
                        value_tags,
                        _is_clearing_value(value_node),
                        stmt,
                    )
            return
        if isinstance(target, ast.Subscript):
            self._eval(target.value)
            self._eval(target.slice)
            if POOLED in value_tags:
                self.listener.store_subscript(
                    chain_parts(target.value), value_tags, stmt
                )
            return
        if isinstance(target, ast.Starred):
            self._assign_target(target.value, value_tags, value_node, stmt)
