"""Content-hash incremental cache for ``mm-lint`` (``--cache DIR``).

Linting is a pure function of (file contents, analyzer sources, rule
selection), so results are cached under a BLAKE2 key of exactly those
inputs. A cache hit skips parsing and both analysis passes for the file;
any edit to the file *or* to the analyzer itself changes the key and
re-lints. This is what keeps the CI lint job fast as the tree grows: the
workflow persists the cache directory keyed on the analysis-source hash
(see ``.github/workflows/ci.yml``), so a typical PR re-analyzes only the
files it touched.

Entries are tiny JSON files named by their key, written atomically
(temp + rename via :mod:`repro.fsutil`) so a killed lint run never
leaves a torn entry. Unreadable or malformed entries are treated as
misses and rewritten.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.analysis.base import Diagnostic
from repro.analysis.output import diagnostics_from_json

__all__ = ["LintCache", "analyzer_fingerprint"]

#: Bump when the cache entry format itself changes shape.
_CACHE_FORMAT = 1

#: Analyzer modules whose sources parameterize every cache key. Any edit
#: to the rules or the engine invalidates the whole cache.
_ANALYZER_MODULES = (
    "base.py",
    "flow.py",
    "rules_flow.py",
    "lint.py",
    "output.py",
    "baseline.py",
    "cache.py",
)

_fingerprint_memo: Optional[str] = None


def analyzer_fingerprint() -> str:
    """BLAKE2 digest over the analyzer's own source files."""
    global _fingerprint_memo
    if _fingerprint_memo is not None:
        return _fingerprint_memo
    digest = hashlib.blake2b(digest_size=16)
    package_dir = Path(__file__).resolve().parent
    digest.update(f"format:{_CACHE_FORMAT}".encode("ascii"))
    for name in _ANALYZER_MODULES:
        module_path = package_dir / name
        digest.update(b"\x00" + name.encode("ascii") + b"\x00")
        try:
            digest.update(module_path.read_bytes())
        except OSError:
            digest.update(b"<missing>")
    _fingerprint_memo = digest.hexdigest()
    return _fingerprint_memo


class LintCache:
    """Directory-backed diagnostic cache keyed by content hashes."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def key(self, source: bytes, select: Optional[Sequence[str]]) -> str:
        """Cache key for one file's source under a rule selection."""
        digest = hashlib.blake2b(digest_size=16)
        digest.update(analyzer_fingerprint().encode("ascii"))
        digest.update(b"\x00")
        digest.update(
            ",".join(sorted(select)).encode("utf-8") if select else b"<all>"
        )
        digest.update(b"\x00")
        digest.update(source)
        return digest.hexdigest()

    def _entry_path(self, key: str) -> Path:
        # Two-level fanout keeps directory listings short on big trees.
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[List[Diagnostic]]:
        """Cached diagnostics for a key, or None on a miss."""
        entry = self._entry_path(key)
        try:
            payload = json.loads(entry.read_text(encoding="utf-8"))
            diagnostics = diagnostics_from_json(payload["diagnostics"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return diagnostics

    def put(self, key: str, diagnostics: Sequence[Diagnostic]) -> None:
        """Store diagnostics for a key (atomic write, best-effort)."""
        entry = self._entry_path(key)
        document = {
            "diagnostics": [
                {
                    "path": diag.path,
                    "line": diag.line,
                    "col": diag.col,
                    "code": diag.code,
                    "message": diag.message,
                }
                for diag in diagnostics
            ],
        }
        try:
            entry.parent.mkdir(parents=True, exist_ok=True)
            from repro.fsutil import atomic_write_text

            atomic_write_text(entry, json.dumps(document, sort_keys=True))
        except OSError:
            pass  # a cold cache is always safe
