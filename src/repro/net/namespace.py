"""Network namespaces: the isolation primitive.

A :class:`NetworkNamespace` is a private network stack — its own interfaces,
addresses, routing table, transport sockets, and DNS override map. Packets
can only enter or leave through an interface wired to a veth pair, which is
precisely the isolation property §4 of the paper claims: traffic inside one
namespace cannot observe or perturb traffic in any other.

Local delivery (a connection between two addresses owned by the same
namespace — e.g. a browser running directly inside ReplayShell talking to
the replay servers) goes over a simulated loopback with a small configurable
latency that models kernel stack traversal.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, TYPE_CHECKING

from repro.errors import NamespaceError
from repro.net.address import IPv4Address
from repro.net.interface import Interface
from repro.net.packet import Packet
from repro.net.routing import RoutingTable
from repro.sim.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.nat import Nat

#: Default one-way latency of the simulated loopback path, seconds. Models
#: the cost of traversing the local stack twice (send + receive).
DEFAULT_LOOPBACK_LATENCY = 25e-6


class NetworkNamespace:
    """A private, isolated network stack.

    Args:
        sim: the simulator whose clock this namespace lives on.
        name: diagnostic name (shells name theirs after themselves).
        loopback_latency: one-way delay for namespace-local connections.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        loopback_latency: float = DEFAULT_LOOPBACK_LATENCY,
    ) -> None:
        self.sim = sim
        self.name = name
        self.loopback_latency = loopback_latency
        self.routes = RoutingTable()
        self.nat: Optional["Nat"] = None
        self.forwarding_delay = 0.0
        # Netfilter-style hooks. Prerouting hooks run on every packet
        # entering the namespace (before the local-delivery decision) and
        # may rewrite it — this is where RecordShell's REDIRECT lives.
        # Postrouting hooks run on every packet leaving (forwarded or
        # originated), after NAT.
        self.prerouting_hooks: list = []
        self.postrouting_hooks: list = []
        self._interfaces: Dict[str, Interface] = {}
        self._local_addresses: Dict[IPv4Address, Interface] = {}
        # Mirror of _local_addresses keyed by the raw 32-bit value: the
        # per-packet local-delivery test probes this set with a plain int,
        # skipping IPv4Address.__hash__/__eq__ frames on the datapath.
        self._local_values: set = set()
        self._transport_receive: Optional[Callable[[Packet], None]] = None
        self.forwarded_packets = 0
        self.delivered_packets = 0
        self.dropped_packets = 0

    # ------------------------------------------------------------------ #
    # configuration

    def add_interface(self, interface: Interface) -> Interface:
        """Attach an interface to this namespace.

        Raises:
            NamespaceError: on duplicate interface name or double-attach.
        """
        if interface.name in self._interfaces:
            raise NamespaceError(
                f"{self.name}: duplicate interface name {interface.name!r}"
            )
        if interface.namespace is not None:
            raise NamespaceError(
                f"{interface.name} is already attached to "
                f"{interface.namespace.name!r}"
            )
        interface.namespace = self
        self._interfaces[interface.name] = interface
        return interface

    def interface(self, name: str) -> Interface:
        """Look up an attached interface by name."""
        try:
            return self._interfaces[name]
        except KeyError:
            raise NamespaceError(f"{self.name}: no interface {name!r}") from None

    @property
    def interfaces(self) -> Dict[str, Interface]:
        """Name → interface map (a copy)."""
        return dict(self._interfaces)

    def register_address(self, address: IPv4Address, interface: Interface) -> None:
        """Record that ``address`` is local to this namespace."""
        self._local_addresses[address] = interface
        self._local_values.add(address._value)

    def is_local(self, address: IPv4Address) -> bool:
        """True if ``address`` belongs to this namespace (or is loopback)."""
        value = address._value
        return value in self._local_values or (value >> 24) == 127

    def any_local_address(self) -> IPv4Address:
        """Some address owned by this namespace (the first registered).

        Raises:
            NamespaceError: if no interface has an address yet.
        """
        for address in self._local_addresses:
            return address
        raise NamespaceError(f"{self.name}: no local addresses")

    def attach_transport(self, receive: Callable[[Packet], None]) -> None:
        """Wire the transport layer's receive entry point."""
        self._transport_receive = receive

    # ------------------------------------------------------------------ #
    # datapath

    def handle_packet(self, packet: Packet, in_interface: Interface) -> None:
        """Process a packet that arrived on ``in_interface``."""
        for hook in self.prerouting_hooks:
            hook(packet, in_interface)
        nat = self.nat
        if nat is not None:
            # Reverse-translate traffic returning to a NATed inner host
            # (Nat.translate_inbound inlined: one dict probe per packet).
            mapping = nat._inbound.get(
                (packet.protocol, packet.src._value, packet.sport,
                 packet.dport)
            )
            if mapping is not None:
                packet.dst, packet.dport = mapping
                nat.translations += 1
        # is_local() inlined on the int mirror — this runs per packet hop.
        value = packet.dst._value
        if value in self._local_values or (value >> 24) == 127:
            self._deliver_local(packet)
            return
        self._forward(packet)

    def originate(self, packet: Packet) -> None:
        """Send a packet created by this namespace's own transport layer."""
        value = packet.dst._value
        if value in self._local_values or (value >> 24) == 127:
            # Namespace-local connection: loop it back after the loopback
            # latency, never touching any interface.
            self.sim.schedule(self.loopback_latency, self._deliver_local, packet)
            return
        self._forward(packet, originated=True)

    def _forward(self, packet: Packet, originated: bool = False) -> None:
        route = self.routes.lookup_value(packet.dst._value)
        if route is None:
            self.dropped_packets += 1
            return
        if not originated:
            packet.ttl -= 1
            if packet.ttl <= 0:
                self.dropped_packets += 1
                return
            self.forwarded_packets += 1
        nat = self.nat
        if nat is not None and route.interface.name in nat._masquerade:
            # Membership pre-check hoisted from translate_outbound: most
            # shells forward through exactly one masqueraded egress, so the
            # other direction skips the call frame entirely.
            nat.translate_outbound(packet, route.interface)
        for hook in self.postrouting_hooks:
            hook(packet)
        if self.forwarding_delay > 0.0 and not originated:
            self.sim.schedule(self.forwarding_delay, route.interface.send, packet)
        else:
            route.interface.send(packet)

    def _deliver_local(self, packet: Packet) -> None:
        if self._transport_receive is None:
            self.dropped_packets += 1
            return
        self.delivered_packets += 1
        self._transport_receive(packet)

    def __repr__(self) -> str:
        return (
            f"<NetworkNamespace {self.name!r} "
            f"ifaces={sorted(self._interfaces)} "
            f"addrs={len(self._local_addresses)}>"
        )
