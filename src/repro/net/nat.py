"""Source NAT, as applied by every Mahimahi shell.

Each shell NATs traffic leaving its private namespace so that inner
addresses (carved from 100.64.0.0/10) never leak upstream. The
:class:`Nat` object attaches to the namespace doing the forwarding and
masquerades packets leaving through designated interfaces, rewriting the
source to that interface's own address and remembering the flow so replies
can be reverse-translated.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple, TYPE_CHECKING

from repro.errors import NetworkError
from repro.net.address import IPv4Address
from repro.net.interface import Interface
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.namespace import NetworkNamespace

_FIRST_NAT_PORT = 32768
_LAST_NAT_PORT = 60999

# Flow keys hash raw 32-bit address values rather than IPv4Address
# objects: NAT translation runs per packet per shell hop, and int tuple
# hashing skips the IPv4Address.__hash__/__eq__ frames on that path.
FlowKey = Tuple[str, int, int, int, int]


class Nat:
    """Masquerading source NAT for one namespace.

    Args:
        namespace: the forwarding namespace this NAT serves. The constructor
            installs itself as ``namespace.nat``.

    Call :meth:`masquerade_on` for each egress interface whose address
    should replace inner sources.
    """

    def __init__(self, namespace: "NetworkNamespace") -> None:
        self._namespace = namespace
        self._masquerade: Set[str] = set()
        # (proto, inner_src value, inner_sport, dst value, dport) -> port
        self._outbound: Dict[FlowKey, int] = {}
        # (proto, remote value, remote_port, nat_port) ->
        #     (inner_src, inner_sport)
        self._inbound: Dict[
            Tuple[str, int, int, int], Tuple[IPv4Address, int]
        ] = {}
        self._next_port = _FIRST_NAT_PORT
        self.translations = 0
        namespace.nat = self

    def masquerade_on(self, interface: Interface) -> None:
        """Enable masquerading for traffic leaving via ``interface``."""
        if not interface.addresses:
            raise NetworkError(
                f"cannot masquerade on {interface.name}: no address assigned"
            )
        self._masquerade.add(interface.name)

    def translate_outbound(self, packet: Packet, out_interface: Interface) -> None:
        """Rewrite the source of a packet being forwarded out ``out_interface``.

        Packets originated by this namespace itself, and packets leaving via
        non-masqueraded interfaces, pass through untouched.
        """
        if out_interface.name not in self._masquerade:
            return
        if self._namespace.is_local(packet.src):
            return
        external = out_interface.primary_address
        key: FlowKey = (packet.protocol, packet.src._value, packet.sport,
                        packet.dst._value, packet.dport)
        port = self._outbound.get(key)
        if port is None:
            port = self._allocate_port()
            self._outbound[key] = port
            self._inbound[
                (packet.protocol, packet.dst._value, packet.dport, port)
            ] = (packet.src, packet.sport)
        packet.src = external
        packet.sport = port
        self.translations += 1

    def translate_inbound(self, packet: Packet) -> None:
        """Reverse-translate a reply addressed to a masqueraded flow."""
        key = (packet.protocol, packet.src._value, packet.sport, packet.dport)
        mapping = self._inbound.get(key)
        if mapping is None:
            return
        packet.dst, packet.dport = mapping
        self.translations += 1

    @property
    def active_flows(self) -> int:
        """Number of flows with live translations."""
        return len(self._outbound)

    def _allocate_port(self) -> int:
        if self._next_port > _LAST_NAT_PORT:
            raise NetworkError("NAT port range exhausted")
        port = self._next_port
        self._next_port += 1
        return port
