"""The packet model.

A :class:`Packet` is an IP datagram with the transport 4-tuple hoisted into
the packet itself (a standard simulator simplification: NAT and demux need
the ports, and keeping them at top level avoids reaching into opaque
payloads). The ``payload`` field carries a transport-specific segment object
(:class:`~repro.transport.tcp.TcpSegment`,
:class:`~repro.transport.udp.UdpDatagram`, ...) that the network layer never
inspects; only ``size`` matters to links and queues.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.net.address import IPv4Address

#: Ethernet-framed MTU used throughout, matching Mahimahi's traces (an MTU-
#: sized delivery opportunity covers one full-size packet).
MTU_BYTES = 1500

#: IPv4 header without options.
IP_HEADER_BYTES = 20

#: TCP header without options.
TCP_HEADER_BYTES = 20

#: UDP header.
UDP_HEADER_BYTES = 8

_packet_ids = itertools.count(1)


class Packet:
    """One IP datagram in flight.

    Attributes:
        src / dst: IP addresses (rewritten in place by NAT).
        sport / dport: transport ports (0 for port-less protocols).
        protocol: "tcp", "udp", or "icmp".
        payload: opaque transport segment; links treat it as ballast.
        size: total on-wire bytes including IP and transport headers.
        ttl: decremented on every forward; the packet is dropped at zero.
        uid: unique id for tracing and test assertions.
    """

    __slots__ = ("src", "dst", "sport", "dport", "protocol", "payload",
                 "size", "ttl", "uid", "_in_pool")

    def __init__(
        self,
        src: IPv4Address,
        dst: IPv4Address,
        sport: int,
        dport: int,
        protocol: str,
        payload: Any,
        size: int,
        ttl: int = 64,
    ) -> None:
        if size < IP_HEADER_BYTES:
            raise ValueError(f"packet smaller than an IP header: {size!r}")
        if size > MTU_BYTES:
            raise ValueError(f"packet exceeds MTU ({MTU_BYTES}): {size!r}")
        self.src = src
        self.dst = dst
        self.sport = sport
        self.dport = dport
        self.protocol = protocol
        self.payload = payload
        self.size = size
        self.ttl = ttl
        self.uid = next(_packet_ids)
        self._in_pool = False

    @property
    def flow(self) -> tuple:
        """The 5-tuple identifying this packet's flow."""
        return (self.protocol, self.src, self.sport, self.dst, self.dport)

    def reply_flow(self) -> tuple:
        """The 5-tuple a reply to this packet would carry."""
        return (self.protocol, self.dst, self.dport, self.src, self.sport)

    def __repr__(self) -> str:
        return (
            f"<Packet #{self.uid} {self.protocol} "
            f"{self.src}:{self.sport} -> {self.dst}:{self.dport} "
            f"{self.size}B ttl={self.ttl}>"
        )


class PacketPool:
    """Free lists of :class:`Packet` and TCP segment objects.

    One pool per simulator (stored as ``sim.packet_pool`` so parallel worlds
    never share mutable state). The TCP hot path allocates thousands of
    short-lived packet/segment pairs per page load; recycling them at the
    single terminal demux point (``TransportHost._receive_tcp``) skips both
    object construction and ``Packet.__init__``'s per-packet validation —
    the transport layer validates ``mss`` + headers against the MTU once
    per connection instead.

    The free lists are plain list attributes on purpose: the hot paths in
    :mod:`repro.transport.tcp` pop and re-stamp records inline rather than
    paying a method call per packet. The ``_in_pool`` flag on each pooled
    object makes recycling idempotent — a double recycle (or recycling an
    object already handed back) is a no-op rather than a corruption, and
    the flag is what the pool-reuse tests assert on.

    Lifecycle contract:

    * acquire (pop + re-stamp every slot, ``_in_pool = False``) only from a
      free list; a fresh construction is the fallback when the list is dry.
    * recycle only a packet that has reached its terminal consumer and
      whose payload has been fully copied out (the reassembly buffer slices
      pieces into new lists, so a delivered segment retains nothing).
    * dropped packets are *not* recycled — drops happen in many places
      (queues, loss pipes, TTL, downed interfaces) and chasing them all
      risks recycling a packet something still holds; the garbage collector
      handles the rare drop just fine.

    Under ``__debug__`` the pool also tracks which TCP packet uids are
    currently in flight (:meth:`mark_in_flight` on send,
    :meth:`mark_arrived` at the terminal demux), and :meth:`recycle`
    asserts the packet being handed back is not one of them — the runtime
    counterpart of mm-lint's REP008 use-after-recycle rule. Both markers
    return ``True`` so call sites can wrap them in ``assert`` and the
    bookkeeping vanishes entirely under ``python -O``. Dropped packets
    are never unmarked (drops are not recycled, so the stale uid can
    never trip the assert); the set grows with lifetime drops, which is
    acceptable for a debug aid.
    """

    __slots__ = ("packets", "segments", "_in_flight")

    def __init__(self) -> None:
        #: Free :class:`Packet` records, ready to re-stamp.
        self.packets: list = []
        #: Free ``TcpSegment`` records (typed loosely: the segment class
        #: lives in :mod:`repro.transport.tcp`, which imports this module).
        self.segments: list = []
        #: Debug-only: uids of TCP packets between send and terminal demux.
        self._in_flight: set = set()

    def acquire_tcp(
        self,
        src: IPv4Address,
        dst: IPv4Address,
        sport: int,
        dport: int,
        payload: Any,
        size: int,
    ) -> Packet:
        """Reference (cold-path) acquire: pooled TCP packet or a fresh one.

        Callers must guarantee ``size`` <= MTU; pooled reuse skips the
        constructor's validation (the fresh-construction fallback still
        validates).
        """
        packets = self.packets
        if packets:
            packet = packets.pop()
            packet._in_pool = False
            packet.src = src
            packet.dst = dst
            packet.sport = sport
            packet.dport = dport
            packet.protocol = "tcp"
            packet.payload = payload
            packet.size = size
            packet.ttl = 64
            packet.uid = next(_packet_ids)
            return packet
        return Packet(src, dst, sport, dport, "tcp", payload, size)

    def mark_in_flight(self, packet: Packet) -> bool:
        """Debug marker: this packet has been handed to the network."""
        self._in_flight.add(packet.uid)
        return True

    def mark_arrived(self, packet: Packet) -> bool:
        """Debug marker: this packet reached its terminal consumer."""
        self._in_flight.discard(packet.uid)
        return True

    def recycle(self, packet: Packet) -> None:
        """Hand a terminally-consumed packet back to the pool (idempotent)."""
        if packet._in_pool:
            return
        assert packet.uid not in self._in_flight, (
            f"recycling in-flight packet #{packet.uid}: it has not reached "
            "its terminal consumer, so something still holds it and the "
            "next acquire would re-stamp it underneath them"
        )
        packet._in_pool = True
        packet.payload = None
        self.packets.append(packet)


def tcp_packet(
    src: IPv4Address,
    dst: IPv4Address,
    sport: int,
    dport: int,
    payload: Any,
    data_len: int,
    options_len: int = 0,
) -> Packet:
    """Build a TCP packet; ``data_len`` is the payload byte count."""
    size = IP_HEADER_BYTES + TCP_HEADER_BYTES + options_len + data_len
    return Packet(src, dst, sport, dport, "tcp", payload, size)


def udp_packet(
    src: IPv4Address,
    dst: IPv4Address,
    sport: int,
    dport: int,
    payload: Any,
    data_len: int,
) -> Packet:
    """Build a UDP packet; ``data_len`` is the datagram byte count."""
    size = IP_HEADER_BYTES + UDP_HEADER_BYTES + data_len
    return Packet(src, dst, sport, dport, "udp", payload, size)
