"""Packet capture: tcpdump for the simulated substrate.

A :class:`PacketCapture` taps a namespace's prerouting hook (seeing every
packet that *enters* the namespace) and records a bounded trace of
:class:`CapturedPacket` entries plus per-flow statistics. Tests and
debugging sessions use it to answer "what actually crossed this
boundary?" without instrumenting the stack by hand.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, List, NamedTuple, Optional

from repro.net.namespace import NetworkNamespace
from repro.net.packet import Packet


class CapturedPacket(NamedTuple):
    """One observed packet (header summary, no payload retention)."""

    time: float
    src: str
    sport: int
    dst: str
    dport: int
    protocol: str
    size: int
    flags: str

    def __str__(self) -> str:
        flag_text = f" [{self.flags}]" if self.flags else ""
        return (f"{self.time:.6f} {self.protocol} "
                f"{self.src}:{self.sport} > {self.dst}:{self.dport} "
                f"len {self.size}{flag_text}")


class PacketCapture:
    """Observe packets entering one namespace.

    Args:
        namespace: the tap point.
        max_packets: retain at most this many entries (older kept,
            later dropped — counters keep counting).
        match: optional predicate on the Packet; non-matching packets are
            counted but not retained.
    """

    def __init__(
        self,
        namespace: NetworkNamespace,
        max_packets: int = 10_000,
        match: Optional[Callable[[Packet], bool]] = None,
    ) -> None:
        self.namespace = namespace
        self.max_packets = max_packets
        self.match = match
        self.packets: List[CapturedPacket] = []
        self.total_seen = 0
        self.total_bytes = 0
        self.by_protocol: Counter = Counter()
        self._stopped = False
        namespace.prerouting_hooks.append(self._observe)

    def _observe(self, packet: Packet, in_interface) -> None:
        if self._stopped:
            return
        self.total_seen += 1
        self.total_bytes += packet.size
        self.by_protocol[packet.protocol] += 1
        if self.match is not None and not self.match(packet):
            return
        if len(self.packets) >= self.max_packets:
            return
        flags = ""
        if packet.protocol == "tcp" and packet.payload is not None:
            flags = getattr(packet.payload, "flags", "")
        self.packets.append(CapturedPacket(
            self.namespace.sim.now,
            str(packet.src), packet.sport,
            str(packet.dst), packet.dport,
            packet.protocol, packet.size, flags,
        ))

    def stop(self) -> None:
        """Stop observing (retained entries stay available)."""
        self._stopped = True

    def flows(self) -> Dict[tuple, int]:
        """Packet counts per (src, sport, dst, dport, protocol) flow."""
        counts: Counter = Counter()
        for entry in self.packets:
            counts[(entry.src, entry.sport, entry.dst, entry.dport,
                    entry.protocol)] += 1
        return dict(counts)

    def dump(self, limit: int = 50) -> str:
        """tcpdump-style text of the first ``limit`` retained packets."""
        lines = [str(entry) for entry in self.packets[:limit]]
        if len(self.packets) > limit:
            lines.append(f"... ({len(self.packets) - limit} more retained, "
                         f"{self.total_seen} seen)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<PacketCapture ns={self.namespace.name!r} "
                f"seen={self.total_seen} retained={len(self.packets)}>")
