"""IPv4 addresses, CIDR networks, and the shell address allocator.

Mahimahi carves its point-to-point veth subnets out of the Carrier-Grade NAT
range ``100.64.0.0/10`` so that shell addresses never collide with real
traffic; :class:`AddressAllocator` reproduces that scheme, handing out /30
subnets (two usable host addresses) per shell, plus single addresses for
replay-server virtual interfaces.

Addresses are immutable, int-backed, hashable, and totally ordered, so they
work as dict keys throughout the substrate.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple, Tuple

from repro.errors import AddressError, AddressPoolExhausted

_MAX_IPV4 = 0xFFFFFFFF


class IPv4Address:
    """An immutable IPv4 address.

    Accepts dotted-quad strings or raw 32-bit integers:

        >>> IPv4Address("100.64.0.1") == IPv4Address(0x64400001)
        True
    """

    __slots__ = ("_value",)

    def __init__(self, value) -> None:
        if isinstance(value, IPv4Address):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value <= _MAX_IPV4:
                raise AddressError(f"integer out of IPv4 range: {value!r}")
            self._value = value
        elif isinstance(value, str):
            self._value = _parse_dotted_quad(value)
        else:
            raise AddressError(f"cannot make an IPv4Address from {value!r}")

    @property
    def value(self) -> int:
        """The address as a 32-bit integer."""
        return self._value

    def __int__(self) -> int:
        return self._value

    def __str__(self) -> str:
        v = self._value
        return f"{v >> 24 & 0xFF}.{v >> 16 & 0xFF}.{v >> 8 & 0xFF}.{v & 0xFF}"

    def __repr__(self) -> str:
        return f"IPv4Address({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Address):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other: "IPv4Address") -> bool:
        return self._value < other._value

    def __le__(self, other: "IPv4Address") -> bool:
        return self._value <= other._value

    def __hash__(self) -> int:
        return hash(self._value)

    def __add__(self, offset: int) -> "IPv4Address":
        return IPv4Address(self._value + offset)


def _parse_dotted_quad(text: str) -> int:
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise AddressError(f"not a dotted quad: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressError(f"non-numeric octet in {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


class IPv4Network:
    """A CIDR prefix such as ``100.64.0.0/10``.

    The network address is masked down on construction, so
    ``IPv4Network("10.1.2.3/24")`` equals ``IPv4Network("10.1.2.0/24")``.
    """

    __slots__ = ("_network", "_prefix_len", "_mask")

    def __init__(self, spec, prefix_len: int = None) -> None:
        if isinstance(spec, str) and prefix_len is None:
            if "/" not in spec:
                raise AddressError(f"missing prefix length in {spec!r}")
            addr_text, __, len_text = spec.partition("/")
            if not len_text.isdigit():
                raise AddressError(f"bad prefix length in {spec!r}")
            address = IPv4Address(addr_text)
            prefix_len = int(len_text)
        else:
            address = IPv4Address(spec)
            if prefix_len is None:
                raise AddressError("prefix_len required with a bare address")
        if not 0 <= prefix_len <= 32:
            raise AddressError(f"prefix length out of range: {prefix_len!r}")
        self._prefix_len = prefix_len
        # Precomputed once: containment checks sit on the per-packet routing
        # path, where recomputing the mask per lookup shows up in profiles.
        if prefix_len == 0:
            self._mask = 0
        else:
            self._mask = (_MAX_IPV4 << (32 - prefix_len)) & _MAX_IPV4
        self._network = address.value & self._mask

    def netmask_int(self) -> int:
        """The netmask as a 32-bit integer."""
        return self._mask

    @property
    def network_address(self) -> IPv4Address:
        """First address of the prefix."""
        return IPv4Address(self._network)

    @property
    def prefix_len(self) -> int:
        """Number of prefix bits."""
        return self._prefix_len

    @property
    def num_addresses(self) -> int:
        """Total addresses covered, including network/broadcast."""
        return 1 << (32 - self._prefix_len)

    def __contains__(self, address) -> bool:
        addr = IPv4Address(address)
        return (addr.value & self._mask) == self._network

    def contains_int(self, value: int) -> bool:
        """Fast containment check on a raw integer address."""
        return (value & self._mask) == self._network

    def hosts(self) -> Iterator[IPv4Address]:
        """Iterate the usable host addresses (skips network & broadcast for
        prefixes shorter than /31; /31 and /32 yield everything)."""
        if self._prefix_len >= 31:
            for offset in range(self.num_addresses):
                yield IPv4Address(self._network + offset)
        else:
            for offset in range(1, self.num_addresses - 1):
                yield IPv4Address(self._network + offset)

    def subnets(self, new_prefix_len: int) -> Iterator["IPv4Network"]:
        """Iterate this network's subnets of the given (longer) prefix."""
        if new_prefix_len < self._prefix_len or new_prefix_len > 32:
            raise AddressError(
                f"cannot split /{self._prefix_len} into /{new_prefix_len}"
            )
        step = 1 << (32 - new_prefix_len)
        for base in range(self._network, self._network + self.num_addresses, step):
            yield IPv4Network(IPv4Address(base), new_prefix_len)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Network):
            return (
                self._network == other._network
                and self._prefix_len == other._prefix_len
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._network, self._prefix_len))

    def __str__(self) -> str:
        return f"{self.network_address}/{self._prefix_len}"

    def __repr__(self) -> str:
        return f"IPv4Network({str(self)!r})"


class Endpoint(NamedTuple):
    """An (address, port) pair — one side of a transport connection."""

    address: IPv4Address
    port: int

    def __str__(self) -> str:
        return f"{self.address}:{self.port}"


class AddressAllocator:
    """Hands out /30 veth subnets and single host addresses.

    Mirrors Mahimahi's use of ``100.64.0.0/10``: each shell gets a /30 whose
    two usable addresses become the egress (parent side) and ingress (child
    side) veth endpoints. ReplayShell additionally allocates one address per
    recorded origin IP when asked for a standalone address.
    """

    DEFAULT_POOL = "100.64.0.0/10"

    def __init__(self, pool: str = DEFAULT_POOL) -> None:
        self._pool = IPv4Network(pool)
        self._subnet_iter = self._pool.subnets(30)
        self._allocated_subnets = 0

    @property
    def pool(self) -> IPv4Network:
        """The pool this allocator carves from."""
        return self._pool

    @property
    def allocated_subnets(self) -> int:
        """How many /30s have been handed out."""
        return self._allocated_subnets

    def allocate_subnet(self) -> Tuple[IPv4Network, IPv4Address, IPv4Address]:
        """Allocate a fresh /30; returns (network, first_host, second_host).

        Raises:
            AddressPoolExhausted: when the pool has no /30s left.
        """
        try:
            subnet = next(self._subnet_iter)
        except StopIteration:
            raise AddressPoolExhausted(
                f"no /30 subnets left in {self._pool}"
            ) from None
        self._allocated_subnets += 1
        hosts = list(subnet.hosts())
        return subnet, hosts[0], hosts[1]
