"""Simulated network substrate.

This package replaces the Linux kernel facilities Mahimahi uses — network
namespaces, veth pairs, routing, NAT — with deterministic in-process
equivalents. A :class:`~repro.net.namespace.NetworkNamespace` holds
interfaces and a routing table; :class:`~repro.net.veth.VethPair` connects
two namespaces through a pair of :class:`~repro.net.pipe.PacketPipe` objects
(where the link emulators from :mod:`repro.linkem` plug in); and
:class:`~repro.net.nat.Nat` provides the source NAT a Mahimahi shell applies
to traffic leaving its private namespace.
"""

from repro.net.address import (
    AddressAllocator,
    Endpoint,
    IPv4Address,
    IPv4Network,
)
from repro.net.interface import Interface
from repro.net.namespace import NetworkNamespace
from repro.net.nat import Nat
from repro.net.packet import IP_HEADER_BYTES, MTU_BYTES, Packet
from repro.net.pipe import InstantPipe, PacketPipe
from repro.net.routing import Route, RoutingTable
from repro.net.veth import VethPair

__all__ = [
    "AddressAllocator",
    "Endpoint",
    "IP_HEADER_BYTES",
    "IPv4Address",
    "IPv4Network",
    "InstantPipe",
    "Interface",
    "MTU_BYTES",
    "Nat",
    "NetworkNamespace",
    "Packet",
    "PacketPipe",
    "Route",
    "RoutingTable",
    "VethPair",
]
