"""Virtual ethernet pairs.

A :class:`VethPair` creates one interface in each of two namespaces and
wires them together through a pair of one-directional
:class:`~repro.net.pipe.PacketPipe` objects. With the default
:class:`~repro.net.pipe.InstantPipe` this is a bare veth; a Mahimahi shell
passes its emulation pipes (delay, trace) instead, which is how DelayShell
and LinkShell interpose on every packet crossing their boundary.
"""

from __future__ import annotations

from typing import Optional

from repro.net.interface import Interface
from repro.net.namespace import NetworkNamespace
from repro.net.pipe import InstantPipe, PacketPipe
from repro.sim.simulator import Simulator


class VethPair:
    """Two interfaces in different namespaces joined by pipes.

    Args:
        sim: the simulator.
        ns_a / ns_b: namespaces for each end.
        name_a / name_b: interface names created in each namespace.
        pipe_ab: pipe carrying packets from a to b (default instant).
        pipe_ba: pipe carrying packets from b to a (default instant).

    The conventional orientation in this codebase: ``a`` is the *outer*
    (parent) side, ``b`` the *inner* (child / shell) side, so ``pipe_ab`` is
    the downlink and ``pipe_ba`` the uplink — matching Mahimahi's trace
    terminology where the downlink carries traffic toward the application.
    """

    def __init__(
        self,
        sim: Simulator,
        ns_a: NetworkNamespace,
        ns_b: NetworkNamespace,
        name_a: str,
        name_b: str,
        pipe_ab: Optional[PacketPipe] = None,
        pipe_ba: Optional[PacketPipe] = None,
    ) -> None:
        self.sim = sim
        self.pipe_ab = pipe_ab if pipe_ab is not None else InstantPipe(sim)
        self.pipe_ba = pipe_ba if pipe_ba is not None else InstantPipe(sim)
        self.iface_a = Interface(name_a)
        self.iface_b = Interface(name_b)
        ns_a.add_interface(self.iface_a)
        ns_b.add_interface(self.iface_b)
        self.iface_a.attach_tx(self.pipe_ab)
        self.iface_b.attach_tx(self.pipe_ba)
        self.pipe_ab.attach_sink(self.iface_b.receive)
        self.pipe_ba.attach_sink(self.iface_a.receive)

    def __repr__(self) -> str:
        return f"<VethPair {self.iface_a!r} <-> {self.iface_b!r}>"
