"""Network interfaces.

An :class:`Interface` lives inside exactly one namespace, owns zero or more
addresses, and transmits through a :class:`~repro.net.pipe.PacketPipe`
attached by the veth pair that created it. ReplayShell's per-origin virtual
interfaces are plain :class:`Interface` objects with no pipe at all — they
exist only to make an address local to the namespace, exactly like a Linux
dummy interface with an address assigned.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.errors import InterfaceError
from repro.net.address import IPv4Address, IPv4Network
from repro.net.packet import Packet
from repro.net.pipe import PacketPipe

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.namespace import NetworkNamespace


class Interface:
    """A simulated network interface.

    Attributes:
        name: interface name, unique within its namespace.
        namespace: owning namespace (set when attached).
        up: administrative state; a downed interface drops everything.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.namespace: Optional["NetworkNamespace"] = None
        self.up = True
        self._addresses: List[IPv4Address] = []
        self._connected: List[IPv4Network] = []
        self._tx: Optional[PacketPipe] = None
        self.tx_packets = 0
        self.rx_packets = 0
        self.tx_bytes = 0
        self.rx_bytes = 0
        self.drops = 0

    @property
    def addresses(self) -> List[IPv4Address]:
        """Addresses assigned to this interface."""
        return list(self._addresses)

    @property
    def primary_address(self) -> IPv4Address:
        """The first assigned address.

        Raises:
            InterfaceError: if no address is assigned.
        """
        if not self._addresses:
            raise InterfaceError(f"{self.name}: no address assigned")
        return self._addresses[0]

    def add_address(self, address, prefix_len: int = 32) -> IPv4Address:
        """Assign an address; installs a connected route in the namespace.

        Raises:
            InterfaceError: if the interface is not attached to a namespace.
        """
        if self.namespace is None:
            raise InterfaceError(
                f"{self.name}: attach to a namespace before adding addresses"
            )
        addr = address if isinstance(address, IPv4Address) else IPv4Address(address)
        self._addresses.append(addr)
        network = IPv4Network(addr, prefix_len)
        self._connected.append(network)
        self.namespace.register_address(addr, self)
        if prefix_len < 32:
            self.namespace.routes.add(network, self)
        return addr

    def attach_tx(self, pipe: PacketPipe) -> None:
        """Attach the transmit pipe (done by the veth pair)."""
        self._tx = pipe

    @property
    def has_carrier(self) -> bool:
        """True when a transmit pipe is attached (the cable is plugged in)."""
        return self._tx is not None

    def send(self, packet: Packet) -> None:
        """Transmit a packet out this interface.

        Silently drops when the interface is down or has no carrier — the
        same behaviour as a real NIC, and what lets tests yank cables.
        """
        if not self.up or self._tx is None:
            self.drops += 1
            return
        self.tx_packets += 1
        self.tx_bytes += packet.size
        self._tx.send(packet)

    def receive(self, packet: Packet) -> None:
        """Entry point for packets arriving from the wire."""
        if not self.up or self.namespace is None:
            self.drops += 1
            return
        self.rx_packets += 1
        self.rx_bytes += packet.size
        self.namespace.handle_packet(packet, self)

    def __repr__(self) -> str:
        addrs = ",".join(str(a) for a in self._addresses) or "-"
        ns = self.namespace.name if self.namespace else "detached"
        return f"<Interface {ns}/{self.name} {addrs}>"
