"""Packet pipes: the slot where link emulation plugs into a veth pair.

A :class:`PacketPipe` carries packets in one direction between the two ends
of a veth pair. The base pipe delivers instantly; :mod:`repro.linkem`
provides pipes that add fixed delay (DelayShell) or trace-driven pacing
(LinkShell). Pipes are composable by chaining: the output of one pipe can be
the input of the next, exactly as Mahimahi shells nest.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.packet import Packet
from repro.sim.simulator import Simulator

DeliverFn = Callable[[Packet], None]


class PacketPipe:
    """Abstract one-directional packet conduit.

    Subclasses implement :meth:`send`; delivery happens by calling
    ``self.deliver(packet)`` (possibly later in virtual time). The sink is
    attached once, by the veth pair or by a downstream pipe.
    """

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._deliver: Optional[DeliverFn] = None
        self.packets_sent = 0
        self.packets_delivered = 0
        self.packets_dropped = 0
        self.bytes_delivered = 0

    @property
    def sim(self) -> Simulator:
        """The simulator this pipe schedules on."""
        return self._sim

    def attach_sink(self, deliver: DeliverFn) -> None:
        """Set the delivery callback (the far interface or the next pipe)."""
        self._deliver = deliver

    def send(self, packet: Packet) -> None:
        """Accept a packet for transmission. Subclasses must override."""
        raise NotImplementedError

    def deliver(self, packet: Packet) -> None:
        """Hand a packet to the attached sink (subclasses call this)."""
        if self._deliver is None:
            # A pipe with no sink is a black hole: count and drop. This is
            # what a half-configured veth does, and it must not crash the sim.
            self.packets_dropped += 1
            return
        self.packets_delivered += 1
        self.bytes_delivered += packet.size
        self._deliver(packet)


class InstantPipe(PacketPipe):
    """Delivers every packet in the same virtual instant it was sent.

    This is the default pipe of a bare veth pair — the in-simulation
    equivalent of kernel forwarding with no emulation attached. Delivery
    is deferred by one (zero-duration) event so that two stacks conversing
    across a bare veth unwind through the event loop instead of recursing
    into each other's call stacks.
    """

    def send(self, packet: Packet) -> None:
        self.packets_sent += 1
        self._sim.call_soon(self.deliver, packet)


class ChainPipe(PacketPipe):
    """Composes several pipes into one, in order.

    ``ChainPipe([a, b])`` feeds packets into ``a``, whose output goes into
    ``b``, whose output goes to the chain's sink. This is how nested shells
    stack their emulation on a single path.
    """

    def __init__(self, sim: Simulator, stages: list) -> None:
        super().__init__(sim)
        if not stages:
            raise ValueError("ChainPipe needs at least one stage")
        self._stages = list(stages)
        for upstream, downstream in zip(self._stages, self._stages[1:]):
            upstream.attach_sink(downstream.send)
        self._stages[-1].attach_sink(self.deliver)

    @property
    def stages(self) -> list:
        """The component pipes, first to last."""
        return list(self._stages)

    def send(self, packet: Packet) -> None:
        self.packets_sent += 1
        self._stages[0].send(packet)
