"""Per-namespace routing tables with longest-prefix match.

Routes map destination prefixes to an output interface. Because every link
in the substrate is a point-to-point veth, a route never needs a next-hop
address — the far end of the out-interface is always the next hop — but we
keep an optional ``via`` field for documentation and table dumps.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, TYPE_CHECKING

from repro.errors import RoutingError
from repro.net.address import IPv4Address, IPv4Network

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.interface import Interface


class Route(NamedTuple):
    """One routing-table entry."""

    prefix: IPv4Network
    interface: "Interface"
    via: Optional[IPv4Address]

    def __str__(self) -> str:
        via = f" via {self.via}" if self.via is not None else ""
        return f"{self.prefix} dev {self.interface.name}{via}"


class RoutingTable:
    """Longest-prefix-match routing table.

    Routes are kept sorted by descending prefix length, so lookup scans find
    the most specific match first. Tables here are tiny (a handful of
    entries per namespace), so a scan beats fancier structures — but the
    scan still runs per forwarded packet, so resolved lookups are memoised
    in an int-keyed cache that add/remove invalidate. The active destination
    set of a simulation is small (one entry per peer address), so the cache
    stays tiny too.
    """

    def __init__(self) -> None:
        self._routes: List[Route] = []
        self._cache: Dict[int, Route] = {}

    def add(
        self,
        prefix,
        interface: "Interface",
        via: Optional[IPv4Address] = None,
    ) -> Route:
        """Install a route for ``prefix`` (string or IPv4Network)."""
        if not isinstance(prefix, IPv4Network):
            prefix = IPv4Network(prefix)
        route = Route(prefix, interface, via)
        self._routes.append(route)
        self._routes.sort(key=lambda r: r.prefix.prefix_len, reverse=True)
        self._cache.clear()
        return route

    def add_default(
        self, interface: "Interface", via: Optional[IPv4Address] = None
    ) -> Route:
        """Install a default route (0.0.0.0/0)."""
        return self.add(IPv4Network("0.0.0.0/0"), interface, via)

    def remove(self, route: Route) -> None:
        """Remove a previously added route."""
        try:
            self._routes.remove(route)
        except ValueError:
            raise RoutingError(f"route not in table: {route}") from None
        self._cache.clear()

    def lookup_value(self, value: int) -> Optional[Route]:
        """Most specific route for a raw 32-bit destination, or None.

        The per-packet fast path: one dict probe when the destination has
        been routed before, one table scan (then memoised) when not.
        """
        route = self._cache.get(value)
        if route is not None:
            return route
        for route in self._routes:
            prefix = route.prefix
            if (value & prefix._mask) == prefix._network:
                self._cache[value] = route
                return route
        return None

    def lookup(self, destination) -> Route:
        """Return the most specific route for ``destination``.

        Raises:
            RoutingError: if no route (not even a default) matches.
        """
        addr = destination if isinstance(destination, IPv4Address) \
            else IPv4Address(destination)
        route = self.lookup_value(addr._value)
        if route is None:
            raise RoutingError(f"no route to {addr}")
        return route

    def try_lookup(self, destination) -> Optional[Route]:
        """Like :meth:`lookup` but returns None instead of raising."""
        addr = destination if isinstance(destination, IPv4Address) \
            else IPv4Address(destination)
        return self.lookup_value(addr._value)

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self):
        return iter(self._routes)

    def dump(self) -> str:
        """Human-readable table, one route per line (like ``ip route``)."""
        return "\n".join(str(route) for route in self._routes)
