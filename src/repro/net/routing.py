"""Per-namespace routing tables with longest-prefix match.

Routes map destination prefixes to an output interface. Because every link
in the substrate is a point-to-point veth, a route never needs a next-hop
address — the far end of the out-interface is always the next hop — but we
keep an optional ``via`` field for documentation and table dumps.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, TYPE_CHECKING

from repro.errors import RoutingError
from repro.net.address import IPv4Address, IPv4Network

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.interface import Interface


class Route(NamedTuple):
    """One routing-table entry."""

    prefix: IPv4Network
    interface: "Interface"
    via: Optional[IPv4Address]

    def __str__(self) -> str:
        via = f" via {self.via}" if self.via is not None else ""
        return f"{self.prefix} dev {self.interface.name}{via}"


class RoutingTable:
    """Longest-prefix-match routing table.

    Routes are kept sorted by descending prefix length, so lookup scans find
    the most specific match first. Tables here are tiny (a handful of
    entries per namespace), so a scan beats fancier structures.
    """

    def __init__(self) -> None:
        self._routes: List[Route] = []

    def add(
        self,
        prefix,
        interface: "Interface",
        via: Optional[IPv4Address] = None,
    ) -> Route:
        """Install a route for ``prefix`` (string or IPv4Network)."""
        if not isinstance(prefix, IPv4Network):
            prefix = IPv4Network(prefix)
        route = Route(prefix, interface, via)
        self._routes.append(route)
        self._routes.sort(key=lambda r: r.prefix.prefix_len, reverse=True)
        return route

    def add_default(
        self, interface: "Interface", via: Optional[IPv4Address] = None
    ) -> Route:
        """Install a default route (0.0.0.0/0)."""
        return self.add(IPv4Network("0.0.0.0/0"), interface, via)

    def remove(self, route: Route) -> None:
        """Remove a previously added route."""
        try:
            self._routes.remove(route)
        except ValueError:
            raise RoutingError(f"route not in table: {route}") from None

    def lookup(self, destination) -> Route:
        """Return the most specific route for ``destination``.

        Raises:
            RoutingError: if no route (not even a default) matches.
        """
        addr = destination if isinstance(destination, IPv4Address) \
            else IPv4Address(destination)
        value = addr.value
        for route in self._routes:
            if route.prefix.contains_int(value):
                return route
        raise RoutingError(f"no route to {addr}")

    def try_lookup(self, destination) -> Optional[Route]:
        """Like :meth:`lookup` but returns None instead of raising."""
        try:
            return self.lookup(destination)
        except RoutingError:
            return None

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self):
        return iter(self._routes)

    def dump(self) -> str:
        """Human-readable table, one route per line (like ``ip route``)."""
        return "\n".join(str(route) for route in self._routes)
