"""The browser model: dependency-graph page loads with per-origin pools.

Mahimahi measures applications — overwhelmingly browsers — so the
reproduction needs a browser whose page load time responds to the network
the way real ones do. :class:`~repro.browser.engine.Browser` implements
the load loop that drives every figure:

* DNS resolution per origin (cached within a load);
* up to 6 parallel persistent connections per origin — the constraint
  that makes multi-origin preservation matter (Table 2, Figure 3);
* resource discovery through the page's dependency graph: fetching and
  parsing the HTML reveals stylesheets/scripts/images, which reveal
  fonts and XHRs, giving page loads their serial critical path;
* per-resource compute (parse/execute/decode) scaled by the host
  machine's profile — the jitter source behind Table 1.

Pages are :class:`~repro.browser.resources.PageModel` dependency graphs;
:mod:`~repro.browser.html` can render a page's root document as real HTML
and scan it back (used by the corpus generator and the record path).
"""

from repro.browser.config import BrowserConfig
from repro.browser.engine import Browser, PageLoadResult
from repro.browser.resources import PageModel, Resource, Url

__all__ = [
    "Browser",
    "BrowserConfig",
    "PageLoadResult",
    "PageModel",
    "Resource",
    "Url",
]
