"""The browser engine: load a page, report its page load time.

The load loop mirrors what a 2014-era browser does on navigation:

1. after a small navigation delay, fetch the root HTML;
2. for each origin encountered, resolve it once via DNS and open up to
   ``max_connections_per_origin`` persistent connections, assigning queued
   requests to idle connections FIFO;
3. when a response completes, charge the resource's compute cost (scaled
   and jittered by the host machine profile), then enqueue its children;
4. the load finishes — onload, the paper's page load time — when no
   resource remains outstanding.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.browser.config import BrowserConfig
from repro.browser.resources import PageModel, Resource, Url
from repro.core.machine import HostMachine
from repro.dns.resolver import StubResolver
from repro.errors import BrowserError, DnsError
from repro.http.client import FailableCallback, HttpClient
from repro.http.message import Headers, HttpRequest, HttpResponse
from repro.net.address import Endpoint, IPv4Address
from repro.sim.simulator import Simulator
from repro.transport.host import TransportHost


class PageLoadResult:
    """Outcome of one page load."""

    def __init__(self, page: PageModel, started_at: float) -> None:
        self.page = page
        self.started_at = started_at
        self.finished_at: Optional[float] = None
        self.resources_loaded = 0
        self.resources_failed = 0
        self.bytes_downloaded = 0
        self.connections_opened = 0
        self.dns_lookups = 0
        self.errors: List[str] = []
        #: Structured failures: (url, exception) per failed fetch. The
        #: exceptions are the client's typed errors (ResetMidTransfer,
        #: TruncatedBody, DnsError...), picklable across ParallelRunner
        #: workers, and what measure.robustness classifies.
        self.failures: List[Tuple[str, Exception]] = []
        # url text -> (request_enqueued, response_done) in sim time.
        self.timings: Dict[str, Tuple[float, float]] = {}
        #: The trial's MetricsRegistry (attached by measure.runner.run_trial
        #: when the simulator was instrumented; None otherwise).
        self.metrics = None

    @property
    def complete(self) -> bool:
        """True once onload has fired."""
        return self.finished_at is not None

    @property
    def page_load_time(self) -> float:
        """Seconds from navigation to onload.

        Raises:
            BrowserError: if the load has not finished.
        """
        if self.finished_at is None:
            raise BrowserError("page load has not completed")
        return self.finished_at - self.started_at

    def __repr__(self) -> str:
        state = (
            f"PLT={self.page_load_time * 1000:.0f}ms" if self.complete
            else "loading"
        )
        return (
            f"<PageLoadResult {self.page.name!r} {state} "
            f"loaded={self.resources_loaded} failed={self.resources_failed}>"
        )


class Browser:
    """A browser living in one namespace.

    Args:
        sim: the simulator.
        transport: the namespace's transport host.
        resolver: DNS server endpoint (ReplayShell's or the live web's).
        config: browser tunables.
        machine: host machine scaling compute costs (optional).
    """

    def __init__(
        self,
        sim: Simulator,
        transport: TransportHost,
        resolver: Endpoint,
        config: Optional[BrowserConfig] = None,
        machine: Optional[HostMachine] = None,
    ) -> None:
        self.sim = sim
        self.transport = transport
        self.config = config if config is not None else BrowserConfig()
        self.machine = machine
        local = transport.namespace.any_local_address()
        self.resolver = StubResolver(
            sim, transport, local, resolver,
            timeout=self.config.dns_timeout,
            retries=self.config.dns_retries,
        )

    def compute_time(self, base: float, key: Optional[str] = None) -> float:
        """Apply the machine profile (if any) to a compute cost."""
        if self.machine is not None:
            return self.machine.compute_time(base, key)
        return base

    def load(
        self,
        page: PageModel,
        on_complete: Optional[Callable[[PageLoadResult], None]] = None,
    ) -> PageLoadResult:
        """Begin loading ``page``; returns the (live) result object.

        The result fills in as the simulation runs; ``on_complete`` fires
        at onload. Run the simulator (e.g. ``sim.run_until(lambda:
        result.complete)``) to make progress.
        """
        result = PageLoadResult(page, self.sim.now)
        load = _PageLoad(self, page, result, on_complete)
        self.sim.schedule(
            self.compute_time(self.config.start_delay, key="nav-start"),
            load.start,
        )
        return result


class _PageLoad:
    """State of one in-flight page load."""

    def __init__(
        self,
        browser: Browser,
        page: PageModel,
        result: PageLoadResult,
        on_complete: Optional[Callable[[PageLoadResult], None]],
    ) -> None:
        self.browser = browser
        self.page = page
        self.result = result
        self.on_complete = on_complete
        self._outstanding = 0
        self._seen: set = set()
        self._hosts: Dict[tuple, _HostEntry] = {}
        self._pools: Dict[tuple, _EndpointPool] = {}
        self._finished = False
        # Resource-scheduler state: low-priority ("delayable") requests
        # beyond the cap wait here until an in-flight one completes. The
        # cap binds only while render-critical (non-delayable) requests
        # are outstanding, as in Chrome's ResourceScheduler; once the
        # critical work drains, images go wide open.
        self._delayable_in_flight = 0
        self._nondelayable_in_flight = 0
        self._delayable_queue: Deque[Resource] = deque()
        # Observability: one waterfall per load plus a per-origin in-flight
        # series, all observer-owned state (zero observer effect).
        registry = browser.sim.metrics
        self._obs_registry = registry
        if registry is not None:
            self._obs_waterfall = registry.waterfall(f"browser.{page.name}")
            self._obs_entries: Dict[int, object] = {}
            self._obs_inflight: Dict[str, int] = {}
        else:
            self._obs_waterfall = None

    def start(self) -> None:
        self._fetch(self.page.root)

    # ------------------------------------------------------------------ #
    # observability (reads sim state, appends to registry — never schedules)

    def obs_entry(self, resource: Resource):
        """The resource's waterfall entry (None when uninstrumented)."""
        if self._obs_waterfall is None:
            return None
        return self._obs_entries.get(id(resource))

    def _obs_inflight_delta(self, resource: Resource, delta: int) -> None:
        host = resource.url.host
        count = self._obs_inflight.get(host, 0) + delta
        self._obs_inflight[host] = count
        self._obs_registry.timeseries(f"browser.inflight.{host}").record(
            self.browser.sim.now, count
        )

    def obs_finish(self, timing, conn, fresh: bool, response) -> None:
        """Fill the transport/transfer phases of one waterfall entry.

        HAR convention: connection setup (TCP connect, TLS) is charged to
        the resource that triggered the connection (``fresh``); reusers
        show those phases as not-applicable.
        """
        if fresh:
            created = getattr(conn, "created_at", None)
            ready = getattr(conn, "ready_at", None)
            established = getattr(getattr(conn, "conn", None),
                                  "established_at", None)
            if created is not None and ready is not None:
                if established is not None and established >= created:
                    timing.connect = established - created
                    if ready > established:
                        timing.tls = ready - established
                else:
                    timing.connect = ready - created
        last = getattr(conn, "last_timing", None)
        if last is not None:
            sent_at, first_byte_at, done_at = last
            if timing.issued >= 0.0:
                # Time spent connecting is already charged to the
                # connect/TLS phases; waiting starts once the connection
                # is usable.
                wait_from = timing.issued
                ready = getattr(conn, "ready_at", None)
                if ready is not None and ready > wait_from:
                    wait_from = ready
                timing.send_wait = max(0.0, sent_at - wait_from)
            timing.ttfb = first_byte_at - sent_at
            timing.download = done_at - first_byte_at
        timing.size = response.body.length

    # ------------------------------------------------------------------ #

    @staticmethod
    def _is_delayable(resource: Resource) -> bool:
        """Low-priority kinds a browser's scheduler holds back."""
        return resource.kind in ("image", "other")

    def _fetch(self, resource: Resource) -> None:
        if id(resource) in self._seen:
            return
        self._seen.add(id(resource))
        self._outstanding += 1
        self.result.timings[str(resource.url)] = (self.browser.sim.now, -1.0)
        if self._obs_waterfall is not None:
            self._obs_entries[id(resource)] = self._obs_waterfall.start(
                str(resource.url), resource.kind, self.browser.sim.now
            )
        if self._is_delayable(resource):
            limit = self.browser.config.max_delayable_in_flight
            if (self._nondelayable_in_flight > 0
                    and self._delayable_in_flight >= limit):
                self._delayable_queue.append(resource)
                return
            self._delayable_in_flight += 1
        else:
            self._nondelayable_in_flight += 1
        self._dispatch(resource)

    def _pump_delayables(self) -> None:
        """Release queued delayable requests as the scheduler allows."""
        limit = self.browser.config.max_delayable_in_flight
        while self._delayable_queue:
            if (self._nondelayable_in_flight > 0
                    and self._delayable_in_flight >= limit):
                return
            self._delayable_in_flight += 1
            self._dispatch(self._delayable_queue.popleft())

    def _dispatch(self, resource: Resource) -> None:
        # One DNS resolution per hostname; one 6-connection pool per
        # hostname+resolved endpoint (browsers key pools by host, so
        # domain sharding keeps its parallelism even when every hostname
        # resolves to one replay IP — as in the paper's Chrome runs).
        if self._obs_registry is not None:
            self._obs_inflight_delta(resource, +1)
        host_key = (resource.url.scheme, resource.url.host, resource.url.port)
        entry = self._hosts.get(host_key)
        if entry is None:
            entry = _HostEntry(self, resource.url,
                               obs_owner=self.obs_entry(resource))
            self._hosts[host_key] = entry
        entry.enqueue(resource)

    def endpoint_pool(
        self, host: str, endpoint: Endpoint, tls: bool
    ) -> "_EndpointPool":
        """The connection pool for one hostname at its resolved endpoint."""
        key = (host, endpoint.address, endpoint.port, tls)
        pool = self._pools.get(key)
        if pool is None:
            pool = _EndpointPool(self, endpoint, tls)
            self._pools[key] = pool
        return pool

    def resource_done(self, resource: Resource, response: Optional[HttpResponse]) -> None:
        """A response arrived (or the fetch failed: response None)."""
        if self._obs_registry is not None:
            self._obs_inflight_delta(resource, -1)
        if self._is_delayable(resource):
            self._delayable_in_flight -= 1
        else:
            self._nondelayable_in_flight -= 1
        self._pump_delayables()
        if response is not None:
            self.result.resources_loaded += 1
            self.result.bytes_downloaded += response.body.length
            parse = resource.parse_cost
            if parse <= 0.0:
                parse = self.browser.config.parse_cost(
                    resource.kind, resource.size
                )
            delay = self.browser.compute_time(
                parse, key=f"parse:{resource.url}")
            timing = self.obs_entry(resource)
            if timing is not None:
                timing.compute = delay
            # Documents are parsed incrementally: references are
            # discovered *during* the parse, not in one burst at its end.
            # Spreading child fetches over the parse window reproduces the
            # request pacing of a streaming HTML parser (and without it,
            # synchronized request bursts self-inflict queueing no real
            # browser exhibits).
            children = resource.children
            if resource.kind == "html" and len(children) > 1:
                for index, child in enumerate(children):
                    at = delay * (index + 1) / (len(children) + 1)
                    self.browser.sim.schedule(at, self._fetch, child)
                self.browser.sim.schedule(
                    delay, self._processed, resource, False
                )
            else:
                self.browser.sim.schedule(
                    delay, self._processed, resource, True
                )
        else:
            self.result.resources_failed += 1
            timing = self.obs_entry(resource)
            if timing is not None:
                timing.failed = True
                timing.finished = self.browser.sim.now
            self._complete_one(resource)

    def _processed(self, resource: Resource, fetch_children: bool) -> None:
        started = self.result.timings[str(resource.url)][0]
        self.result.timings[str(resource.url)] = (started, self.browser.sim.now)
        timing = self.obs_entry(resource)
        if timing is not None:
            timing.finished = self.browser.sim.now
        if fetch_children:
            for child in resource.children:
                self._fetch(child)
        self._complete_one(resource)

    def _complete_one(self, resource: Resource) -> None:
        self._outstanding -= 1
        if self._outstanding == 0 and not self._finished:
            self._finished = True
            self.result.finished_at = self.browser.sim.now
            for pool in self._pools.values():
                pool.shutdown()
            if self.on_complete is not None:
                self.on_complete(self.result)

    def fail_resource(
        self, resource: Resource, message, exc: Optional[Exception] = None
    ) -> None:
        """Record a failure and count the resource as finished.

        ``message`` may be an Exception; the typed failure then lands in
        ``result.failures`` while ``result.errors`` keeps its flat string
        form.
        """
        if isinstance(message, Exception):
            if exc is None:
                exc = message
            message = str(message)
        self.result.errors.append(f"{resource.url}: {message}")
        if exc is not None:
            self.result.failures.append((str(resource.url), exc))
        timing = self.obs_entry(resource)
        if timing is not None:
            timing.error = message
        self.resource_done(resource, None)


class _HostEntry:
    """Per-hostname DNS state: resolve once, then route to endpoint pools."""

    def __init__(
        self, load: _PageLoad, sample_url: Url, obs_owner=None
    ) -> None:
        self.load = load
        self.url = sample_url
        self.address: Optional[IPv4Address] = None
        self.failed: Optional[str] = None
        self.failed_exc: Optional[Exception] = None
        self._waiting: Deque[Resource] = deque()
        # HAR convention: the lookup is charged to the resource that
        # triggered it (``obs_owner`` is its waterfall entry, or None).
        self._obs_owner = obs_owner
        self._created_at = load.browser.sim.now
        load.result.dns_lookups += 1
        load.browser.resolver.resolve(sample_url.host, self._resolved)

    def enqueue(self, resource: Resource) -> None:
        if self.failed is not None:
            self.load.fail_resource(resource, self.failed,
                                    exc=self.failed_exc)
            return
        if self.address is None:
            self._waiting.append(resource)
            return
        self._route(resource)

    def _resolved(self, addresses, error) -> None:
        if error is not None or not addresses:
            if error is None:
                error = DnsError(f"no addresses for {self.url.host!r}")
            self.failed = f"DNS failure: {error}"
            self.failed_exc = error
            waiting = list(self._waiting)
            self._waiting.clear()
            for resource in waiting:
                self.load.fail_resource(resource, self.failed,
                                        exc=self.failed_exc)
            return
        if self._obs_owner is not None:
            self._obs_owner.dns = self.load.browser.sim.now - self._created_at
        self.address = addresses[0]
        while self._waiting:
            self._route(self._waiting.popleft())

    def _route(self, resource: Resource) -> None:
        endpoint = Endpoint(self.address, self.url.port)
        pool = self.load.endpoint_pool(
            self.url.host, endpoint, self.url.scheme == "https"
        )
        pool.enqueue(resource)


class _EndpointPool:
    """Connection pool and request queue for one server endpoint.

    With ``protocol="mux"`` the pool degenerates to a single multiplexed
    session carrying every request as a concurrent stream.
    """

    def __init__(self, load: _PageLoad, endpoint: Endpoint, tls: bool) -> None:
        self.load = load
        self.browser = load.browser
        self.endpoint = endpoint
        self.tls = tls
        self._pending: Deque[Resource] = deque()
        self._connections: List[HttpClient] = []
        self._mux = None

    def enqueue(self, resource: Resource) -> None:
        if self.browser.config.protocol == "mux":
            self._issue(self._mux_session(), resource)
            return
        self._pending.append(resource)
        self._pump()

    def _mux_session(self):
        if self._mux is None or self._mux.closed:
            from repro.http.mux import MuxClientSession

            self._mux = MuxClientSession(
                self.browser.sim, self.browser.transport,
                self.endpoint, tls=self.tls,
            )
            self.load.result.connections_opened += 1
        return self._mux

    # ------------------------------------------------------------------ #

    def _pump(self) -> None:
        config = self.browser.config
        while self._pending:
            conn = self._idle_connection()
            if conn is None:
                if len(self._connections) >= config.max_connections_per_origin:
                    return
                conn = self._open_connection()
            resource = self._pending.popleft()
            self._issue(conn, resource)

    def _idle_connection(self) -> Optional[HttpClient]:
        for conn in self._connections:
            if not conn.closed and not conn.busy:
                return conn
        return None

    def _open_connection(self) -> HttpClient:
        conn = HttpClient(
            self.browser.sim, self.browser.transport,
            self.endpoint, tls=self.tls,
        )
        conn.on_idle = self._pump
        conn.on_error = lambda exc: self._connection_failed(conn, exc)
        self._connections.append(conn)
        self.load.result.connections_opened += 1
        return conn

    def _issue(self, conn: HttpClient, resource: Resource) -> None:
        request = self._build_request(resource)
        timing = self.load.obs_entry(resource)
        if timing is None:
            def on_response(response):
                self.load.resource_done(resource, response)
        else:
            timing.issued = self.browser.sim.now
            fresh = getattr(conn, "requests_sent", 0) == 0

            def on_response(response, timing=timing, conn=conn, fresh=fresh):
                self.load.obs_finish(timing, conn, fresh, response)
                self.load.resource_done(resource, response)
        callback = FailableCallback(
            on_response,
            lambda exc: self.load.fail_resource(resource, exc),
        )
        conn.request(request, callback)

    def _build_request(self, resource: Resource) -> HttpRequest:
        url = resource.url
        host = url.host if url.default_port else f"{url.host}:{url.port}"
        headers = Headers([
            ("Host", host),
            ("User-Agent", "repro-browser/1.0"),
            ("Accept", "*/*"),
            ("Accept-Encoding", "identity"),
        ])
        # Pad to a realistic request size (cookies, referer, UA string...).
        base = sum(len(n) + len(v) + 4 for n, v in headers)
        base += len("GET  HTTP/1.1\r\n") + len(url.path)
        pad = self.browser.config.request_header_bytes - base
        if pad > 12:
            headers.add("X-Browser-Meta", "m" * (pad - 18))
        return HttpRequest("GET", url.path, headers)

    def _connection_failed(self, conn: HttpClient, exc: Exception) -> None:
        # Outstanding requests were failed individually through their
        # FailableCallbacks; drop the dead connection and keep going.
        if conn in self._connections:
            self._connections.remove(conn)
        self._pump()

    def shutdown(self) -> None:
        """Close idle connections at onload."""
        for conn in self._connections:
            if not conn.busy:
                conn.close()
        if self._mux is not None and not self._mux.busy:
            self._mux.close()
