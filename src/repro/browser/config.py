"""Browser configuration and compute-cost model.

The parse costs are the browser-side CPU work per resource. They matter
twice: they set the absolute scale of page load times when the network is
fast (Figure 2's ReplayShell-alone distribution is compute-dominated), and
their jitter (via the machine profile) is the variance Table 1 reports.

Defaults are calibrated so a mid-sized multi-origin page loads in roughly
1-2 s over an unconstrained network — the regime of the paper's Figure 2
corpus runs on 2014 Chrome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


def _default_parse_base() -> Dict[str, float]:
    # Fixed per-resource cost, seconds: dispatch, style/script bookkeeping.
    return {
        "html": 0.030,
        "css": 0.008,
        "js": 0.014,
        "image": 0.002,
        "font": 0.003,
        "xhr": 0.004,
        "other": 0.002,
    }


def _default_parse_per_kb() -> Dict[str, float]:
    # Size-dependent cost, seconds per KiB: parsing, JIT, decode.
    return {
        "html": 0.00050,
        "css": 0.00030,
        "js": 0.00085,
        "image": 0.00006,
        "font": 0.00010,
        "xhr": 0.00020,
        "other": 0.00005,
    }


@dataclass
class BrowserConfig:
    """Tunables of the browser model.

    Attributes:
        max_connections_per_origin: parallel persistent connections per
            origin (6, the universal browser default of the paper's era).
        max_delayable_in_flight: cap on concurrently outstanding
            low-priority ("delayable") requests — images and other media.
            Browsers' resource schedulers keep image floods from starving
            render-critical scripts and stylesheets of bandwidth; without
            this cap, every object on a shared bottleneck finishes at the
            link-drain time and page load dynamics come out wrong.
        connection_reuse: keep connections alive across requests.
        parse_base / parse_per_kb: compute cost model by resource kind.
        request_header_bytes: size of a typical request (cookies, UA...).
        dns_timeout / dns_retries: stub resolver behaviour.
        start_delay: compute time before the first request (navigation,
            cache lookup) — part of every real PLT measurement.
        protocol: "http/1.1" (parallel persistent connections) or "mux"
            (one SPDY-style multiplexed connection per origin — the
            paper's motivating "new multiplexing protocols" use case; the
            replay/origin servers must speak the same protocol).
    """

    max_connections_per_origin: int = 6
    max_delayable_in_flight: int = 10
    connection_reuse: bool = True
    protocol: str = "http/1.1"
    parse_base: Dict[str, float] = field(default_factory=_default_parse_base)
    parse_per_kb: Dict[str, float] = field(default_factory=_default_parse_per_kb)
    request_header_bytes: int = 420
    dns_timeout: float = 2.0
    dns_retries: int = 4
    start_delay: float = 0.040

    def parse_cost(self, kind: str, size: int) -> float:
        """Idealized compute seconds to process one resource."""
        base = self.parse_base.get(kind, self.parse_base["other"])
        per_kb = self.parse_per_kb.get(kind, self.parse_per_kb["other"])
        return base + per_kb * (size / 1024.0)
