"""Page resources and dependency graphs.

A :class:`PageModel` is the unit a browser loads: a root HTML resource and
a DAG of subresources, each edge meaning "fetching and processing the
parent reveals the child". The graph shape — fan-out at the HTML, chains
through CSS->font and JS->XHR — is what gives page loads their critical
path, and it is exactly what differs between a 5-object blog and a
100-object news front page.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, NamedTuple, Optional, Set

from repro.errors import BrowserError

#: Resource kinds with distinct processing behaviour.
KINDS = ("html", "css", "js", "image", "font", "xhr", "other")


class Url(NamedTuple):
    """A parsed absolute URL (scheme, host, port, path-with-query)."""

    scheme: str
    host: str
    port: int
    path: str

    @classmethod
    def parse(cls, text: str) -> "Url":
        """Parse ``http(s)://host[:port]/path?query``.

        Raises:
            BrowserError: on anything else.
        """
        scheme, sep, rest = text.partition("://")
        if not sep or scheme not in ("http", "https"):
            raise BrowserError(f"unsupported URL: {text!r}")
        authority, slash, path = rest.partition("/")
        path = slash + path if slash else "/"
        if ":" in authority:
            host, __, port_text = authority.partition(":")
            if not port_text.isdigit():
                raise BrowserError(f"bad port in URL: {text!r}")
            port = int(port_text)
        else:
            host = authority
            port = 443 if scheme == "https" else 80
        if not host:
            raise BrowserError(f"missing host in URL: {text!r}")
        return cls(scheme, host.lower(), port, path)

    @property
    def origin(self) -> str:
        """The origin key ``scheme://host:port``."""
        return f"{self.scheme}://{self.host}:{self.port}"

    @property
    def default_port(self) -> bool:
        """True when the port is the scheme's default."""
        return self.port == (443 if self.scheme == "https" else 80)

    def __str__(self) -> str:
        if self.default_port:
            return f"{self.scheme}://{self.host}{self.path}"
        return f"{self.scheme}://{self.host}:{self.port}{self.path}"


class Resource:
    """One fetchable object and its discovery edges.

    Attributes:
        url: where it lives.
        kind: one of :data:`KINDS`.
        size: response body bytes.
        parse_cost: idealized seconds of compute to process the response
            (scaled by the machine profile at load time).
        children: resources discovered once this one is processed.
    """

    __slots__ = ("url", "kind", "size", "parse_cost", "children")

    def __init__(
        self,
        url: Url,
        kind: str,
        size: int,
        parse_cost: float = 0.0,
        children: Optional[List["Resource"]] = None,
    ) -> None:
        if kind not in KINDS:
            raise BrowserError(f"unknown resource kind: {kind!r}")
        if size < 0:
            raise BrowserError(f"negative resource size: {size!r}")
        self.url = url
        self.kind = kind
        self.size = size
        self.parse_cost = parse_cost
        self.children = children if children is not None else []

    def __repr__(self) -> str:
        return (
            f"<Resource {self.kind} {self.url} {self.size}B "
            f"children={len(self.children)}>"
        )


class PageModel:
    """A page: the root document plus its resource DAG.

    Args:
        root: the HTML resource the load starts from.
        name: page label for reports.
    """

    def __init__(self, root: Resource, name: str = "") -> None:
        if root.kind != "html":
            raise BrowserError("a page's root resource must be html")
        self.root = root
        self.name = name or str(root.url)
        # Validate: the graph must be acyclic (DFS with a path set).
        self._assert_acyclic()

    def _assert_acyclic(self) -> None:
        on_path: Set[int] = set()
        visited: Set[int] = set()

        def visit(resource: Resource) -> None:
            key = id(resource)
            if key in on_path:
                raise BrowserError(
                    f"dependency cycle through {resource.url}"
                )
            if key in visited:
                return
            on_path.add(key)
            for child in resource.children:
                visit(child)
            on_path.discard(key)
            visited.add(key)

        visit(self.root)

    def resources(self) -> Iterator[Resource]:
        """All resources, root first, each exactly once (BFS order)."""
        seen: Set[int] = set()
        frontier = [self.root]
        while frontier:
            next_frontier: List[Resource] = []
            for resource in frontier:
                if id(resource) in seen:
                    continue
                seen.add(id(resource))
                yield resource
                next_frontier.extend(resource.children)
            frontier = next_frontier

    @property
    def resource_count(self) -> int:
        """Number of distinct resources."""
        return sum(1 for __ in self.resources())

    @property
    def total_bytes(self) -> int:
        """Sum of response body sizes."""
        return sum(r.size for r in self.resources())

    def origins(self) -> Dict[str, Url]:
        """Distinct origins referenced, keyed by origin string."""
        out: Dict[str, Url] = {}
        for resource in self.resources():
            out.setdefault(resource.url.origin, resource.url)
        return out

    def depth(self) -> int:
        """Length of the longest discovery chain (critical path length)."""
        memo: Dict[int, int] = {}

        def depth_of(resource: Resource) -> int:
            key = id(resource)
            if key not in memo:
                memo[key] = 1 + max(
                    (depth_of(c) for c in resource.children), default=0
                )
            return memo[key]

        return depth_of(self.root)

    def __repr__(self) -> str:
        return (
            f"<PageModel {self.name!r} resources={self.resource_count} "
            f"origins={len(self.origins())} bytes={self.total_bytes}>"
        )
