"""Minimal HTML rendering and reference scanning.

The corpus generator renders each synthetic page's root document as real
HTML whose ``<link>``/``<script>``/``<img>`` tags reference the page's
actual subresources; the recorded store therefore contains genuine
scannable content, and :func:`scan_references` can rediscover the resource
list from recorded bytes (used by tests to prove the record path preserves
page structure).

This is a reference extractor, not a general HTML parser — it handles the
documents :func:`render_html` produces plus ordinary attribute layouts.
"""

from __future__ import annotations

import re
from typing import List

from repro.browser.resources import Resource

_REFERENCE_RE = re.compile(
    rb"""(?:src|href)\s*=\s*["']([^"']+)["']""", re.IGNORECASE
)

_TAG_BY_KIND = {
    "css": '<link rel="stylesheet" href="{url}">',
    "js": '<script src="{url}"></script>',
    "image": '<img src="{url}" alt="">',
    "font": '<link rel="preload" as="font" href="{url}">',
    "xhr": "<!-- xhr: {url} -->",
    "other": '<a href="{url}">resource</a>',
}


def render_html(
    title: str, children: List[Resource], target_size: int
) -> bytes:
    """Render a root document referencing ``children``, padded to
    ``target_size`` bytes (so recorded HTML has realistic weight)."""
    lines = [
        "<!DOCTYPE html>",
        "<html><head>",
        f"<title>{title}</title>",
    ]
    body_tags = []
    for child in children:
        template = _TAG_BY_KIND.get(child.kind)
        if template is None:
            continue
        tag = template.format(url=str(child.url))
        if child.kind in ("css", "js", "font"):
            lines.append(tag)
        else:
            body_tags.append(tag)
    lines.append("</head><body>")
    lines.extend(body_tags)
    lines.append("</body></html>")
    document = "\n".join(lines).encode("utf-8")
    if len(document) < target_size:
        padding = target_size - len(document) - len("<!--  -->\n")
        if padding > 0:
            document += b"<!-- " + b"x" * padding + b" -->\n"
    return document


def scan_references(document: bytes) -> List[str]:
    """Extract src/href reference URLs from an HTML document, in order."""
    return [
        match.decode("utf-8", "replace")
        for match in _REFERENCE_RE.findall(document)
    ]
