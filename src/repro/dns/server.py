"""An authoritative DNS server over UDP.

The zone is a plain dict of name → list of addresses. ReplayShell builds
its zone from the recorded site's hostnames; the live-web model from its
origin inventory. Unknown names get NXDOMAIN.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dns.message import (
    DnsQuery,
    DnsResponse,
    RCODE_NXDOMAIN,
    RCODE_OK,
    RCODE_SERVFAIL,
    decode_message,
    encode_response,
)
from repro.errors import DnsError
from repro.net.address import Endpoint, IPv4Address
from repro.sim.simulator import Simulator
from repro.transport.host import TransportHost

DNS_PORT = 53


class DnsServer:
    """Authoritative server for a static zone.

    Args:
        sim: the simulator.
        transport: the namespace's transport host.
        address: local address to bind (port 53).
        zone: name → addresses. Names are matched case-insensitively.
        processing_time: seconds of lookup latency per query (default 0).
        fault_injector: optional
            :class:`repro.chaos.inject.DnsFaultInjector`; also assignable
            after construction. Lets a fault plan answer SERVFAIL, swallow
            queries (resolver timeout), or slow answers down.
    """

    def __init__(
        self,
        sim: Simulator,
        transport: TransportHost,
        address,
        zone: Dict[str, List[IPv4Address]],
        processing_time: float = 0.0,
        port: int = DNS_PORT,
        fault_injector=None,
    ) -> None:
        self.sim = sim
        self.address = IPv4Address(address)
        self.port = port
        self.processing_time = processing_time
        self.fault_injector = fault_injector
        self._zone = {
            name.lower(): [IPv4Address(a) for a in addresses]
            for name, addresses in zone.items()
        }
        self.queries_answered = 0
        self.queries_dropped = 0
        self.faults_injected = 0
        self._socket = transport.udp_socket(
            self.address, port, on_datagram=self._query_arrived
        )

    @property
    def endpoint(self) -> Endpoint:
        """Where resolvers should send queries."""
        return Endpoint(self.address, self.port)

    def add_record(self, name: str, addresses: List[IPv4Address]) -> None:
        """Add or replace a zone entry."""
        self._zone[name.lower()] = [IPv4Address(a) for a in addresses]

    def lookup(self, name: str) -> Optional[List[IPv4Address]]:
        """Direct zone lookup (no network) — used by tests and tooling."""
        return self._zone.get(name.lower())

    def close(self) -> None:
        """Unbind the server socket."""
        self._socket.close()

    def _query_arrived(self, data: bytes, source: Endpoint) -> None:
        try:
            message = decode_message(data)
        except DnsError:
            return
        if not isinstance(message, DnsQuery):
            return
        fault = None
        if self.fault_injector is not None:
            fault = self.fault_injector.fault_for(message.name)
        if fault is not None:
            self.faults_injected += 1
            if fault.kind == "timeout":
                # Swallow the query: the resolver retries, then fails.
                self.queries_dropped += 1
                return
        if fault is not None and fault.kind == "servfail":
            response = DnsResponse(
                message.qid, RCODE_SERVFAIL, message.name, ()
            )
        else:
            addresses = self._zone.get(message.name)
            if addresses:
                response = DnsResponse(
                    message.qid, RCODE_OK, message.name, tuple(addresses)
                )
            else:
                response = DnsResponse(
                    message.qid, RCODE_NXDOMAIN, message.name, ()
                )
        self.queries_answered += 1
        delay = self.processing_time
        if fault is not None and fault.kind == "slow":
            delay += fault.delay
        if delay > 0.0:
            self.sim.schedule(delay, self._respond, response, source)
        else:
            self._respond(response, source)

    def _respond(self, response: DnsResponse, source: Endpoint) -> None:
        if not self._socket.closed:
            self._socket.sendto(encode_response(response), source)
