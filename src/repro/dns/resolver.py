"""A caching stub resolver.

Browsers cache lookups for the duration of a page load, so the resolver
caches positive answers (with a TTL) and coalesces concurrent queries for
the same name — twenty objects on one origin cost one round trip to the
DNS server, which is what a real page load sees.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.dns.message import (
    DnsQuery,
    DnsResponse,
    RCODE_SERVFAIL,
    decode_message,
    encode_query,
)
from repro.errors import DnsError
from repro.net.address import Endpoint, IPv4Address
from repro.sim.simulator import Simulator
from repro.sim.timers import Timer
from repro.transport.host import TransportHost

ResolveCallback = Callable[[Optional[List[IPv4Address]], Optional[Exception]], None]

DEFAULT_TIMEOUT = 2.0
DEFAULT_RETRIES = 2
DEFAULT_TTL = 60.0


class StubResolver:
    """Resolves names against one DNS server, with caching and retry.

    Args:
        sim: the simulator.
        transport: the local namespace's transport host.
        local_address: address to bind the query socket on.
        server: the DNS server endpoint.
        timeout: per-attempt timeout, seconds.
        retries: retransmissions before failing.
        ttl: positive-cache lifetime, seconds.
    """

    def __init__(
        self,
        sim: Simulator,
        transport: TransportHost,
        local_address,
        server: Endpoint,
        timeout: float = DEFAULT_TIMEOUT,
        retries: int = DEFAULT_RETRIES,
        ttl: float = DEFAULT_TTL,
    ) -> None:
        self.sim = sim
        self.server = server
        self.timeout = timeout
        self.retries = retries
        self.ttl = ttl
        self.queries_sent = 0
        self.cache_hits = 0
        self._next_qid = 1
        self._cache: Dict[str, Tuple[float, List[IPv4Address]]] = {}
        # name -> in-flight query state
        self._pending: Dict[str, "_PendingQuery"] = {}
        self._qid_to_name: Dict[int, str] = {}
        self._socket = transport.udp_socket(
            IPv4Address(local_address), 0, on_datagram=self._response_arrived
        )

    def resolve(self, name: str, callback: ResolveCallback) -> None:
        """Resolve ``name``; the callback gets (addresses, None) on success
        or (None, error) on NXDOMAIN/timeout."""
        name = name.lower()
        cached = self._cache.get(name)
        if cached is not None and cached[0] > self.sim.now:
            self.cache_hits += 1
            self.sim.call_soon(callback, list(cached[1]), None)
            return
        pending = self._pending.get(name)
        if pending is not None:
            pending.callbacks.append(callback)
            return
        pending = _PendingQuery(name, callback)
        self._pending[name] = pending
        self._send_query(pending)

    def _send_query(self, pending: "_PendingQuery") -> None:
        qid = self._next_qid
        self._next_qid += 1
        pending.qid = qid
        self._qid_to_name[qid] = pending.name
        self.queries_sent += 1
        self._socket.sendto(
            encode_query(DnsQuery(qid, pending.name)), self.server
        )
        pending.timer = Timer(self.sim, lambda: self._timed_out(pending))
        # Exponential backoff per attempt (glibc-style): on a badly
        # bufferbloated link the query and its answer can sit behind
        # seconds of queued TCP data, and only a patient retry schedule
        # ever sees the answer.
        pending.timer.start(self.timeout * (2 ** pending.attempts))

    def _timed_out(self, pending: "_PendingQuery") -> None:
        self._qid_to_name.pop(pending.qid, None)
        if pending.attempts < self.retries:
            pending.attempts += 1
            self._send_query(pending)
            return
        self._pending.pop(pending.name, None)
        error = DnsError(f"resolution of {pending.name!r} timed out")
        for callback in pending.callbacks:
            callback(None, error)

    def _response_arrived(self, data: bytes, source: Endpoint) -> None:
        try:
            message = decode_message(data)
        except DnsError:
            return
        if not isinstance(message, DnsResponse):
            return
        name = self._qid_to_name.pop(message.qid, None)
        if name is None:
            return
        pending = self._pending.pop(name, None)
        if pending is None:
            return
        if pending.timer is not None:
            pending.timer.stop()
        if message.ok:
            addresses = [IPv4Address(a) for a in message.addresses]
            self._cache[name] = (self.sim.now + self.ttl, addresses)
            for callback in pending.callbacks:
                callback(list(addresses), None)
        else:
            # SERVFAIL and NXDOMAIN are different failures (the server is
            # broken vs. the name does not exist); name them apart so
            # failure taxonomies can tell them apart.
            if message.rcode == RCODE_SERVFAIL:
                error = DnsError(f"SERVFAIL for {name!r}")
            else:
                error = DnsError(f"NXDOMAIN for {name!r}")
            for callback in pending.callbacks:
                callback(None, error)

    def close(self) -> None:
        """Release the query socket."""
        self._socket.close()


class _PendingQuery:
    """State of one in-flight resolution (possibly many waiters)."""

    __slots__ = ("name", "callbacks", "qid", "attempts", "timer")

    def __init__(self, name: str, callback: ResolveCallback) -> None:
        self.name = name
        self.callbacks = [callback]
        self.qid = 0
        self.attempts = 0
        self.timer: Optional[Timer] = None
