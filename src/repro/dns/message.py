"""DNS message model and encoding.

A query asks for the A records of one name; a response carries zero or
more addresses and an rcode. The wire encoding is a compact text format
(``Q|<id>|<name>`` / ``R|<id>|<rcode>|<name>|<addr>,<addr>``) whose length
is close to a real DNS packet for typical names, so the timing it induces
on links is faithful even though the bit layout is not.
"""

from __future__ import annotations

from typing import List, NamedTuple, Union

from repro.errors import DnsError
from repro.net.address import IPv4Address

RCODE_OK = 0
RCODE_NXDOMAIN = 3
RCODE_SERVFAIL = 2


class DnsQuery(NamedTuple):
    """An A-record query."""

    qid: int
    name: str


class DnsResponse(NamedTuple):
    """A response to one query."""

    qid: int
    rcode: int
    name: str
    addresses: tuple

    @property
    def ok(self) -> bool:
        """True for a successful answer with at least one address."""
        return self.rcode == RCODE_OK and bool(self.addresses)


def _check_name(name: str) -> str:
    if not name or "|" in name or "," in name or any(c.isspace() for c in name):
        raise DnsError(f"invalid DNS name: {name!r}")
    return name.lower()


def encode_query(query: DnsQuery) -> bytes:
    """Serialize a query."""
    return f"Q|{query.qid}|{_check_name(query.name)}".encode("ascii")


def encode_response(response: DnsResponse) -> bytes:
    """Serialize a response."""
    addresses = ",".join(str(a) for a in response.addresses)
    return (
        f"R|{response.qid}|{response.rcode}|"
        f"{_check_name(response.name)}|{addresses}"
    ).encode("ascii")


def decode_message(data: bytes) -> Union[DnsQuery, DnsResponse]:
    """Parse a wire message into a query or response.

    Raises:
        DnsError: on any malformed input.
    """
    try:
        text = data.decode("ascii")
    except UnicodeDecodeError:
        raise DnsError("non-ASCII DNS message") from None
    parts = text.split("|")
    if parts[0] == "Q" and len(parts) == 3:
        qid_text, name = parts[1], parts[2]
        if not qid_text.isdigit():
            raise DnsError(f"bad query id: {qid_text!r}")
        return DnsQuery(int(qid_text), _check_name(name))
    if parts[0] == "R" and len(parts) == 5:
        qid_text, rcode_text, name, addr_text = parts[1:]
        if not qid_text.isdigit() or not rcode_text.isdigit():
            raise DnsError(f"bad response fields in {text!r}")
        addresses: List[IPv4Address] = []
        if addr_text:
            addresses = [IPv4Address(a) for a in addr_text.split(",")]
        return DnsResponse(
            int(qid_text), int(rcode_text), _check_name(name), tuple(addresses)
        )
    raise DnsError(f"malformed DNS message: {text!r}")
