"""DNS over the simulated substrate.

ReplayShell answers every hostname from the recorded site with the
recorded origin IP (Mahimahi runs dnsmasq inside the replay namespace);
the live-web model runs an authoritative server for its origins. Messages
use a compact text encoding rather than RFC 1035 wire format — the paper's
measurements depend on resolution *latency*, not packet layout (see
DESIGN.md's substitution table).
"""

from repro.dns.message import DnsQuery, DnsResponse, decode_message, encode_query, encode_response
from repro.dns.resolver import StubResolver
from repro.dns.server import DnsServer

__all__ = [
    "DnsQuery",
    "DnsResponse",
    "DnsServer",
    "StubResolver",
    "decode_message",
    "encode_query",
    "encode_response",
]
