"""Non-browser applications (the paper's §4 "Beyond browsers" claim).

Mahimahi's design replays *any* application that uses HTTP, not just
browsers — the paper suggests measuring mobile apps through an emulator.
This package provides such applications for the simulated substrate:

* :class:`~repro.apps.apiclient.ApiClient` — a mobile-app-style client
  that performs a launch sequence of dependent REST calls (auth, feed,
  per-item detail fan-out) over persistent HTTP connections, reporting a
  "time to interactive". It runs identically against the live-web model,
  inside RecordShell (where its traffic gets recorded), and inside
  ReplayShell — no browser anywhere.
"""

from repro.apps.apiclient import ApiClient, ApiWorkload, make_api_site

__all__ = ["ApiClient", "ApiWorkload", "make_api_site"]
