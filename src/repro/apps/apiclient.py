"""A mobile-app-style HTTP client (record/replay beyond browsers).

The workload mirrors a typical app launch:

1. ``POST``-free simplification: ``GET /api/session`` (auth handshake);
2. ``GET /api/feed`` — the main content listing;
3. a fan-out of ``GET /api/item/<k>`` detail calls, bounded by the app's
   connection pool;
4. optionally thumbnails from a CDN host.

The client is pure HTTP over the simulated transport — no page model, no
parser-discovered dependencies — demonstrating that the shells replay
arbitrary HTTP applications transparently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.corpus.sitegen import ip_for_host
from repro.dns.resolver import StubResolver
from repro.errors import ReproError
from repro.http.body import Body
from repro.http.client import FailableCallback, HttpClient
from repro.http.message import Headers, HttpRequest, HttpResponse
from repro.net.address import Endpoint
from repro.record.entry import RequestResponsePair
from repro.record.store import RecordedSite
from repro.sim.simulator import Simulator
from repro.transport.host import TransportHost


@dataclass(frozen=True)
class ApiWorkload:
    """Shape of the app's launch sequence."""

    api_host: str = "api.app.example"
    cdn_host: str = "cdn.app.example"
    feed_items: int = 12
    session_bytes: int = 700
    feed_bytes: int = 24_000
    item_bytes: int = 3_500
    thumbnail_bytes: int = 18_000
    max_connections: int = 4


def make_api_site(workload: ApiWorkload = ApiWorkload()) -> RecordedSite:
    """The ground-truth recording of the app's backend responses."""
    store = RecordedSite(workload.api_host)

    def pair(host: str, uri: str, length: int) -> RequestResponsePair:
        request = HttpRequest("GET", uri, Headers([
            ("Host", host), ("User-Agent", "repro-app/1.0"),
        ]))
        response = HttpResponse(200, headers=Headers([
            ("Content-Type", "application/json"),
            ("Content-Length", str(length)),
        ]), body=Body.virtual(length))
        return RequestResponsePair("http", ip_for_host(host), 80,
                                   request, response)

    store.add_pair(pair(workload.api_host, "/api/session",
                        workload.session_bytes))
    store.add_pair(pair(workload.api_host, "/api/feed",
                        workload.feed_bytes))
    for item in range(workload.feed_items):
        store.add_pair(pair(workload.api_host, f"/api/item/{item}",
                            workload.item_bytes))
        store.add_pair(pair(workload.cdn_host, f"/thumb/{item}.jpg",
                            workload.thumbnail_bytes))
    return store


class ApiClient:
    """Runs the launch sequence; reports time-to-interactive.

    Args:
        sim: the simulator.
        transport: the namespace's transport host.
        resolver: DNS endpoint (replay's or the live web's).
        workload: launch-sequence shape.

    Call :meth:`launch`; run the simulator until :attr:`done`.
    """

    def __init__(
        self,
        sim: Simulator,
        transport: TransportHost,
        resolver: Endpoint,
        workload: ApiWorkload = ApiWorkload(),
    ) -> None:
        self.sim = sim
        self.transport = transport
        self.workload = workload
        self.resolver = StubResolver(
            sim, transport, transport.namespace.any_local_address(), resolver)
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.requests_completed = 0
        self.errors: List[str] = []
        self._pools: Dict[str, List[HttpClient]] = {}
        self._addresses: Dict[str, Endpoint] = {}
        self._outstanding = 0
        self._queues: Dict[str, List] = {}

    @property
    def done(self) -> bool:
        """True once the launch sequence has completed (or failed)."""
        return self.finished_at is not None

    @property
    def time_to_interactive(self) -> float:
        """Seconds from launch to the last response.

        Raises:
            ReproError: before completion.
        """
        if self.finished_at is None or self.started_at is None:
            raise ReproError("launch has not completed")
        return self.finished_at - self.started_at

    # ------------------------------------------------------------------ #

    def launch(self) -> None:
        """Start the launch sequence."""
        self.started_at = self.sim.now
        self._get(self.workload.api_host, "/api/session", self._session_done)

    def _session_done(self, response: HttpResponse) -> None:
        self._get(self.workload.api_host, "/api/feed", self._feed_done)

    def _feed_done(self, response: HttpResponse) -> None:
        for item in range(self.workload.feed_items):
            self._get(self.workload.api_host, f"/api/item/{item}",
                      self._one_done)
            self._get(self.workload.cdn_host, f"/thumb/{item}.jpg",
                      self._one_done)

    def _one_done(self, response: HttpResponse) -> None:
        pass  # completion bookkeeping happens in _finished_one

    # ------------------------------------------------------------------ #

    def _get(self, host: str, uri: str, on_response) -> None:
        self._outstanding += 1
        request = HttpRequest("GET", uri, Headers([
            ("Host", host), ("User-Agent", "repro-app/1.0"),
        ]))

        def handle(response: HttpResponse) -> None:
            self.requests_completed += 1
            on_response(response)
            self._finished_one()

        def fail(exc: Exception) -> None:
            self.errors.append(f"{host}{uri}: {exc}")
            self._finished_one()

        callback = FailableCallback(handle, fail)
        self._with_connection(
            host, lambda conn: conn.request(request, callback), fail)

    def _finished_one(self) -> None:
        self._outstanding -= 1
        if self._outstanding == 0:
            self.finished_at = self.sim.now

    def _with_connection(self, host: str, use, fail) -> None:
        endpoint = self._addresses.get(host)
        if endpoint is not None:
            use(self._pick_connection(host, endpoint))
            return
        queue = self._queues.setdefault(host, [])
        queue.append((use, fail))
        if len(queue) > 1:
            return  # resolution already in flight

        def resolved(addresses, error):
            pending = self._queues.pop(host, [])
            if error is not None or not addresses:
                for __, fail_fn in pending:
                    fail_fn(error or ReproError("empty DNS answer"))
                return
            self._addresses[host] = Endpoint(addresses[0], 80)
            for use_fn, __ in pending:
                use_fn(self._pick_connection(host, self._addresses[host]))

        self.resolver.resolve(host, resolved)

    def _pick_connection(self, host: str, endpoint: Endpoint) -> HttpClient:
        pool = self._pools.setdefault(host, [])
        for conn in pool:
            if not conn.closed and not conn.busy:
                return conn
        if len(pool) < self.workload.max_connections:
            conn = HttpClient(self.sim, self.transport, endpoint)
            pool.append(conn)
            return conn
        # All busy and at the limit: queue on the least-loaded connection
        # (HttpClient queues internally).
        return pool[self.requests_completed % len(pool)]
