"""Test and example scaffolding: tiny prebuilt topologies.

:class:`TwoHostWorld` wires the minimal interesting network — two
namespaces joined by one veth pair whose pipes you choose — with a
transport host on each side. Unit tests, examples, and docs all build on
it, so the boilerplate of addresses/routes lives in exactly one place.

This module doubles as a pytest plugin (registered from the root
``conftest.py``): the :func:`determinism` fixture hands tests
:func:`assert_deterministic`, so any test can assert bit-identical replay
of a scenario in one line.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.linkem.overhead import OverheadModel
from repro.net.address import Endpoint, IPv4Address
from repro.net.namespace import NetworkNamespace
from repro.net.pipe import PacketPipe
from repro.net.veth import VethPair
from repro.sim.simulator import Simulator
from repro.transport.host import TransportHost
from repro.transport.tcp import TcpConfig


class ScriptedLossPipe(PacketPipe):
    """A delay pipe that drops chosen packets (for loss-path testing).

    Args:
        sim: the simulator.
        one_way_delay: fixed delay for delivered packets.
        drop_indices: 0-based indices (in arrival order) of packets to
            drop. Every packet counts — SYNs, ACKs, data — so tests can
            target exactly the packet they mean.
    """

    def __init__(self, sim, one_way_delay: float, drop_indices) -> None:
        super().__init__(sim)
        self.one_way_delay = one_way_delay
        self._drop = set(drop_indices)
        self._index = 0
        self.dropped_uids = []

    def send(self, packet) -> None:
        index = self._index
        self._index += 1
        self.packets_sent += 1
        if index in self._drop:
            self.packets_dropped += 1
            self.dropped_uids.append(packet.uid)
            return
        self._sim.schedule(self.one_way_delay, self.deliver, packet)


class ReorderPipe(PacketPipe):
    """A delay pipe that adds random extra delay to some packets,
    reordering them past later sends (for out-of-order-path testing).

    Args:
        sim: the simulator.
        one_way_delay: base delay.
        rng: randomness source.
        reorder_probability: chance a packet is held an extra
            ``extra_delay`` seconds, letting packets behind it overtake.
    """

    def __init__(self, sim, one_way_delay: float, rng,
                 reorder_probability: float = 0.1,
                 extra_delay: float = 0.005) -> None:
        super().__init__(sim)
        self.one_way_delay = one_way_delay
        self._rng = rng
        self.reorder_probability = reorder_probability
        self.extra_delay = extra_delay
        self.reordered = 0

    def send(self, packet) -> None:
        self.packets_sent += 1
        delay = self.one_way_delay
        if self._rng.random() < self.reorder_probability:
            delay += self.extra_delay
            self.reordered += 1
        self._sim.schedule(delay, self.deliver, packet)


class TwoHostWorld:
    """Two namespaces, one veth, a transport host each.

    Layout::

        client (10.0.0.1/24) --[pipe_ab / pipe_ba]-- server (10.0.0.2/24)

    ``pipe_ab`` carries client->server traffic; ``pipe_ba`` the reverse.
    Defaults are instant pipes (a bare veth).
    """

    CLIENT_ADDR = "10.0.0.1"
    SERVER_ADDR = "10.0.0.2"

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        pipe_ab: Optional[PacketPipe] = None,
        pipe_ba: Optional[PacketPipe] = None,
        tcp_config: Optional[TcpConfig] = None,
        seed: int = 0,
    ) -> None:
        self.sim = sim if sim is not None else Simulator(seed=seed)
        self.client_ns = NetworkNamespace(self.sim, "client")
        self.server_ns = NetworkNamespace(self.sim, "server")
        self.veth = VethPair(
            self.sim, self.client_ns, self.server_ns,
            "veth-c", "veth-s", pipe_ab=pipe_ab, pipe_ba=pipe_ba,
        )
        self.veth.iface_a.add_address(self.CLIENT_ADDR, 24)
        self.veth.iface_b.add_address(self.SERVER_ADDR, 24)
        self.client = TransportHost(self.sim, self.client_ns, tcp_config)
        self.server = TransportHost(self.sim, self.server_ns, tcp_config)

    @property
    def server_endpoint(self) -> Endpoint:
        """Endpoint for the conventional server port 80."""
        return Endpoint(IPv4Address(self.SERVER_ADDR), 80)

    def endpoint(self, port: int) -> Endpoint:
        """Server endpoint on an arbitrary port."""
        return Endpoint(IPv4Address(self.SERVER_ADDR), port)


def assert_deterministic(
    build: Callable[[int], Simulator],
    seed: int = 0,
    runs: int = 2,
    **kwargs: Any,
):
    """Assert that ``build(seed)`` replays bit-identically.

    Thin test-facing wrapper over
    :func:`repro.analysis.sanitizer.check_determinism`: replays the
    scenario ``runs`` times and raises
    :class:`~repro.errors.DeterminismError` (failing the test) at the
    first divergent event. Returns the
    :class:`~repro.analysis.sanitizer.DeterminismReport` on success so
    tests can additionally pin event counts or digests.
    """
    from repro.analysis.sanitizer import check_determinism

    return check_determinism(build, seed=seed, runs=runs, **kwargs)


try:  # pragma: no cover - import guard
    import pytest as _pytest
except ImportError:  # pragma: no cover
    _pytest = None  # type: ignore[assignment]

if _pytest is not None:

    @_pytest.fixture(name="determinism")
    def _determinism_fixture():
        """Pytest fixture: the :func:`assert_deterministic` checker.

        Usage::

            def test_my_scenario_replays(determinism):
                determinism(build_scenario, seed=3)
        """
        return assert_deterministic


def delayed_world(
    one_way_delay: float,
    tcp_config: Optional[TcpConfig] = None,
    seed: int = 0,
) -> TwoHostWorld:
    """A :class:`TwoHostWorld` whose veth adds a symmetric fixed delay
    (ideal delay elements: no per-packet overhead)."""
    from repro.linkem.delay import DelayPipe

    sim = Simulator(seed=seed)
    return TwoHostWorld(
        sim=sim,
        pipe_ab=DelayPipe(sim, one_way_delay, OverheadModel.none()),
        pipe_ba=DelayPipe(sim, one_way_delay, OverheadModel.none()),
        tcp_config=tcp_config,
    )
