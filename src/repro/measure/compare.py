"""Paired scenario comparison — the paper's Table 2 methodology as API.

Comparing two configurations ("multi-origin vs single-server", "with vs
without a shell") is the toolkit's bread and butter. Doing it well needs
pairing: run both arms with the *same seed* per trial, so common random
numbers cancel and the per-trial difference isolates the configuration.
:func:`compare_page_loads` packages that, returning the distribution of
per-trial percent differences with the percentiles the paper reports.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.measure.runner import ScenarioFactory, run_page_loads
from repro.measure.stats import Sample


class Comparison(NamedTuple):
    """Outcome of a paired comparison of two scenarios."""

    baseline: Sample
    treatment: Sample
    percent_diffs: Sample

    @property
    def median_diff(self) -> float:
        """Median per-trial percent difference (treatment vs baseline)."""
        return self.percent_diffs.median

    def percentile_diff(self, p: float) -> float:
        """Percentile of the per-trial percent differences."""
        return self.percent_diffs.percentile(p)

    def summary(self) -> str:
        """One-line report in the paper's "50th, 95th pct" format."""
        return (f"{self.median_diff:+.1f}%, "
                f"{self.percentile_diff(95):+.1f}% "
                f"(50th, 95th pct; n={len(self.percent_diffs)})")


def compare_page_loads(
    baseline: ScenarioFactory,
    treatment: ScenarioFactory,
    trials: int,
    timeout: float = 900.0,
    workers: int = 1,
) -> Comparison:
    """Run two scenario factories with paired seeds and compare PLTs.

    Args:
        baseline / treatment: factories as for
            :func:`~repro.measure.runner.run_page_loads`; trial ``i`` of
            each arm receives the same index, so factories seeding their
            simulators from it produce paired runs.
        trials: paired trials to run.
        timeout: virtual-time budget per load.
        workers: process-pool size; above 1, each arm's trials are fanned
            out via :class:`~repro.measure.parallel.ParallelRunner`
            (pairing and statistics are unaffected — results stay in
            trial order).
    """
    if workers > 1:
        from repro.measure.parallel import ParallelRunner

        runner = ParallelRunner(workers=workers).run_page_loads
    else:
        runner = run_page_loads
    base = runner(baseline, trials, timeout=timeout)
    treat = runner(treatment, trials, timeout=timeout)
    diffs = [
        (t - b) / b * 100.0
        for b, t in zip(
            (r.page_load_time for r in base.results),
            (r.page_load_time for r in treat.results),
        )
    ]
    return Comparison(base.sample, treat.sample, Sample(diffs))
