"""Report rendering: the paper's tables and figures as text.

Benches print through these helpers so every reproduced artifact has the
same shape as its original: Table 1's "mean ± std" grid, Table 2's
"50th%, 95th%" grid, and the CDF figures as ASCII plots.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.measure.stats import Sample, percent_difference

#: Canonical implementation lives in :func:`repro.measure.stats
#: .percent_difference`; this short alias is kept because report/bench
#: call sites read better with it.
percent_diff = percent_difference


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: Optional[str] = None,
) -> str:
    """A fixed-width text table."""
    columns = len(headers)
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != columns:
            raise ValueError(f"row has {len(row)} cells, expected {columns}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(
            cell.ljust(widths[i]) for i, cell in enumerate(row)
        ))
    return "\n".join(lines)


def ascii_cdf(
    samples: Dict[str, Sample],
    width: int = 64,
    height: int = 16,
    unit: str = "ms",
    scale: float = 1000.0,
    title: Optional[str] = None,
) -> str:
    """Plot one or more CDFs as ASCII (the Figure 2 / Figure 3 format).

    Args:
        samples: label -> sample; each gets its own marker character.
        width / height: plot grid size.
        unit: x-axis unit label.
        scale: multiply values by this for display (s -> ms by default).
    """
    if not samples:
        raise ValueError("no samples to plot")
    markers = "*o+x#@%&"
    x_min = min(s.minimum for s in samples.values()) * scale
    x_max = max(s.maximum for s in samples.values()) * scale
    if x_max <= x_min:
        x_max = x_min + 1.0
    grid = [[" "] * width for __ in range(height)]
    for index, (label, sample) in enumerate(samples.items()):
        marker = markers[index % len(markers)]
        for value, proportion in sample.cdf():
            col = int((value * scale - x_min) / (x_max - x_min) * (width - 1))
            row = int((1.0 - proportion) * (height - 1))
            grid[row][col] = marker
    lines: List[str] = []
    if title:
        lines.append(title)
    for i, row_cells in enumerate(grid):
        proportion = 1.0 - i / (height - 1)
        lines.append(f"{proportion:4.2f} |" + "".join(row_cells))
    lines.append("     +" + "-" * width)
    left = f"{x_min:.0f}{unit}"
    right = f"{x_max:.0f}{unit}"
    lines.append("      " + left + " " * max(1, width - len(left) - len(right)) + right)
    for index, label in enumerate(samples):
        lines.append(f"      {markers[index % len(markers)]} = {label}")
    return "\n".join(lines)


def mean_pm_std(sample: Sample, scale: float = 1000.0, unit: str = "ms") -> str:
    """Table 1's cell format: ``7584±120 ms``."""
    return f"{sample.mean * scale:.0f}±{sample.stddev * scale:.0f} {unit}"
