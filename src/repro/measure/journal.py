"""Crash-safe trial journal: checkpoint/resume for sweeps.

The paper's headline numbers come from sweeps of hundreds of independent
page loads. At that scale a killed process — OOM, preemption, a CI timeout
— must not throw away the completed trials. The journal makes every sweep
resumable: each finished trial's result is appended to a JSONL file the
moment it completes, and a restarted sweep replays the journal instead of
re-running those trials. Because trials are deterministic (DESIGN.md §6),
a journaled result *is* the result the rerun would produce — bit for bit —
so a resumed sweep merges to exactly the output of an uninterrupted run,
and the sanitizer digest enforces that equivalence.

Crash-safety model:

* **Appends are atomic enough**: one record is one line, written with a
  single ``write`` call, flushed and ``fsync``'d before :meth:`append`
  returns. A crash can truncate only the *last* line; readers detect and
  drop a partial trailing record (its newline or checksum is missing).
* **Every record self-verifies**: the payload carries a BLAKE2 checksum,
  so a flipped byte invalidates that record alone, not the journal.
* **Rewrites are atomic**: :meth:`rewrite` (compaction after a resume)
  writes a temp file, fsyncs it, and ``os.replace``s it into place — a
  crash mid-rewrite leaves the old journal intact.
* **Journals are keyed**: the header and every record name the sweep's
  *run key* (a digest of the sweep configuration — seed recipe, trial
  count, scenario identity). Resuming with a different configuration
  raises :class:`~repro.errors.JournalError` instead of silently merging
  incompatible results.
"""

from __future__ import annotations

import base64
import hashlib
import io
import json
import os
import pickle
from typing import Any, Dict, Iterable, Iterator, Optional, Tuple

from repro.errors import JournalError

__all__ = [
    "JOURNAL_VERSION",
    "TrialJournal",
    "merge_journals",
    "run_key",
]

#: Journal wire-format version (bump on incompatible record changes).
JOURNAL_VERSION = 1


def run_key(**config: Any) -> str:
    """Digest a sweep configuration into a stable run key.

    Any JSON-serialisable keyword describes the sweep (``seed=0,
    trials=100, scenario="table1-verizon"``); the key is a BLAKE2 digest
    of the sorted-key JSON, so two sweeps share a key exactly when their
    configurations are equal.
    """
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=8).hexdigest()


def _checksum(payload: bytes) -> str:
    return hashlib.blake2b(payload, digest_size=8).hexdigest()


class TrialJournal:
    """Append-only journal of completed trial results.

    Args:
        path: the journal file. Created (with parents) on first append;
            an existing file is validated against ``key`` and its intact
            records become the resume set.
        key: the sweep's run key (see :func:`run_key`). ``None`` accepts
            any existing journal (and stamps new ones with ``"-"``).

    Raises:
        JournalError: when the existing journal's key does not match.
    """

    def __init__(self, path: Any, key: Optional[str] = None) -> None:
        self.path = os.fspath(path)
        self.key = key
        #: trial index -> (unpickled result, per-trial digest hex or None)
        self._completed: Dict[int, Tuple[Any, Optional[str]]] = {}
        self._handle: Optional[io.TextIOWrapper] = None
        self._dropped = 0
        if os.path.exists(self.path):
            self._recover()

    # ------------------------------------------------------------------ #
    # reading (resume)

    def _recover(self) -> None:
        """Load every intact record from an existing journal.

        A truncated or corrupt trailing record (the crash case) is
        dropped silently; a corrupt record *followed by intact ones*
        (bitrot, concurrent writers) is dropped and counted in
        :attr:`dropped_records` so callers can surface it.
        """
        with open(self.path, "r", encoding="utf-8", errors="replace") as fh:
            raw = fh.read()
        lines = raw.split("\n")
        # No trailing newline => the final line is a partial append.
        if lines and lines[-1] != "":
            self._dropped += 1 if lines[-1].strip() else 0
            lines = lines[:-1]
        header_seen = False
        for line in lines:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                self._dropped += 1
                continue
            kind = record.get("kind")
            if kind == "journal":
                header_seen = True
                self._check_header(record)
            elif kind == "trial":
                self._recover_trial(record)
            else:
                self._dropped += 1
        if not header_seen and self._completed:
            raise JournalError(
                f"{self.path}: journal has trial records but no header"
            )

    def _check_header(self, record: Dict[str, Any]) -> None:
        version = record.get("version")
        if version != JOURNAL_VERSION:
            raise JournalError(
                f"{self.path}: unsupported journal version {version!r} "
                f"(expected {JOURNAL_VERSION})"
            )
        existing = record.get("run_key")
        if self.key is not None and existing not in (self.key, "-"):
            raise JournalError(
                f"{self.path}: journal belongs to a different sweep "
                f"(run key {existing!r}, expected {self.key!r}) — "
                f"refusing to merge incompatible results"
            )
        if self.key is None:
            self.key = existing

    def _recover_trial(self, record: Dict[str, Any]) -> None:
        try:
            trial = int(record["trial"])
            payload_b64 = record["payload"]
            payload = base64.b64decode(payload_b64.encode("ascii"))
            if _checksum(payload) != record["checksum"]:
                self._dropped += 1
                return
            result = pickle.loads(payload)
        except (KeyError, ValueError, TypeError, pickle.UnpicklingError,
                EOFError, AttributeError):
            self._dropped += 1
            return
        self._completed[trial] = (result, record.get("digest"))

    @property
    def completed(self) -> Dict[int, Any]:
        """trial index -> journaled result, for every intact record."""
        return {trial: result for trial, (result, __) in
                self._completed.items()}

    def digest_for(self, trial: int) -> Optional[str]:
        """The journaled per-trial event-stream digest (hex), if any."""
        entry = self._completed.get(trial)
        return entry[1] if entry is not None else None

    @property
    def dropped_records(self) -> int:
        """Records dropped during recovery (truncated or corrupt)."""
        return self._dropped

    def __contains__(self, trial: int) -> bool:
        return trial in self._completed

    def __len__(self) -> int:
        return len(self._completed)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._completed))

    # ------------------------------------------------------------------ #
    # writing (checkpoint)

    def _open(self) -> io.TextIOWrapper:
        if self._handle is None:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            fresh = not os.path.exists(self.path)
            self._handle = open(self.path, "a", encoding="utf-8")
            if fresh or os.path.getsize(self.path) == 0:
                self._emit({
                    "kind": "journal",
                    "version": JOURNAL_VERSION,
                    "run_key": self.key if self.key is not None else "-",
                })
        return self._handle

    def _emit(self, record: Dict[str, Any]) -> None:
        assert self._handle is not None
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def append(self, trial: int, result: Any,
               digest: Optional[str] = None) -> None:
        """Checkpoint one completed trial (flushed and fsync'd).

        Args:
            trial: the trial index (the journal key within the sweep).
            result: the trial's picklable result object.
            digest: the trial's event-stream digest hex, when captured —
                journaled so a resumed sweep can prove byte-equivalence.
        """
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        record = {
            "kind": "trial",
            "run_key": self.key if self.key is not None else "-",
            "trial": trial,
            "digest": digest,
            "checksum": _checksum(payload),
            "payload": base64.b64encode(payload).decode("ascii"),
        }
        self._open()
        self._emit(record)
        self._completed[trial] = (result, digest)

    def rewrite(self) -> None:
        """Compact the journal: keep one intact record per trial.

        Written via temp file + fsync + ``os.replace`` so a crash
        mid-rewrite cannot lose the journal. Drops duplicate appends
        (a trial journaled by both a killed run and its resume) and any
        corrupt records recovery skipped.
        """
        self.close()
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            header = {
                "kind": "journal",
                "version": JOURNAL_VERSION,
                "run_key": self.key if self.key is not None else "-",
            }
            fh.write(json.dumps(header, sort_keys=True,
                                separators=(",", ":")) + "\n")
            for trial in sorted(self._completed):
                result, digest = self._completed[trial]
                payload = pickle.dumps(result,
                                       protocol=pickle.HIGHEST_PROTOCOL)
                record = {
                    "kind": "trial",
                    "run_key": self.key if self.key is not None else "-",
                    "trial": trial,
                    "digest": digest,
                    "checksum": _checksum(payload),
                    "payload": base64.b64encode(payload).decode("ascii"),
                }
                fh.write(json.dumps(record, sort_keys=True,
                                    separators=(",", ":")) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self._dropped = 0

    def close(self) -> None:
        """Close the append handle (reopened automatically on append)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TrialJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<TrialJournal {self.path!r} completed={len(self._completed)} "
            f"dropped={self._dropped}>"
        )


def merge_journals(target: TrialJournal, sources: Iterable[Any]) -> int:
    """Fold other journals' completed trials into ``target``.

    The fabric's shard journals are partial views of one sweep: each
    worker checkpoints the trials *it* ran. Merging replays every source
    record absent from the target (first source wins on a duplicate —
    determinism makes duplicates identical anyway, and ``target``'s own
    records always take precedence). Every source is key-checked against
    the target, so shards of a *different* sweep raise
    :class:`~repro.errors.JournalError` instead of polluting the merge.

    Args:
        target: the journal records are merged into (appended + fsync'd).
        sources: journal paths (missing ones are skipped — a shard that
            never completed a trial has no sidecar to merge).

    Returns:
        The number of trial records copied into ``target``.
    """
    merged = 0
    for source in sources:
        path = os.fspath(source)
        if not os.path.exists(path):
            continue
        other = TrialJournal(path, key=target.key)
        for trial in other:
            if trial in target:
                continue
            result, digest = other._completed[trial]
            target.append(trial, result, digest=digest)
            merged += 1
    return merged
