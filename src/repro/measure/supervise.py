"""Supervised sweeps: watchdog, bounded retry, quarantine, resume.

:func:`run_page_loads` and :class:`ParallelRunner` treat a sweep as
all-or-nothing: the first failing trial raises and every completed trial
is discarded. That is the right contract for a 5-trial unit test and the
wrong one for the paper's production shape — Figure 2 sweeps 500 sites,
Tables 1–2 run 100 loads per configuration, and at that scale a single
OOM-killed worker or one pathological trial must not cost the run.

:func:`run_supervised` is the harness-resilience contract:

* **Watchdog** — every trial gets a *wall-clock* deadline in addition to
  its virtual-time budget. A worker that stops making progress (a real
  infinite loop, a deadlocked import, a pathological allocation) is
  SIGKILLed at the deadline and treated like any other failed attempt.
* **Crash detection** — a worker that dies without reporting (nonzero
  exit, SIGKILL, segfault) is detected by its exit, not by a hung pipe.
* **Bounded retry with quarantine** — a failed attempt is retried up to
  ``retries`` times; a trial that exhausts its budget is *quarantined*:
  recorded, excluded from the sample, and the sweep moves on.
* **Partial results** — the sweep always returns a :class:`SweepResult`
  carrying a per-trial outcome taxonomy (``ok`` / ``retried`` /
  ``quarantined`` / ``crashed``) instead of raising on the first loss.
* **Checkpoint/resume** — with a ``journal``, every completed trial is
  fsync'd to disk as it finishes; a killed sweep restarted with the same
  journal re-runs only the missing trials. Determinism (DESIGN.md §6)
  makes the merge exact: the resumed sweep's sample and per-trial
  event-stream digests are byte-identical to an uninterrupted run's.

Wall clocks are deliberate here: this module is *harness*-domain, not
simulation-domain (mm-lint's REP001 scope) — deadlines measure the real
machine the sweep runs on, never the simulated world.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import pickle
import time
from dataclasses import dataclass
from multiprocessing.connection import Connection, wait as connection_wait
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ReproError
from repro.measure.journal import TrialJournal
from repro.measure.parallel import default_workers, fork_available
from repro.measure.runner import (
    DEFAULT_TRIAL_TIMEOUT,
    ScenarioFactory,
    run_trial,
)
from repro.measure.stats import Sample

__all__ = [
    "DEFAULT_DEADLINE",
    "OUTCOME_STATES",
    "SweepResult",
    "TrialOutcome",
    "run_supervised",
]

#: Default per-trial wall-clock deadline, seconds (None disables).
DEFAULT_DEADLINE: Optional[float] = None

#: The per-trial outcome taxonomy, in reporting order.
OUTCOME_STATES = ("ok", "retried", "quarantined", "crashed")


@dataclass(frozen=True)
class TrialOutcome:
    """One trial's fate under supervision.

    Attributes:
        trial: the trial index.
        status: ``ok`` (first attempt succeeded), ``retried`` (succeeded
            after >= 1 failed attempt), ``quarantined`` (every attempt
            failed with an error or deadline), ``crashed`` (the final
            attempt's worker died without reporting).
        attempts: attempts consumed (including the successful one).
        error: the final failure message (None for ok/retried).
        result: the trial's result (None for quarantined/crashed).
        from_journal: True when the result was replayed from a journal
            instead of re-run.
        digest: the trial's event-stream digest hex (when captured).
    """

    trial: int
    status: str
    attempts: int
    error: Optional[str]
    result: Optional[Any]
    from_journal: bool = False
    digest: Optional[str] = None

    @property
    def succeeded(self) -> bool:
        return self.status in ("ok", "retried")


class SweepResult:
    """Everything a supervised sweep produced, losses included.

    Attributes:
        outcomes: one :class:`TrialOutcome` per trial, in trial order.
    """

    def __init__(self, outcomes: List[TrialOutcome]) -> None:
        self.outcomes = outcomes

    @property
    def results(self) -> List[Optional[Any]]:
        """Per-trial results in trial order (None where the trial was
        lost) — index-stable, so trial ``i`` is always ``results[i]``."""
        return [o.result for o in self.outcomes]

    @property
    def sample(self) -> Sample:
        """PLT sample over the successful trials, in trial order.

        Because trials are deterministic and collected by index, this is
        bit-identical however the sweep was scheduled, retried, or
        resumed.

        Raises:
            ReproError: when every trial was lost (a Sample cannot be
                empty); check :attr:`complete` or :meth:`counts` first.
        """
        successful = [o for o in self.outcomes if o.succeeded]
        if not successful:
            counts = self.counts()
            raise ReproError(
                f"sweep produced no successful trials "
                f"({counts['quarantined']} quarantined, "
                f"{counts['crashed']} crashed)"
            )
        return Sample(o.result.page_load_time for o in successful)

    @property
    def complete(self) -> bool:
        """True when no trial was lost."""
        return all(o.succeeded for o in self.outcomes)

    def counts(self) -> Dict[str, int]:
        """status -> trial count, over :data:`OUTCOME_STATES`."""
        counts = {state: 0 for state in OUTCOME_STATES}
        for outcome in self.outcomes:
            counts[outcome.status] += 1
        return counts

    @property
    def quarantined(self) -> List[TrialOutcome]:
        """Trials lost to repeated errors or deadlines."""
        return [o for o in self.outcomes if o.status == "quarantined"]

    @property
    def crashed(self) -> List[TrialOutcome]:
        """Trials lost to worker crashes."""
        return [o for o in self.outcomes if o.status == "crashed"]

    @property
    def digest(self) -> Optional[str]:
        """Combined event-stream digest over successful trials.

        BLAKE2 over ``trial:per-trial-digest`` lines in trial order —
        the sweep-level fingerprint the kill-and-resume equivalence
        check compares. None unless every successful trial carried a
        digest (run with ``capture_digest=True``).
        """
        successful = [o for o in self.outcomes if o.succeeded]
        if not successful or any(o.digest is None for o in successful):
            return None
        combined = hashlib.blake2b(digest_size=16)
        for outcome in successful:
            combined.update(f"{outcome.trial}:{outcome.digest}\n".encode())
        return combined.hexdigest()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (CI artifacts, reports)."""
        return {
            "trials": len(self.outcomes),
            "counts": self.counts(),
            "complete": self.complete,
            "digest": self.digest,
            "losses": [
                {"trial": o.trial, "status": o.status,
                 "attempts": o.attempts, "error": o.error}
                for o in self.outcomes if not o.succeeded
            ],
            "resumed_trials": sum(
                1 for o in self.outcomes if o.from_journal
            ),
        }

    def __repr__(self) -> str:
        counts = self.counts()
        return (
            f"<SweepResult trials={len(self.outcomes)} "
            + " ".join(f"{k}={v}" for k, v in counts.items() if v)
            + ">"
        )


# ---------------------------------------------------------------------- #
# worker side


def _supervised_worker(
    conn: Connection,
    factory: ScenarioFactory,
    trial: int,
    timeout: float,
    allow_failures: bool,
    capture_digest: bool,
) -> None:
    """Run one trial in a forked worker and report through ``conn``.

    The result is pickled *here*, so an unpicklable result becomes a
    clear structured error instead of an opaque pool crash — the parent
    re-raises it with the trial index attached.
    """
    try:
        result = run_trial(factory, trial, timeout, allow_failures,
                           capture_digest=capture_digest)
        try:
            payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            conn.send((
                "error",
                f"trial {trial} returned an unpicklable result "
                f"({type(result).__name__}): {exc}",
            ))
        else:
            conn.send(("ok", payload))
    except BaseException as exc:
        try:
            conn.send(("error", f"trial {trial}: {exc}"
                       if not str(exc).startswith(f"trial {trial}") else
                       str(exc)))
        except Exception:
            pass  # parent will see the exit as a crash
    finally:
        conn.close()


@dataclass
class _Running:
    """Parent-side record of one in-flight worker."""

    process: multiprocessing.process.BaseProcess
    reader: Connection
    trial: int
    attempt: int
    started: float


# ---------------------------------------------------------------------- #
# supervisor


def run_supervised(
    factory: ScenarioFactory,
    trials: int,
    workers: Optional[int] = None,
    timeout: float = DEFAULT_TRIAL_TIMEOUT,
    allow_failures: bool = False,
    deadline: Optional[float] = DEFAULT_DEADLINE,
    retries: int = 1,
    journal: Optional[Union[str, TrialJournal]] = None,
    run_key: Optional[str] = None,
    capture_digest: bool = False,
) -> SweepResult:
    """Run a sweep under supervision; never lose the whole run.

    Args:
        factory: the scenario factory (as for ``run_page_loads``).
        trials: number of independent trials.
        workers: worker process cap (default: one per core). ``1`` — or
            a platform without ``fork`` — runs the serial fallback:
            same taxonomy and journaling, but no wall-clock kill and no
            crash containment (those need process isolation).
        timeout: virtual-time budget per trial (inside the simulation).
        allow_failures: forwarded to :func:`run_trial`.
        deadline: wall-clock seconds per *attempt*; a worker still
            running at its deadline is SIGKILLed and the attempt counts
            as failed. None disables the watchdog.
        retries: failed attempts retried at most this many times before
            the trial is quarantined.
        journal: a :class:`TrialJournal` or a path to one. Completed
            trials found in it are replayed, not re-run; every newly
            completed trial is appended (fsync'd) as it finishes.
        run_key: stamps/validates the journal (see
            :func:`repro.measure.journal.run_key`); ignored when
            ``journal`` is already a TrialJournal.
        capture_digest: capture each trial's event-stream digest (see
            :func:`run_trial`) so :attr:`SweepResult.digest` can prove
            kill-and-resume equivalence.

    Returns:
        A :class:`SweepResult` — partial results with a per-trial
        outcome taxonomy instead of all-or-nothing failure.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials!r}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries!r}")
    if deadline is not None and deadline <= 0:
        raise ValueError(f"deadline must be positive, got {deadline!r}")
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers!r}")

    if journal is not None and not isinstance(journal, TrialJournal):
        journal = TrialJournal(journal, key=run_key)

    outcomes: Dict[int, TrialOutcome] = {}
    pending: List[int] = []
    for trial in range(trials):
        if journal is not None and trial in journal:
            entry = journal.completed[trial]
            status, attempts, result = _unwrap_journal_payload(entry)
            outcomes[trial] = TrialOutcome(
                trial=trial, status=status, attempts=attempts, error=None,
                result=result, from_journal=True,
                digest=journal.digest_for(trial),
            )
        else:
            pending.append(trial)

    if pending:
        # The pool is used whenever it can be (even for one pending
        # trial): supervision — the watchdog kill, crash containment —
        # only works across a process boundary.
        if workers == 1 or not fork_available():
            _run_serial(factory, pending, timeout, allow_failures,
                        retries, capture_digest, journal, outcomes)
        else:
            _run_pool(factory, pending, workers, timeout, allow_failures,
                      deadline, retries, capture_digest, journal, outcomes)

    if journal is not None:
        journal.close()
    return SweepResult([outcomes[trial] for trial in range(trials)])


def _unwrap_journal_payload(entry: Any) -> Tuple[str, int, Any]:
    """Journal payloads are ``{"status", "attempts", "result"}`` wrappers
    (see :func:`_journal_record`); tolerate a bare result for journals
    written by other callers."""
    if isinstance(entry, dict) and "result" in entry:
        return (str(entry.get("status", "ok")),
                int(entry.get("attempts", 1)), entry["result"])
    return "ok", 1, entry


def _journal_record(journal: Optional[TrialJournal],
                    outcome: TrialOutcome) -> None:
    if journal is None or not outcome.succeeded:
        return
    journal.append(
        outcome.trial,
        {"status": outcome.status, "attempts": outcome.attempts,
         "result": outcome.result},
        digest=outcome.digest,
    )


def _success_outcome(trial: int, attempt: int, result: Any) -> TrialOutcome:
    return TrialOutcome(
        trial=trial,
        status="ok" if attempt == 1 else "retried",
        attempts=attempt,
        error=None,
        result=result,
        digest=getattr(result, "event_digest", None),
    )


def _run_serial(
    factory: ScenarioFactory,
    pending: List[int],
    timeout: float,
    allow_failures: bool,
    retries: int,
    capture_digest: bool,
    journal: Optional[TrialJournal],
    outcomes: Dict[int, TrialOutcome],
) -> None:
    """In-process fallback: same taxonomy, no kill/crash containment."""
    for trial in pending:
        error = None
        for attempt in range(1, retries + 2):
            try:
                result = run_trial(factory, trial, timeout, allow_failures,
                                   capture_digest=capture_digest)
            except ReproError as exc:
                error = str(exc)
                continue
            outcomes[trial] = _success_outcome(trial, attempt, result)
            _journal_record(journal, outcomes[trial])
            break
        else:
            outcomes[trial] = TrialOutcome(
                trial=trial, status="quarantined", attempts=retries + 1,
                error=error, result=None,
            )


def _run_pool(
    factory: ScenarioFactory,
    pending: List[int],
    workers: int,
    timeout: float,
    allow_failures: bool,
    deadline: Optional[float],
    retries: int,
    capture_digest: bool,
    journal: Optional[TrialJournal],
    outcomes: Dict[int, TrialOutcome],
) -> None:
    """The supervising pool: fork-per-trial with watchdog and retry.

    One process per in-flight trial (not a reusable pool): a crashed or
    killed worker then takes down exactly one attempt, and SIGKILL needs
    no cooperation from the victim. Page-load trials are seconds of work,
    so the fork cost is noise.
    """
    context = multiprocessing.get_context("fork")
    queue: List[Tuple[int, int]] = [(trial, 1) for trial in pending]
    running: List[_Running] = []

    def launch() -> None:
        while queue and len(running) < workers:
            trial, attempt = queue.pop(0)
            reader, writer = context.Pipe(duplex=False)
            process = context.Process(
                target=_supervised_worker,
                args=(writer, factory, trial, timeout, allow_failures,
                      capture_digest),
            )
            process.start()
            writer.close()  # parent keeps only the read end
            running.append(_Running(process, reader, trial, attempt,
                                    time.monotonic()))

    def retire(entry: _Running, failure: Optional[str],
               crashed: bool) -> None:
        running.remove(entry)
        entry.reader.close()
        if failure is None:
            return
        if entry.attempt <= retries:
            queue.append((entry.trial, entry.attempt + 1))
            return
        outcomes[entry.trial] = TrialOutcome(
            trial=entry.trial,
            status="crashed" if crashed else "quarantined",
            attempts=entry.attempt,
            error=failure,
            result=None,
        )

    try:
        while queue or running:
            launch()
            tick = 0.25
            if deadline is not None and running:
                now = time.monotonic()
                nearest = min(
                    entry.started + deadline - now for entry in running
                )
                tick = max(0.01, min(tick, nearest))
            connection_wait(
                [entry.reader for entry in running]
                + [entry.process.sentinel for entry in running],
                timeout=tick,
            )
            for entry in list(running):
                if entry.reader.poll():
                    try:
                        message = entry.reader.recv()
                    except (EOFError, OSError):
                        entry.process.join()
                        retire(entry, _crash_message(entry), crashed=True)
                        continue
                    entry.process.join()
                    if message[0] == "ok":
                        result = pickle.loads(message[1])
                        outcome = _success_outcome(
                            entry.trial, entry.attempt, result
                        )
                        outcomes[entry.trial] = outcome
                        _journal_record(journal, outcome)
                        retire(entry, None, crashed=False)
                    else:
                        retire(entry, message[1], crashed=False)
                elif not entry.process.is_alive():
                    entry.process.join()
                    retire(entry, _crash_message(entry), crashed=True)
                elif (deadline is not None
                      and time.monotonic() - entry.started > deadline):
                    entry.process.kill()
                    entry.process.join()
                    retire(
                        entry,
                        f"trial {entry.trial}: exceeded the {deadline}s "
                        f"wall-clock deadline (attempt {entry.attempt}); "
                        f"worker killed by the watchdog",
                        crashed=False,
                    )
    finally:
        for entry in running:
            entry.process.kill()
            entry.process.join()
            entry.reader.close()


def _crash_message(entry: _Running) -> str:
    code = entry.process.exitcode
    how = f"signal {-code}" if code is not None and code < 0 else \
        f"exit code {code}"
    return (
        f"trial {entry.trial}: worker process died without reporting "
        f"({how}, attempt {entry.attempt})"
    )
