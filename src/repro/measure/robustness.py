"""Robustness measurement: page loads under fault injection.

Page-load trials under a :class:`~repro.chaos.plan.FaultPlan` do not fit
:func:`~repro.measure.runner.run_page_loads` — there, a failed resource
is a measurement bug and raises. Under chaos the failures *are* the
measurement. :func:`run_chaos_trials` never raises on a degraded load:
every trial lands in exactly one outcome category and every failed fetch
in exactly one failure class, so PLT-degradation curves and failure
taxonomies come out of one pass.

Failure classes (per failed fetch):

* ``reset`` — connection reset mid-transfer (RST from a server fault or
  a chaos-injected transport reset);
* ``truncated`` — the body ended short of its advertised length;
* ``dns`` — resolution failed (SERVFAIL, NXDOMAIN, resolver timeout);
* ``timeout`` — a transport-level timer fired;
* ``closed`` — the connection closed with requests outstanding;
* ``other`` — anything else.

Load outcomes (per trial): ``success`` (everything loaded), ``degraded``
(onload fired with failed resources), ``hung`` (onload never fired
within the timeout).
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

from repro.browser.engine import PageLoadResult
from repro.errors import (
    ConnectionClosed,
    ConnectionReset,
    DnsError,
    ResetMidTransfer,
    TimeoutError_,
    TruncatedBody,
)
from repro.measure.stats import Sample
from repro.sim.simulator import Simulator

ScenarioFactory = Callable[[int], Tuple[Simulator, PageLoadResult]]

#: Stable category order for tables and artifacts.
FAILURE_CLASSES = ("reset", "truncated", "dns", "timeout", "closed", "other")

OUTCOMES = ("success", "degraded", "hung")

DEFAULT_TRIAL_TIMEOUT = 600.0


def classify_error(exc: Exception) -> str:
    """Map a fetch failure to its taxonomy class (see module docstring).

    Subclass order matters: ResetMidTransfer/TruncatedBody are checked
    before their transport/HTTP base classes. DNS resolver timeouts
    arrive as DnsError (the resolver's own retry budget expired), so
    they classify as ``dns``, not ``timeout``.
    """
    if isinstance(exc, TruncatedBody):
        return "truncated"
    if isinstance(exc, (ResetMidTransfer, ConnectionReset)):
        return "reset"
    if isinstance(exc, DnsError):
        return "dns"
    if isinstance(exc, TimeoutError_):
        return "timeout"
    if isinstance(exc, ConnectionClosed):
        return "closed"
    return "other"


class LoadOutcome(NamedTuple):
    """One chaos trial, classified."""

    trial: int
    outcome: str  # "success" | "degraded" | "hung"
    plt: Optional[float]  # None for hung loads
    resources_loaded: int
    resources_failed: int
    #: failure class -> count, over this load's failed fetches.
    failures: Dict[str, int]
    result: PageLoadResult


class RobustnessSummary:
    """Aggregate of one scenario's chaos trials.

    Attributes:
        outcomes: the per-trial :class:`LoadOutcome` records.
        plt: Sample over completed (success + degraded) loads' PLTs.
        failure_counts: failure class -> total count across trials.
    """

    def __init__(self, outcomes: List[LoadOutcome]) -> None:
        self.outcomes = outcomes
        self.plt = Sample(
            o.plt for o in outcomes if o.plt is not None
        ) if any(o.plt is not None for o in outcomes) else None
        self.failure_counts: Dict[str, int] = {c: 0 for c in FAILURE_CLASSES}
        for outcome in outcomes:
            for cls, count in outcome.failures.items():
                self.failure_counts[cls] = (
                    self.failure_counts.get(cls, 0) + count
                )

    @property
    def trials(self) -> int:
        return len(self.outcomes)

    def count(self, outcome: str) -> int:
        """How many trials ended with ``outcome``."""
        return sum(1 for o in self.outcomes if o.outcome == outcome)

    @property
    def success_rate(self) -> float:
        """Fraction of trials that loaded every resource."""
        return self.count("success") / len(self.outcomes)

    @property
    def completion_rate(self) -> float:
        """Fraction of trials whose onload fired (success or degraded)."""
        return 1.0 - self.count("hung") / len(self.outcomes)

    def to_dict(self) -> dict:
        """JSON-ready summary (the bench artifact's per-scenario record)."""
        return {
            "trials": self.trials,
            "outcomes": {name: self.count(name) for name in OUTCOMES},
            "success_rate": self.success_rate,
            "completion_rate": self.completion_rate,
            "failure_counts": dict(self.failure_counts),
            "plt": None if self.plt is None else {
                "mean": self.plt.mean,
                "p50": self.plt.percentile(50),
                "p95": self.plt.percentile(95),
                "n": len(self.plt),
            },
        }

    def __repr__(self) -> str:
        return (
            f"<RobustnessSummary trials={self.trials} "
            f"success={self.count('success')} "
            f"degraded={self.count('degraded')} hung={self.count('hung')}>"
        )


def classify_result(
    trial: int, result: PageLoadResult
) -> LoadOutcome:
    """Classify one (possibly incomplete) page-load result."""
    failures: Dict[str, int] = {}
    for __, exc in result.failures:
        cls = classify_error(exc)
        failures[cls] = failures.get(cls, 0) + 1
    # Failures recorded before the structured-failure channel existed
    # (or from callbacks without exceptions) still count, as "other".
    unclassified = result.resources_failed - sum(failures.values())
    if unclassified > 0:
        failures["other"] = failures.get("other", 0) + unclassified
    if not result.complete:
        outcome = "hung"
        plt = None
    elif result.resources_failed:
        outcome = "degraded"
        plt = result.page_load_time
    else:
        outcome = "success"
        plt = result.page_load_time
    return LoadOutcome(
        trial=trial, outcome=outcome, plt=plt,
        resources_loaded=result.resources_loaded,
        resources_failed=result.resources_failed,
        failures=failures, result=result,
    )


def run_chaos_trial(
    factory: ScenarioFactory,
    trial: int,
    timeout: float = DEFAULT_TRIAL_TIMEOUT,
) -> LoadOutcome:
    """Run one trial under faults; classify instead of raising.

    A load that never reaches onload inside ``timeout`` virtual seconds
    is a ``hung`` outcome, not an error — under a long outage that is a
    legitimate measurement.
    """
    sim, result = factory(trial)
    sim.run_until(lambda: result.complete, timeout=timeout)
    result.metrics = sim.metrics
    return classify_result(trial, result)


def run_chaos_trials(
    factory: ScenarioFactory,
    trials: int,
    timeout: float = DEFAULT_TRIAL_TIMEOUT,
    journal=None,
    run_key: Optional[str] = None,
) -> RobustnessSummary:
    """Run ``trials`` independent page loads under a fault plan.

    Args:
        factory: builds one trial world (simulator + live result); the
            chaos plan is the factory's business — typically via
            ``ShellStack.add_chaos``.
        trials: how many independent loads.
        timeout: virtual-time budget per trial before it counts as hung.
        journal: a :class:`~repro.measure.journal.TrialJournal` or path.
            Completed trials are replayed from it instead of re-run, and
            each newly classified :class:`LoadOutcome` is checkpointed
            (fsync'd) as it lands — a killed robustness sweep resumes to
            the identical summary, since trials are deterministic.
        run_key: stamps/validates a path-given journal (see
            :func:`repro.measure.journal.run_key`).
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials!r}")
    if journal is not None:
        from repro.measure.journal import TrialJournal

        if not isinstance(journal, TrialJournal):
            journal = TrialJournal(journal, key=run_key)
    outcomes: List[LoadOutcome] = []
    for trial in range(trials):
        if journal is not None and trial in journal:
            outcomes.append(journal.completed[trial])
            continue
        outcome = run_chaos_trial(factory, trial, timeout)
        if journal is not None:
            journal.append(trial, outcome)
        outcomes.append(outcome)
    if journal is not None:
        journal.close()
    return RobustnessSummary(outcomes)
