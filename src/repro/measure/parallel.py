"""Parallel trial execution over a process pool.

Every measurement in the paper is built from *independent* simulated page
loads — Figure 2's corpus CDF, Table 1's 100-load distributions, Table 2's
nine-configuration grid. Independence is what makes them honest (no TCP
state or cache leaks between loads) and it is also what makes them
embarrassingly parallel: each trial owns its whole world (simulator,
namespaces, browser), so trials can run on separate cores with no shared
state at all.

:class:`ParallelRunner` fans trials out over a ``multiprocessing`` fork
pool and preserves the serial runner's contract exactly:

* **Determinism** — seeding lives in the scenario factory (``factory(i)``
  seeds from the trial index), and results are collected in trial-index
  order, so the returned :class:`~repro.measure.stats.Sample` is
  bit-identical to the serial runner's.
* **Failure semantics** — a failing trial raises the same
  :class:`~repro.errors.ReproError` with the same wording (both paths
  share :func:`~repro.measure.runner.run_trial`), and the error surfaced
  is the one with the lowest trial index, matching the serial
  first-failure order.
* **Graceful degradation** — ``workers=1``, ``trials == 1``, or a
  platform without ``fork`` all fall back to the serial in-process path.

Scenario factories are usually closures (over a recorded site, a machine
profile, link parameters) and closures do not pickle. The pool therefore
uses the *fork* start method and passes the factory to workers through the
pool initializer: under fork, initializer arguments are inherited by the
child's memory image rather than pickled, so any factory the serial runner
accepts works unchanged. Workers execute a module-level trampoline
(:func:`_call_task`), which is picklable by qualified name — the only
object that ever crosses the pipe besides trial indices and results.

Why trial-level and not event-level parallelism: the simulator's event
loop is intrinsically sequential (each event may schedule the next), and
splitting one load across cores would break the strict ``(time, seq)``
causal order that makes runs reproducible. Parallelising *across* trials
keeps every simulated world single-threaded and bit-exact while scaling
throughput with cores — the same shape as ERRANT's batch emulation sweeps.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, List, Optional, Sequence

from repro.errors import ReproError
from repro.measure.runner import (
    DEFAULT_TRIAL_TIMEOUT,
    ScenarioFactory,
    ScenarioResult,
    run_page_loads,
    run_trial,
)
from repro.measure.stats import Sample

__all__ = [
    "ParallelRunner",
    "default_workers",
    "fork_available",
    "parallel_map",
    "run_page_loads_parallel",
]

#: Per-worker task state, installed by :func:`_init_worker` at pool start.
#: Module-level so the trampoline survives pickling by qualified name.
_POOL_TASK: Optional[Callable[[int], Any]] = None


def _init_worker(task: Callable[[int], Any]) -> None:
    """Pool initializer: stash the (fork-inherited) task in the worker."""
    global _POOL_TASK
    _POOL_TASK = task


def _call_task(index: int) -> Any:
    """Module-level trampoline the pool actually pickles and calls.

    Failures cross the pipe pre-digested: a task exception is tagged
    with its index (``exc.trial_index``, surviving pickling via the
    exception's ``__dict__``) so the caller knows *which* trial failed
    even when the message does not say; an unpicklable return value
    becomes a clear :class:`ReproError` here, in the worker, instead of
    a raw ``PicklingError`` escaping the pool's result plumbing.
    """
    assert _POOL_TASK is not None, "worker used before initialization"
    try:
        result = _POOL_TASK(index)
    except Exception as exc:
        exc.trial_index = index
        raise
    try:
        pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise ReproError(
            f"trial {index} returned an unpicklable result "
            f"({type(result).__name__}): {exc}"
        ) from None
    return result


def fork_available() -> bool:
    """Whether this platform supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def default_workers() -> int:
    """Worker count when none is given: one per available core."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # platforms without sched_getaffinity
        return max(1, os.cpu_count() or 1)


def parallel_map(
    task: Callable[[int], Any],
    count: int,
    workers: int,
    chunksize: int = 1,
    indices: Optional[Sequence[int]] = None,
    on_result: Optional[Callable[[int, Any], None]] = None,
) -> List[Any]:
    """Evaluate ``[task(0), ..., task(count - 1)]``, possibly in parallel.

    The generic primitive under :class:`ParallelRunner` (and the
    ``mm-corpus --workers`` flag): results come back in index order, an
    exception raised by ``task`` propagates for the lowest failing index,
    and the serial path is used when parallelism cannot help (or the
    platform lacks fork, which closure-carrying tasks require).

    Args:
        task: called with each index; may be a closure (fork-inherited).
        count: number of indices.
        workers: pool size cap; effective size is ``min(workers, count)``.
        chunksize: indices handed to a worker per dispatch — raise it for
            very cheap tasks to amortise pipe traffic.
        indices: run exactly these indices instead of ``range(count)``
            (a resumed run's remaining work); results come back in the
            order given.
        on_result: called in the *parent* as ``on_result(index, result)``
            when each result arrives — the checkpoint hook: a caller
            journaling completions loses at most the in-flight tasks to
            a kill, not everything. Completion order, not index order.

    Raises:
        ReproError: if a worker process dies (the pool is then broken).
        Exception: whatever ``task`` itself raised, re-raised for the
            lowest failing index.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count!r}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers!r}")
    todo = list(range(count)) if indices is None else list(indices)
    workers = min(workers, len(todo))
    if workers <= 1 or not fork_available():
        results = []
        for index in todo:
            try:
                result = task(index)
            except Exception as exc:
                exc.trial_index = index
                raise
            if on_result is not None:
                on_result(index, result)
            results.append(result)
        return results
    context = multiprocessing.get_context("fork")
    try:
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_init_worker,
            initargs=(task,),
        ) as pool:
            if indices is None and on_result is None:
                return list(pool.map(_call_task, range(count), chunksize=chunksize))
            # Explicit work-list or checkpoint hook: submit per index and
            # harvest in completion order so every finished result is
            # reported (and journalable) before any straggler finishes.
            futures = {pool.submit(_call_task, i): i for i in todo}
            collected: dict = {}
            failures: dict = {}
            for future in as_completed(futures):
                index = futures[future]
                try:
                    result = future.result()
                except Exception as exc:  # re-raised below, lowest first
                    failures[index] = exc
                    continue
                if on_result is not None:
                    on_result(index, result)
                collected[index] = result
            if failures:
                raise failures[min(failures)]
            return [collected[i] for i in todo]
    except BrokenProcessPool as exc:
        raise ReproError(
            f"parallel worker process died unexpectedly "
            f"(workers={workers}, count={count}): {exc}"
        ) from exc


class ParallelRunner:
    """Run independent page-load trials across a process pool.

    Drop-in counterpart to :func:`~repro.measure.runner.run_page_loads`:
    same arguments, same :class:`~repro.measure.runner.ScenarioResult`,
    same errors — the only difference is wall-clock time.

    Args:
        workers: pool size; defaults to the number of available cores.
            ``workers=1`` runs serially in-process (no pool, no fork).

    Example:
        >>> from repro.measure.parallel import ParallelRunner
        >>> ParallelRunner(workers=1).workers
        1
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is None:
            workers = default_workers()
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        self.workers = workers

    def run_page_loads(
        self,
        factory: ScenarioFactory,
        trials: int,
        timeout: float = DEFAULT_TRIAL_TIMEOUT,
        allow_failures: bool = False,
    ) -> ScenarioResult:
        """Run ``trials`` independent page loads, fanned over the pool.

        Results (and therefore the PLT :class:`Sample`) are ordered by
        trial index regardless of completion order, so statistics are
        bit-identical to the serial runner's for the same factory.

        Observability rides along: each trial's metrics registry (plain
        data, hence picklable) returns with its result, so
        ``ScenarioResult.metrics`` / ``merged_metrics()`` re-assemble in
        trial order exactly as under the serial runner.

        Raises:
            ReproError: hung load or failed resources (lowest failing
                trial index wins, as in the serial runner), or a crashed
                worker process.
        """
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials!r}")
        if min(self.workers, trials) <= 1 or not fork_available():
            return run_page_loads(factory, trials, timeout, allow_failures)

        def task(trial: int):
            return run_trial(factory, trial, timeout, allow_failures)

        results = parallel_map(task, trials, workers=self.workers)
        return ScenarioResult(Sample(r.page_load_time for r in results), results)

    def run_supervised(
        self,
        factory: ScenarioFactory,
        trials: int,
        timeout: float = DEFAULT_TRIAL_TIMEOUT,
        allow_failures: bool = False,
        deadline: Optional[float] = None,
        retries: int = 1,
        journal=None,
        run_key: Optional[str] = None,
        capture_digest: bool = False,
    ):
        """Run the sweep under supervision (watchdog, retry, resume).

        The resilient counterpart to :meth:`run_page_loads`: per-trial
        wall-clock deadlines, crash detection, bounded retry with
        quarantine, and journal checkpoint/resume — returning a partial
        :class:`~repro.measure.supervise.SweepResult` with a per-trial
        outcome taxonomy instead of raising on the first loss. See
        :func:`repro.measure.supervise.run_supervised`.
        """
        from repro.measure.supervise import run_supervised

        return run_supervised(
            factory,
            trials,
            workers=self.workers,
            timeout=timeout,
            allow_failures=allow_failures,
            deadline=deadline,
            retries=retries,
            journal=journal,
            run_key=run_key,
            capture_digest=capture_digest,
        )

    def __repr__(self) -> str:
        return f"ParallelRunner(workers={self.workers})"


def run_page_loads_parallel(
    factory: ScenarioFactory,
    trials: int,
    workers: Optional[int] = None,
    timeout: float = DEFAULT_TRIAL_TIMEOUT,
    allow_failures: bool = False,
) -> ScenarioResult:
    """Functional shorthand for ``ParallelRunner(workers).run_page_loads``."""
    return ParallelRunner(workers).run_page_loads(
        factory, trials, timeout=timeout, allow_failures=allow_failures
    )
