"""Measurement harness: trials, statistics, and report formatting.

:class:`~repro.measure.stats.Sample` holds a set of measurements (page
load times, usually) and answers the questions every table and figure in
the paper asks: mean, standard deviation, percentiles, CDFs, and percent
differences. :func:`~repro.measure.runner.run_page_loads` runs N
independent page-load trials of a scenario factory serially;
:class:`~repro.measure.parallel.ParallelRunner` fans the same trials out
over a process pool with bit-identical statistics;
:mod:`~repro.measure.report` renders the paper's tables and ASCII CDF
plots. :func:`~repro.measure.supervise.run_supervised` is the resilient
sweep: wall-clock watchdog, bounded retry with quarantine, crash
detection, and :class:`~repro.measure.journal.TrialJournal`
checkpoint/resume.
"""

from repro.measure.compare import Comparison, compare_page_loads
from repro.measure.journal import TrialJournal, run_key
from repro.measure.parallel import (
    ParallelRunner,
    parallel_map,
    run_page_loads_parallel,
)
from repro.measure.supervise import (
    SweepResult,
    TrialOutcome,
    run_supervised,
)
from repro.measure.report import ascii_cdf, format_table, percent_diff
from repro.measure.robustness import (
    FAILURE_CLASSES,
    LoadOutcome,
    RobustnessSummary,
    classify_error,
    run_chaos_trials,
)
from repro.measure.runner import ScenarioResult, run_page_loads, run_trial
from repro.measure.stats import Sample, StreamingQuantiles, quantiles_of

__all__ = [
    "Comparison",
    "FAILURE_CLASSES",
    "LoadOutcome",
    "ParallelRunner",
    "RobustnessSummary",
    "Sample",
    "ScenarioResult",
    "StreamingQuantiles",
    "SweepResult",
    "TrialJournal",
    "TrialOutcome",
    "ascii_cdf",
    "classify_error",
    "compare_page_loads",
    "format_table",
    "parallel_map",
    "percent_diff",
    "quantiles_of",
    "run_chaos_trials",
    "run_key",
    "run_page_loads",
    "run_page_loads_parallel",
    "run_supervised",
    "run_trial",
]
