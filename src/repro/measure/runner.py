"""Trial runners.

Each trial is an independent simulation: the scenario factory gets a trial
index, builds a fresh world (simulator, shells, browser), starts a page
load, and hands back the live result. The runner drives the simulator to
completion and collects page load times. Independent trials keep
measurements honest — no TCP state, caches, or queue occupancy leak
between loads, matching how the paper restarts the browser per load.
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple, Tuple

from repro.browser.engine import PageLoadResult
from repro.errors import ReproError
from repro.measure.stats import Sample
from repro.sim.simulator import Simulator

#: A scenario factory returns the trial's simulator and its live result.
ScenarioFactory = Callable[[int], Tuple[Simulator, PageLoadResult]]

#: Wall-clock cap per trial, virtual seconds.
DEFAULT_TRIAL_TIMEOUT = 600.0


class ScenarioResult(NamedTuple):
    """All trials of one scenario."""

    sample: Sample
    results: List[PageLoadResult]

    @property
    def plt(self) -> Sample:
        """Alias: the page-load-time sample (seconds)."""
        return self.sample

    @property
    def metrics(self) -> List[object]:
        """Per-trial metrics registries, in trial order (None entries for
        uninstrumented trials)."""
        return [getattr(r, "metrics", None) for r in self.results]

    def merged_metrics(self):
        """All trials' registries merged under ``trial{i}.`` prefixes.

        Returns None when no trial carried a registry.
        """
        per_trial = self.metrics
        if not any(registry is not None for registry in per_trial):
            return None
        from repro.obs.registry import MetricsRegistry

        return MetricsRegistry.merge_trials(per_trial)


def run_trial(
    factory: ScenarioFactory,
    trial: int,
    timeout: float = DEFAULT_TRIAL_TIMEOUT,
    allow_failures: bool = False,
    capture_digest: bool = False,
) -> PageLoadResult:
    """Build and drive one trial to completion.

    The single-trial unit shared by the serial runner below, the
    process-pool trampoline in :mod:`repro.measure.parallel`, and the
    supervised sweep in :mod:`repro.measure.supervise` — keeping every
    path identical in behaviour and error wording by construction.

    Args:
        capture_digest: install an event-stream digest
            (:class:`~repro.analysis.sanitizer.EventStreamDigest`) on the
            trial's simulator and stash its hex on
            ``result.event_digest`` — the per-trial fingerprint that lets
            a journal-resumed sweep prove byte-equivalence to an
            uninterrupted run.

    Raises:
        ReproError: on a hung load, or failed resources unless allowed.
    """
    sim, result = factory(trial)
    digest = None
    if capture_digest:
        from repro.analysis.sanitizer import EventStreamDigest

        digest = EventStreamDigest()
        sim.set_trace(digest)
    sim.run_until(lambda: result.complete, timeout=timeout)
    # Metrics ride along on the result so parallel trials (which pickle
    # results back from worker processes) keep their registries.
    result.metrics = sim.metrics
    if digest is not None:
        result.event_digest = digest.hexdigest
    if not result.complete:
        raise ReproError(
            f"trial {trial}: page load did not finish within "
            f"{timeout} virtual seconds "
            f"(loaded={result.resources_loaded}, "
            f"failed={result.resources_failed})"
        )
    if result.resources_failed and not allow_failures:
        raise ReproError(
            f"trial {trial}: {result.resources_failed} resources "
            f"failed: {result.errors[:3]}"
        )
    return result


def run_page_loads(
    factory: ScenarioFactory,
    trials: int,
    timeout: float = DEFAULT_TRIAL_TIMEOUT,
    allow_failures: bool = False,
) -> ScenarioResult:
    """Run ``trials`` independent page loads and collect their PLTs.

    Args:
        factory: builds one trial world; receives the trial index (use it
            to vary seeds).
        trials: how many independent loads.
        timeout: virtual-time budget per trial.
        allow_failures: when False (default), a load with failed resources
            raises — silent partial loads would corrupt the measurement.

    Raises:
        ReproError: on a hung load, or failed resources unless allowed.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials!r}")
    results: List[PageLoadResult] = []
    for trial in range(trials):
        results.append(run_trial(factory, trial, timeout, allow_failures))
    return ScenarioResult(Sample(r.page_load_time for r in results), results)
