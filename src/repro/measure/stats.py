"""Sample statistics for measurement results."""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple


class Sample:
    """An immutable batch of measurements with the usual statistics.

    Values are stored sorted; all statistics are deterministic functions
    of the sample, so a bench that prints them is reproducible bit-for-bit
    given the same simulation seed.
    """

    def __init__(self, values: Iterable[float]) -> None:
        self._values = sorted(float(v) for v in values)
        if not self._values:
            raise ValueError("empty sample")

    @property
    def values(self) -> List[float]:
        """The sorted measurements (copy)."""
        return list(self._values)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def mean(self) -> float:
        """Arithmetic mean."""
        return sum(self._values) / len(self._values)

    @property
    def stddev(self) -> float:
        """Sample standard deviation (n-1); 0 for singletons."""
        n = len(self._values)
        if n < 2:
            return 0.0
        mean = self.mean
        return math.sqrt(
            sum((v - mean) ** 2 for v in self._values) / (n - 1)
        )

    @property
    def minimum(self) -> float:
        """Smallest value."""
        return self._values[0]

    @property
    def maximum(self) -> float:
        """Largest value."""
        return self._values[-1]

    @property
    def median(self) -> float:
        """50th percentile."""
        return self.percentile(50.0)

    def percentile(self, p: float) -> float:
        """Linear-interpolation percentile, ``p`` in [0, 100]."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile out of range: {p!r}")
        if len(self._values) == 1:
            return self._values[0]
        rank = (p / 100.0) * (len(self._values) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return self._values[low]
        frac = rank - low
        return self._values[low] * (1 - frac) + self._values[high] * frac

    def cdf(self) -> List[Tuple[float, float]]:
        """The empirical CDF as (value, cumulative proportion) points."""
        n = len(self._values)
        return [(v, (i + 1) / n) for i, v in enumerate(self._values)]

    def relative_stddev(self) -> float:
        """Standard deviation as a fraction of the mean (Table 1's
        'within 1.6% of their means')."""
        mean = self.mean
        if mean == 0.0:
            return 0.0
        return self.stddev / mean

    def __repr__(self) -> str:
        return (
            f"<Sample n={len(self)} mean={self.mean:.4f} "
            f"sd={self.stddev:.4f} p50={self.median:.4f}>"
        )


def percent_difference(a: float, b: float) -> float:
    """(a - b) / b in percent — how much larger ``a`` is than ``b``."""
    if b == 0.0:
        raise ValueError("reference value is zero")
    return (a - b) / b * 100.0


class StreamingQuantiles:
    """Accumulate observations one at a time; report exact quantiles.

    The heavy-traffic runner feeds thousands of per-client latencies in
    whatever order clients *complete*; quantiles must nevertheless be a
    pure function of the observation multiset, so values are kept and
    sorted lazily at query time (exact-sort, not an approximate sketch —
    load levels here are 10^2..10^4 observations, where exactness is
    cheap and bit-reproducibility is the contract).

    Shards produced by parallel workers combine with :meth:`merge`;
    because quantiles are order-insensitive, ``merge`` of per-worker
    shards equals the serial accumulator over the concatenated stream.
    """

    __slots__ = ("_values", "_dirty", "_total")

    def __init__(self, values: Iterable[float] = ()) -> None:
        self._values: List[float] = [float(v) for v in values]
        self._dirty = True
        self._total = math.fsum(self._values)

    def add(self, value: float) -> None:
        """Fold one observation in."""
        value = float(value)
        self._values.append(value)
        self._total += value
        self._dirty = True

    def extend(self, values: Iterable[float]) -> None:
        """Fold many observations in."""
        for value in values:
            self.add(value)

    def merge(self, other: "StreamingQuantiles") -> "StreamingQuantiles":
        """Fold another accumulator's observations into this one.

        Returns self, so per-worker shards reduce with a plain loop::

            combined = StreamingQuantiles()
            for shard in shards:
                combined.merge(shard)
        """
        self._values.extend(other._values)
        self._total += other._total
        self._dirty = True
        return self

    @classmethod
    def merged(
        cls, shards: Iterable["StreamingQuantiles"]
    ) -> "StreamingQuantiles":
        """A fresh accumulator holding every shard's observations."""
        combined = cls()
        for shard in shards:
            combined.merge(shard)
        return combined

    def _sorted(self) -> List[float]:
        if self._dirty:
            self._values.sort()
            self._dirty = False
        return self._values

    def __len__(self) -> int:
        return len(self._values)

    @property
    def count(self) -> int:
        """Number of observations folded in."""
        return len(self._values)

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        if not self._values:
            return 0.0
        return self._total / len(self._values)

    @property
    def minimum(self) -> float:
        """Smallest observation.

        Raises:
            ValueError: when empty.
        """
        if not self._values:
            raise ValueError("no observations")
        return self._sorted()[0]

    @property
    def maximum(self) -> float:
        """Largest observation.

        Raises:
            ValueError: when empty.
        """
        if not self._values:
            raise ValueError("no observations")
        return self._sorted()[-1]

    def quantile(self, q: float) -> float:
        """Exact linear-interpolation quantile, ``q`` in [0, 1].

        Same convention as :meth:`Sample.percentile` (numpy's default
        ``linear`` method), so ``quantile(0.5)`` of ``[1, 2, 3, 4]`` is
        2.5.

        Raises:
            ValueError: on an empty accumulator or ``q`` out of range.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q!r}")
        values = self._sorted()
        if not values:
            raise ValueError("no observations")
        if len(values) == 1:
            return values[0]
        rank = q * (len(values) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return values[low]
        frac = rank - low
        return values[low] * (1 - frac) + values[high] * frac

    @property
    def p50(self) -> float:
        """Median."""
        return self.quantile(0.50)

    @property
    def p90(self) -> float:
        """90th percentile."""
        return self.quantile(0.90)

    @property
    def p99(self) -> float:
        """99th percentile."""
        return self.quantile(0.99)

    @property
    def p999(self) -> float:
        """99.9th percentile."""
        return self.quantile(0.999)

    def summary(self) -> dict:
        """JSON-shaped digest (stable keys; None quantiles when empty)."""
        if not self._values:
            return {
                "count": 0, "mean": None, "min": None, "max": None,
                "p50": None, "p90": None, "p99": None, "p999": None,
            }
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "p999": self.p999,
        }

    def to_sample(self) -> Sample:
        """The observations as an immutable :class:`Sample`.

        Raises:
            ValueError: when empty (Sample refuses empty batches).
        """
        return Sample(self._values)

    def __repr__(self) -> str:
        if not self._values:
            return "<StreamingQuantiles n=0>"
        return (
            f"<StreamingQuantiles n={self.count} p50={self.p50:.4f} "
            f"p99={self.p99:.4f} p999={self.p999:.4f}>"
        )


def quantiles_of(
    values: Sequence[float], qs: Iterable[float] = (0.5, 0.99, 0.999)
) -> List[Optional[float]]:
    """Exact quantiles of a value sequence (None entries when empty)."""
    if not values:
        return [None for __ in qs]
    acc = StreamingQuantiles(values)
    return [acc.quantile(q) for q in qs]
