"""Sample statistics for measurement results."""

from __future__ import annotations

import math
from typing import Iterable, List, Tuple


class Sample:
    """An immutable batch of measurements with the usual statistics.

    Values are stored sorted; all statistics are deterministic functions
    of the sample, so a bench that prints them is reproducible bit-for-bit
    given the same simulation seed.
    """

    def __init__(self, values: Iterable[float]) -> None:
        self._values = sorted(float(v) for v in values)
        if not self._values:
            raise ValueError("empty sample")

    @property
    def values(self) -> List[float]:
        """The sorted measurements (copy)."""
        return list(self._values)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def mean(self) -> float:
        """Arithmetic mean."""
        return sum(self._values) / len(self._values)

    @property
    def stddev(self) -> float:
        """Sample standard deviation (n-1); 0 for singletons."""
        n = len(self._values)
        if n < 2:
            return 0.0
        mean = self.mean
        return math.sqrt(
            sum((v - mean) ** 2 for v in self._values) / (n - 1)
        )

    @property
    def minimum(self) -> float:
        """Smallest value."""
        return self._values[0]

    @property
    def maximum(self) -> float:
        """Largest value."""
        return self._values[-1]

    @property
    def median(self) -> float:
        """50th percentile."""
        return self.percentile(50.0)

    def percentile(self, p: float) -> float:
        """Linear-interpolation percentile, ``p`` in [0, 100]."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile out of range: {p!r}")
        if len(self._values) == 1:
            return self._values[0]
        rank = (p / 100.0) * (len(self._values) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return self._values[low]
        frac = rank - low
        return self._values[low] * (1 - frac) + self._values[high] * frac

    def cdf(self) -> List[Tuple[float, float]]:
        """The empirical CDF as (value, cumulative proportion) points."""
        n = len(self._values)
        return [(v, (i + 1) / n) for i, v in enumerate(self._values)]

    def relative_stddev(self) -> float:
        """Standard deviation as a fraction of the mean (Table 1's
        'within 1.6% of their means')."""
        mean = self.mean
        if mean == 0.0:
            return 0.0
        return self.stddev / mean

    def __repr__(self) -> str:
        return (
            f"<Sample n={len(self)} mean={self.mean:.4f} "
            f"sd={self.stddev:.4f} p50={self.median:.4f}>"
        )


def percent_difference(a: float, b: float) -> float:
    """(a - b) / b in percent — how much larger ``a`` is than ``b``."""
    if b == 0.0:
        raise ValueError("reference value is zero")
    return (a - b) / b * 100.0
