"""The load runner: one simulated world, hundreds-plus concurrent clients.

:class:`LoadSession` builds the shared world — one ReplayShell serving the
population's merged recording, one LinkShell, one DelayShell — then
schedules every client's spawn at its pre-materialised arrival time. All
clients share the innermost namespace and its transport (they are "users
behind the same emulated bottleneck"), while the replay side is the
paper's multi-origin server farm with bounded worker pools per origin.

Because arrivals and the client plan are drawn *before* the world runs
(see :mod:`repro.load.arrivals` / :mod:`repro.load.population`), and
because per-client outcomes are collected from client objects in
client-index order *after* the run, nothing about a
:class:`LoadResult` depends on the order clients happen to complete —
the whole run is a pure function of ``(scenario, seed)``.

Per-client metrics are page load time (browsers), time-to-interactive
(api clients), and fetch time (object fetches); server-side tail latency
comes from the §7 worker-pool probes (``http.server.*.latency`` sojourn
histograms, ``.occupancy``/``.backlog`` step series) when a metrics
registry is attached. Both sides fold into
:class:`~repro.measure.stats.StreamingQuantiles` for p50/p99/p999.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.browser import Browser
from repro.apps.apiclient import ApiClient
from repro.core import HostMachine, ShellStack
from repro.dns.resolver import StubResolver
from repro.errors import ReproError
from repro.http.client import FailableCallback, HttpClient
from repro.http.message import Headers, HttpRequest
from repro.load.arrivals import ARRIVALS_STREAM, ArrivalProcess
from repro.load.population import POPULATION_STREAM, ClientPlan, Population
from repro.measure.stats import StreamingQuantiles
from repro.net.address import Endpoint
from repro.sim.simulator import Simulator

__all__ = [
    "ClientRecord",
    "LoadResult",
    "LoadScenario",
    "LoadSession",
    "run_load",
]

#: Default virtual-time budget for one load level (seconds).
DEFAULT_TIMEOUT = 600.0


class LoadScenario:
    """Everything that defines one load level, minus the seed.

    Args:
        population: who arrives and what they fetch.
        arrivals: when they arrive (rate lives here).
        clients: how many arrive in total.
        link_mbps: shared access-link rate, both directions. The default
            is deliberately fat (1 Gbit/s): capacity experiments want the
            *server worker pools* to be the saturating resource, not the
            emulated link. Narrow it to study link-bound regimes.
        one_way_delay: DelayShell one-way latency (seconds).
        server_workers: concurrent request slots per replay origin (the
            paper's Apache prefork pool; the knee-position knob).
        timeout: virtual-time budget for the run; clients still
            unfinished at the deadline are recorded as failed.
    """

    def __init__(
        self,
        population: Population,
        arrivals: ArrivalProcess,
        clients: int,
        link_mbps: float = 1000.0,
        one_way_delay: float = 0.020,
        server_workers: int = 2,
        timeout: float = DEFAULT_TIMEOUT,
    ) -> None:
        if clients < 1:
            raise ReproError(f"clients must be >= 1, got {clients!r}")
        self.population = population
        self.arrivals = arrivals
        self.clients = clients
        self.link_mbps = float(link_mbps)
        self.one_way_delay = float(one_way_delay)
        self.server_workers = int(server_workers)
        self.timeout = float(timeout)

    @property
    def offered_rate(self) -> float:
        """Offered load in clients/s (the arrival process's rate)."""
        return getattr(self.arrivals, "rate", 0.0)

    def describe(self) -> dict:
        """JSON-shaped parameters (artifact metadata)."""
        return {
            "clients": self.clients,
            "arrivals": self.arrivals.describe(),
            "population": self.population.describe(),
            "link_mbps": self.link_mbps,
            "one_way_delay": self.one_way_delay,
            "server_workers": self.server_workers,
            "timeout": self.timeout,
        }

    def __repr__(self) -> str:
        return (
            f"<LoadScenario clients={self.clients} "
            f"arrivals={self.arrivals!r} workers={self.server_workers}>"
        )


class ClientRecord(Tuple[int, str, str, float, float, bool, str]):
    """One client's outcome:
    ``(index, kind, target, arrival, duration, ok, detail)``.

    ``duration`` is -1.0 for clients that never finished (timeout).
    A tuple subclass, so records pickle cheaply across fork workers and
    serialise to JSON as plain lists.
    """

    __slots__ = ()

    def __new__(
        cls, index: int, kind: str, target: str, arrival: float,
        duration: float, ok: bool, detail: str = "",
    ) -> "ClientRecord":
        return super().__new__(
            cls, (index, kind, target, arrival, duration, ok, detail))

    def __getnewargs__(self):
        # tuple's default pickle passes the whole tuple as one argument;
        # spread it back into __new__'s signature instead.
        return tuple(self)

    index = property(lambda self: self[0])
    kind = property(lambda self: self[1])
    target = property(lambda self: self[2])
    arrival = property(lambda self: self[3])
    duration = property(lambda self: self[4])
    ok = property(lambda self: self[5])
    detail = property(lambda self: self[6])

    def __repr__(self) -> str:
        status = "ok" if self[5] else f"FAILED({self[6]})"
        return (
            f"ClientRecord({self[0]}, {self[1]}, {self[2]}, "
            f"t={self[3]:.3f}, d={self[4]:.3f}, {status})"
        )


def _sum_step_series(
    series_list: List[List[Tuple[float, float]]],
) -> List[Tuple[float, float]]:
    """Sum per-server step series into one farm-wide step series.

    Each input is one origin's absolute-valued step function (occupancy
    or backlog), points in time order. The sum walks all points merged by
    (time, server index) — the stable sort keeps each server's own points
    chronological, and equal-time ties across servers resolve by server
    index, so the output is deterministic — emitting a point whenever the
    total changes.
    """
    if not series_list:
        return []
    if len(series_list) == 1:
        return list(series_list[0])
    events = []
    for index, points in enumerate(series_list):
        for time, value in points:
            events.append((time, index, value))
    events.sort(key=lambda e: (e[0], e[1]))
    current = [0.0] * len(series_list)
    out: List[Tuple[float, float]] = []
    for time, index, value in events:
        current[index] = value
        total = sum(current)
        if out and out[-1][0] == time:
            # Same instant: keep only the final total at each time.
            out[-1] = (time, total)
        elif not out or out[-1][1] != total:
            out.append((time, total))
    return out


# ---------------------------------------------------------------------- #
# client adapters: one uniform (done / ok / duration) surface


class _BrowserClient:
    """A full page load of one corpus site."""

    def __init__(self, session: "LoadSession", plan: ClientPlan) -> None:
        site = session.scenario.population.sites[plan.site_index]
        self.target = site.name
        browser = Browser(
            session.sim, session.stack.transport,
            session.stack.resolver_endpoint, machine=session.machine,
        )
        self.result = browser.load(site.page)

    @property
    def done(self) -> bool:
        return self.result.complete

    @property
    def ok(self) -> bool:
        return self.result.complete and self.result.resources_failed == 0

    @property
    def duration(self) -> float:
        return self.result.page_load_time

    @property
    def detail(self) -> str:
        if self.result.resources_failed:
            return f"{self.result.resources_failed} resources failed"
        return ""


class _ApiAppClient:
    """An app-launch sequence against the shared API backend."""

    def __init__(self, session: "LoadSession", plan: ClientPlan) -> None:
        workload = session.scenario.population.api_workload
        self.target = workload.api_host
        self.app = ApiClient(
            session.sim, session.stack.transport,
            session.stack.resolver_endpoint, workload,
        )
        self.app.launch()

    @property
    def done(self) -> bool:
        return self.app.done

    @property
    def ok(self) -> bool:
        return self.app.done and not self.app.errors

    @property
    def duration(self) -> float:
        return self.app.time_to_interactive

    @property
    def detail(self) -> str:
        return self.app.errors[0] if self.app.errors else ""


class _FetchClient:
    """A single-object GET of one site's root document.

    The lightweight monitoring-agent / CDN-probe shape: one DNS lookup,
    one connection, one exchange — cheap enough to run by the thousand.
    """

    def __init__(self, session: "LoadSession", plan: ClientPlan) -> None:
        site = session.scenario.population.sites[plan.site_index]
        url = site.page.root.url
        self.target = site.name
        self.url = url
        sim = session.sim
        transport = session.stack.transport
        self.sim = sim
        self.transport = transport
        self.started_at = sim.now
        self.finished_at: Optional[float] = None
        self.error: Optional[str] = None
        self.resolver = StubResolver(
            sim, transport, transport.namespace.any_local_address(),
            session.stack.resolver_endpoint,
        )
        self.resolver.resolve(url.host, self._resolved)

    def _resolved(self, addresses, error) -> None:
        if error is not None or not addresses:
            self._fail(error or ReproError("empty DNS answer"))
            return
        request = HttpRequest("GET", self.url.path, Headers([
            ("Host", self.url.host), ("User-Agent", "repro-probe/1.0"),
        ]))
        conn = HttpClient(
            self.sim, self.transport, Endpoint(addresses[0], self.url.port))
        conn.request(request, FailableCallback(self._responded, self._fail))

    def _responded(self, response) -> None:
        if response.status != 200:
            self.error = f"status {response.status}"
        self.finished_at = self.sim.now

    def _fail(self, exc: Exception) -> None:
        self.error = str(exc) or type(exc).__name__
        self.finished_at = self.sim.now

    @property
    def done(self) -> bool:
        return self.finished_at is not None

    @property
    def ok(self) -> bool:
        return self.finished_at is not None and self.error is None

    @property
    def duration(self) -> float:
        if self.finished_at is None:
            raise ReproError("fetch has not completed")
        return self.finished_at - self.started_at

    @property
    def detail(self) -> str:
        return self.error or ""


_CLIENT_CLASSES = {
    "browser": _BrowserClient,
    "api": _ApiAppClient,
    "fetch": _FetchClient,
}


# ---------------------------------------------------------------------- #
# the session


class LoadSession:
    """One built world, ready to run one load level.

    Construction draws the arrival schedule and the client plan from
    their dedicated streams, builds the shell stack, and schedules every
    spawn; :meth:`run` drains the simulator and assembles the
    :class:`LoadResult`.

    Args:
        scenario: the level's parameters.
        seed: master simulation seed.
        instrument: attach a :class:`~repro.obs.registry.MetricsRegistry`
            (server-side probes, at observation cost).
    """

    def __init__(
        self, scenario: LoadScenario, seed: int, instrument: bool = False,
    ) -> None:
        self.scenario = scenario
        self.seed = seed
        sim = Simulator(seed=seed)
        self.sim = sim
        self.registry = None
        if instrument:
            from repro.obs import MetricsRegistry

            self.registry = MetricsRegistry.install(sim)
        # The plan first, from dedicated streams — a pure function of
        # (scenario, seed), fixed before any world event runs.
        self.arrival_times = scenario.arrivals.times(
            scenario.clients, sim.streams.stream(ARRIVALS_STREAM))
        self.plan = scenario.population.plan(
            scenario.clients, sim.streams.stream(POPULATION_STREAM))
        # The shared world.
        self.machine = HostMachine(sim)
        self.stack = ShellStack(self.machine)
        self.stack.add_replay(
            scenario.population.merged_store(),
            server_workers=scenario.server_workers,
        )
        self.stack.add_link(scenario.link_mbps, scenario.link_mbps)
        self.stack.add_delay(scenario.one_way_delay)
        # Spawns, scheduled in client-index order.
        self._clients: List[Optional[object]] = [None] * scenario.clients
        self._spawned = 0
        for plan, at in zip(self.plan, self.arrival_times):
            sim.schedule_at(at, self._spawn, plan)

    def _spawn(self, plan: ClientPlan) -> None:
        self._clients[plan.index] = _CLIENT_CLASSES[plan.kind](self, plan)
        self._spawned += 1

    @property
    def done(self) -> bool:
        """True once every client has spawned and finished."""
        if self._spawned < self.scenario.clients:
            return False
        return all(c is not None and c.done for c in self._clients)

    def run(self, capture_digest: bool = False) -> "LoadResult":
        """Run the world to completion (or the scenario's timeout).

        Args:
            capture_digest: fold the executed event stream into a BLAKE2
                digest (see
                :class:`repro.analysis.sanitizer.EventStreamDigest`) and
                stash it on the result — the cross-run/cross-worker
                identity proof.
        """
        digest = None
        if capture_digest:
            from repro.analysis.sanitizer import EventStreamDigest

            digest = EventStreamDigest()
            self.sim.set_trace(digest)
        self.sim.run_until(
            lambda: self.done, timeout=self.scenario.timeout, check_every=32)
        result = self._collect()
        if digest is not None:
            result.event_digest = digest.hexdigest
            result.events = digest.events
        return result

    def _collect(self) -> "LoadResult":
        records: List[ClientRecord] = []
        for plan, at in zip(self.plan, self.arrival_times):
            client = self._clients[plan.index]
            if client is None:
                records.append(ClientRecord(
                    plan.index, plan.kind, "-", at, -1.0, False,
                    "never spawned (timeout)"))
            elif not client.done:
                records.append(ClientRecord(
                    plan.index, plan.kind, client.target, at, -1.0, False,
                    "unfinished (timeout)"))
            else:
                records.append(ClientRecord(
                    plan.index, plan.kind, client.target, at,
                    client.duration, client.ok, client.detail))
        return LoadResult(self, records)


class LoadResult:
    """Everything one load level measured.

    Attributes:
        records: per-client outcomes, in client-index order.
        plt: completion-time quantiles over all *successful* clients.
        per_kind: the same, split by client kind.
        server_latency: request-sojourn quantiles across every replay
            origin's worker pool (empty when uninstrumented).
        peak_occupancy / peak_backlog: worst worker-pool pressure seen
            across origins (0 when uninstrumented).
        makespan: virtual seconds from first arrival to world drain.
        event_digest / events: set when the run captured a digest.
    """

    def __init__(self, session: LoadSession, records: List[ClientRecord]) -> None:
        scenario = session.scenario
        self.seed = session.seed
        self.clients = scenario.clients
        self.offered_rate = scenario.offered_rate
        self.scenario = scenario.describe()
        self.records = records
        self.completed = sum(1 for r in records if r.duration >= 0.0)
        self.failed = sum(1 for r in records if not r.ok)
        self.makespan = session.sim.now
        self.events = session.sim.events_processed
        self.event_digest: Optional[str] = None
        self.plt = StreamingQuantiles(
            r.duration for r in records if r.ok)
        self.per_kind: Dict[str, StreamingQuantiles] = {}
        for record in records:
            if record.ok:
                shard = self.per_kind.get(record.kind)
                if shard is None:
                    shard = self.per_kind[record.kind] = StreamingQuantiles()
                shard.add(record.duration)
        self.server_latency = StreamingQuantiles()
        #: Farm-wide busy workers / queued requests over virtual time:
        #: every origin's step series summed into one (empty when
        #: uninstrumented). These are what mm-report's load mode plots.
        self.occupancy: List[Tuple[float, float]] = []
        self.backlog: List[Tuple[float, float]] = []
        self.peak_occupancy = 0.0
        self.peak_backlog = 0.0
        registry = session.registry
        if registry is not None:
            occupancy_series, backlog_series = [], []
            for name, histogram in sorted(registry.histograms.items()):
                if (name.startswith("http.server.")
                        and name.endswith(".latency")):
                    self.server_latency.extend(histogram.values)
            for name, series in sorted(registry.series.items()):
                if not name.startswith("http.server."):
                    continue
                if name.endswith(".occupancy"):
                    occupancy_series.append(series.points)
                elif name.endswith(".backlog"):
                    backlog_series.append(series.points)
            self.occupancy = _sum_step_series(occupancy_series)
            self.backlog = _sum_step_series(backlog_series)
            self.peak_occupancy = max(
                (v for __, v in self.occupancy), default=0.0)
            self.peak_backlog = max(
                (v for __, v in self.backlog), default=0.0)

    @property
    def throughput(self) -> float:
        """Completed clients per virtual second (goodput)."""
        if self.makespan <= 0.0:
            return 0.0
        return self.completed / self.makespan

    def to_dict(self) -> dict:
        """JSON-shaped summary (one capacity-curve level)."""
        return {
            "seed": self.seed,
            "clients": self.clients,
            "offered_rate": self.offered_rate,
            "completed": self.completed,
            "failed": self.failed,
            "makespan": self.makespan,
            "throughput": self.throughput,
            "plt": self.plt.summary(),
            "per_kind": {
                kind: acc.summary()
                for kind, acc in sorted(self.per_kind.items())
            },
            "server_latency": self.server_latency.summary(),
            "peak_occupancy": self.peak_occupancy,
            "peak_backlog": self.peak_backlog,
            "event_digest": self.event_digest,
        }

    def __repr__(self) -> str:
        p99 = self.plt.p99 if len(self.plt) else float("nan")
        return (
            f"<LoadResult clients={self.clients} completed={self.completed} "
            f"failed={self.failed} p99={p99:.3f}s>"
        )


def run_load(
    scenario: LoadScenario,
    seed: int = 0,
    instrument: bool = False,
    capture_digest: bool = False,
) -> LoadResult:
    """Build and run one load level; the one-call entry point."""
    session = LoadSession(scenario, seed, instrument=instrument)
    return session.run(capture_digest=capture_digest)
