"""Client population model: who arrives, and what they ask for.

The load runner spawns a *mix* of client kinds against one shared
replayed world:

* ``browser`` — a full :class:`repro.browser.engine.Browser` page load of
  one corpus site (heavyweight: DNS, connection pools, dependency
  discovery, tens of objects);
* ``api`` — a :class:`repro.apps.apiclient.ApiClient` app-launch sequence
  (medium: ~2 + 2·N small JSON fetches over bounded connection pools);
* ``fetch`` — a single-object GET of one site's root HTML (lightweight:
  one DNS lookup, one connection, one exchange — the CDN-probe /
  monitoring-agent shape).

Which kind each client is, and which site it targets, are drawn up front
from the dedicated ``load:population`` stream — so the full client plan,
like the arrival schedule, is a pure function of the seed and invariant
to anything that happens inside the simulated world. Site selection is
weighted (popular sites get proportionally more clients), mirroring the
Zipf-ish skew of real request logs.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.apiclient import ApiWorkload, make_api_site
from repro.corpus.sitegen import SyntheticSite, generate_site
from repro.errors import ReproError
from repro.record.store import RecordedSite

__all__ = [
    "CLIENT_KINDS",
    "ClientPlan",
    "Population",
    "default_population",
]

#: The RNG stream name population draws (kind + site choice) come from.
POPULATION_STREAM = "load:population"

#: Recognised client kinds, in plan/artifact order.
CLIENT_KINDS = ("browser", "api", "fetch")


class ClientPlan(Tuple[int, str, int]):
    """One planned client: ``(index, kind, site_index)``.

    A plain tuple subclass (not a dataclass) so plans stay hashable,
    picklable across fork workers, and cheap at the thousands-of-clients
    scale. ``site_index`` indexes :attr:`Population.sites`; for ``api``
    clients it is kept (the API backend is shared) but unused.
    """

    __slots__ = ()

    def __new__(cls, index: int, kind: str, site_index: int) -> "ClientPlan":
        return super().__new__(cls, (index, kind, site_index))

    def __getnewargs__(self) -> Tuple[int, str, int]:
        # tuple's default pickle passes the whole tuple as one argument;
        # spread it back into __new__'s signature instead.
        return tuple(self)

    @property
    def index(self) -> int:
        return self[0]

    @property
    def kind(self) -> str:
        return self[1]

    @property
    def site_index(self) -> int:
        return self[2]

    def __repr__(self) -> str:
        return f"ClientPlan({self[0]}, {self[1]!r}, site={self[2]})"


class Population:
    """A weighted mix of client kinds over a weighted site corpus.

    Args:
        sites: the corpus of synthetic sites clients can target (at
            least one). Every site's recording is merged into one shared
            store so a single ReplayShell serves the whole population.
        mix: kind → weight (>= 0, at least one > 0). Unknown kinds
            raise. Defaults to a mostly-lightweight mix (10% full
            browsers, 30% api clients, 60% single-object fetches) —
            heavy enough to exercise every code path, cheap enough to
            scale to thousands of clients.
        site_weights: per-site selection weights, parallel to ``sites``.
            Defaults to a Zipf-like ``1/(rank+1)`` skew.
        api_workload: shape of the ``api`` clients' launch sequence.
    """

    def __init__(
        self,
        sites: Sequence[SyntheticSite],
        mix: Optional[Dict[str, float]] = None,
        site_weights: Optional[Sequence[float]] = None,
        api_workload: ApiWorkload = ApiWorkload(),
    ) -> None:
        if not sites:
            raise ReproError("population needs at least one site")
        self.sites: List[SyntheticSite] = list(sites)
        if mix is None:
            mix = {"browser": 0.1, "api": 0.3, "fetch": 0.6}
        unknown = sorted(set(mix) - set(CLIENT_KINDS))
        if unknown:
            raise ReproError(
                f"unknown client kinds {unknown}; "
                f"choose from {', '.join(CLIENT_KINDS)}"
            )
        weights = [float(mix.get(kind, 0.0)) for kind in CLIENT_KINDS]
        if any(w < 0.0 for w in weights) or sum(weights) <= 0.0:
            raise ReproError("mix weights must be >= 0 with a positive sum")
        self.mix = {k: w for k, w in zip(CLIENT_KINDS, weights)}
        if site_weights is None:
            site_weights = [1.0 / (rank + 1) for rank in range(len(sites))]
        if len(site_weights) != len(sites):
            raise ReproError(
                f"{len(site_weights)} site weights for {len(sites)} sites"
            )
        self.site_weights = [float(w) for w in site_weights]
        if (any(w < 0.0 for w in self.site_weights)
                or sum(self.site_weights) <= 0.0):
            raise ReproError(
                "site weights must be >= 0 with a positive sum"
            )
        self.api_workload = api_workload

    # ------------------------------------------------------------------ #
    # planning

    def plan(self, clients: int, rng: random.Random) -> Tuple[ClientPlan, ...]:
        """Draw the full client plan for ``clients`` arrivals.

        Two draws per client (kind, then site), in client-index order,
        so the plan is a pure function of (population parameters, stream
        state) and independent of how the simulated world later runs.
        """
        if clients < 0:
            raise ReproError(f"clients must be >= 0, got {clients!r}")
        kind_weights = [self.mix[kind] for kind in CLIENT_KINDS]
        out = []
        for index in range(clients):
            kind = self._weighted(rng, CLIENT_KINDS, kind_weights)
            site = self._weighted(
                rng, range(len(self.sites)), self.site_weights)
            out.append(ClientPlan(index, kind, site))
        return tuple(out)

    @staticmethod
    def _weighted(rng: random.Random, choices, weights) -> object:
        # One rng.random() per draw (random.choices would also work but
        # draws differently across Python versions' internals; this
        # explicit scan is version-stable and auditable).
        total = sum(weights)
        point = rng.random() * total
        cumulative = 0.0
        for choice, weight in zip(choices, weights):
            cumulative += weight
            if point < cumulative or weight == total:
                return choice
        return choices[-1]  # float-edge fallback: point == total

    # ------------------------------------------------------------------ #
    # the shared world's recording

    def merged_store(self) -> RecordedSite:
        """One RecordedSite serving the whole population.

        The union of every corpus site's recording plus (when the mix
        includes ``api`` clients) the API backend's recording — distinct
        hostnames map to distinct deterministic IPs, so one ReplayShell
        spawns every origin server the population can reach.
        """
        merged = RecordedSite("load-corpus")
        for site in self.sites:
            for pair in site.to_recorded_site().pairs:
                merged.add_pair(pair)
        if self.mix.get("api", 0.0) > 0.0:
            for pair in make_api_site(self.api_workload).pairs:
                merged.add_pair(pair)
        return merged

    def describe(self) -> dict:
        """JSON-shaped parameters (artifact metadata)."""
        return {
            "sites": [site.name for site in self.sites],
            "site_weights": list(self.site_weights),
            "mix": dict(self.mix),
        }

    def __repr__(self) -> str:
        mix = ", ".join(
            f"{k}={v:g}" for k, v in self.mix.items() if v > 0.0)
        return f"<Population sites={len(self.sites)} mix=[{mix}]>"


def default_population(
    seed: int = 0,
    n_sites: int = 4,
    scale: float = 0.25,
    mix: Optional[Dict[str, float]] = None,
) -> Population:
    """A small deterministic population for benches and scenarios.

    Args:
        seed: site-structure seed (independent of the load seed — the
            same corpus can be hit by many differently seeded runs).
        n_sites: corpus size.
        scale: site size multiplier (0.25 keeps pages small enough that
            thousand-client worlds stay fast).
        mix: forwarded to :class:`Population`.
    """
    if n_sites < 1:
        raise ReproError(f"n_sites must be >= 1, got {n_sites!r}")
    sites = [
        generate_site(f"site{i}.load.example", seed=seed * 1000 + i,
                      n_origins=2, scale=scale)
        for i in range(n_sites)
    ]
    return Population(sites, mix=mix)
