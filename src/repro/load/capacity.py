"""Capacity curves: offered load vs tail latency, with knee detection.

A capacity curve answers the only question a load test exists to answer:
*how much offered load can this configuration absorb before tail latency
departs?* :func:`run_capacity_curve` runs one fresh world per load
level — same population, same seed, arrival rate swept upward — and
:func:`detect_knee` finds the level where the curve bends.

Knee detection is the maximum-perpendicular-distance rule (the
"kneedle" construction reduced to its deterministic core): normalise the
(offered load, p99) points to the unit square, draw the chord from the
first point to the last, and pick the point farthest from it. No
smoothing, no randomness, no tolerance parameters to tune — the same
curve always yields the same knee.

Levels are independent worlds, so they fan out over
:func:`~repro.measure.parallel.parallel_map`; per-level event digests
and artifacts are bit-identical whether levels ran serially or sharded
across workers (the cross-worker determinism tests assert exactly this).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.load.arrivals import make_process
from repro.load.population import Population
from repro.load.runner import DEFAULT_TIMEOUT, LoadResult, LoadScenario, run_load
from repro.measure.parallel import parallel_map

__all__ = ["CapacityCurve", "detect_knee", "run_capacity_curve"]


def detect_knee(points: Sequence[Tuple[float, float]]) -> Optional[int]:
    """Index of the knee of an (x, y) curve, or None if there isn't one.

    Max-perpendicular-distance from the first→last chord, on points
    normalised to the unit square. Returns None when fewer than three
    points exist, when x or y has no spread (a flat curve has no knee),
    or when the best candidate is an endpoint.
    """
    if len(points) < 3:
        return None
    xs = [float(x) for x, __ in points]
    ys = [float(y) for __, y in points]
    x_span = max(xs) - min(xs)
    y_span = max(ys) - min(ys)
    if x_span <= 0.0 or y_span <= 0.0:
        return None
    nx = [(x - min(xs)) / x_span for x in xs]
    ny = [(y - min(ys)) / y_span for y in ys]
    # Distance from (px, py) to the chord through the normalised first
    # and last points: |cross((last-first), (p-first))| / |last-first|.
    ax, ay = nx[0], ny[0]
    bx, by = nx[-1], ny[-1]
    chord = ((bx - ax) ** 2 + (by - ay) ** 2) ** 0.5
    if chord <= 0.0:
        return None
    best_index, best_distance = None, 0.0
    for i in range(1, len(points) - 1):
        distance = abs(
            (bx - ax) * (ny[i] - ay) - (by - ay) * (nx[i] - ax)
        ) / chord
        if distance > best_distance:
            best_index, best_distance = i, distance
    if best_index is None or best_distance <= 1e-9:
        return None
    return best_index


class CapacityCurve:
    """One swept capacity curve: per-level results plus the knee.

    Attributes:
        results: one :class:`~repro.load.runner.LoadResult` per level,
            in sweep order.
        knee_index: index into ``results`` of the detected knee (None
            when the curve never bends).
    """

    def __init__(self, results: List[LoadResult]) -> None:
        if not results:
            raise ReproError("capacity curve needs at least one level")
        self.results = results
        self.knee_index = detect_knee(self.points())

    def points(self) -> List[Tuple[float, float]]:
        """(offered load, p99 completion time) per level, in sweep order.

        Levels where nothing succeeded contribute the scenario timeout
        as their p99 — the honest reading of "no client ever finished".
        """
        out = []
        for result in self.results:
            if len(result.plt):
                p99 = result.plt.p99
            else:
                p99 = float(result.scenario["timeout"])
            out.append((result.offered_rate, p99))
        return out

    @property
    def knee(self) -> Optional[LoadResult]:
        """The level at the knee (None when no knee was detected)."""
        if self.knee_index is None:
            return None
        return self.results[self.knee_index]

    def to_dict(self) -> dict:
        """JSON-shaped curve (the capacity-curve artifact's meta)."""
        knee = None
        if self.knee_index is not None:
            at = self.results[self.knee_index]
            knee = {
                "index": self.knee_index,
                "offered_rate": at.offered_rate,
                "clients": at.clients,
                "p99": at.plt.p99 if len(at.plt) else None,
            }
        return {
            "levels": [result.to_dict() for result in self.results],
            "knee": knee,
        }

    def __repr__(self) -> str:
        knee = (
            f"knee@{self.results[self.knee_index].offered_rate:g}/s"
            if self.knee_index is not None else "no knee"
        )
        return f"<CapacityCurve levels={len(self.results)} {knee}>"


def run_capacity_curve(
    population: Population,
    levels: Sequence[int],
    window: float = 20.0,
    seed: int = 0,
    arrivals: str = "poisson",
    link_mbps: float = 1000.0,
    one_way_delay: float = 0.020,
    server_workers: int = 2,
    timeout: float = DEFAULT_TIMEOUT,
    workers: Optional[int] = None,
    instrument: bool = True,
    capture_digest: bool = False,
) -> CapacityCurve:
    """Sweep client counts over a fixed arrival window; one world each.

    Args:
        population: shared across levels (same corpus, same mix).
        levels: client counts, low to high; each level's offered rate is
            ``clients / window`` so the sweep raises *rate*, not run
            length.
        window: seconds the arrival process spreads each level over.
        seed: master seed for every level (levels are distinct worlds;
            what varies between them is the scenario, never the seed).
        arrivals: arrival-process kind (``fixed``/``poisson``/``diurnal``).
        link_mbps / one_way_delay / server_workers / timeout: forwarded
            to each level's :class:`~repro.load.runner.LoadScenario`.
        workers: fan levels out over this many fork workers (None/1 =
            serial). Per-level results are identical either way.
        instrument: attach a metrics registry per level (server-side
            latency + occupancy/backlog in each result).
        capture_digest: stash each level's event-stream digest.

    Raises:
        ReproError: on an empty or non-increasing level list.
    """
    counts = [int(c) for c in levels]
    if not counts:
        raise ReproError("need at least one load level")
    if any(b <= a for a, b in zip(counts, counts[1:])):
        raise ReproError(f"levels must be strictly increasing: {counts}")
    if window <= 0.0:
        raise ReproError(f"window must be > 0, got {window!r}")

    def level(index: int) -> LoadResult:
        clients = counts[index]
        scenario = LoadScenario(
            population,
            make_process(arrivals, clients / window),
            clients,
            link_mbps=link_mbps,
            one_way_delay=one_way_delay,
            server_workers=server_workers,
            timeout=timeout,
        )
        return run_load(
            scenario, seed=seed,
            instrument=instrument, capture_digest=capture_digest,
        )

    results = parallel_map(level, len(counts), workers or 1)
    return CapacityCurve(results)
