"""Seeded open-loop arrival processes.

An *open-loop* workload decides when every client arrives **before** the
system starts serving: arrivals never wait for completions, so a slow
server faces the same offered load as a fast one — the property that
makes capacity curves honest (closed-loop generators self-throttle and
hide the knee).

Every process here materialises its arrival times up front as a pure
function of ``(parameters, rng stream)``:

* the schedule is computed once, before the simulated world runs, so it
  is invariant to client-completion order by construction;
* each process draws from the dedicated ``load:arrivals`` stream the
  runner hands it — never from a stream shared with link jitter, chaos,
  or server compute — so adding arrival draws cannot perturb any other
  consumer (the REP011 stream-aliasing contract).

Processes:

* :class:`FixedRate` — exactly ``rate`` clients/s, evenly spaced (zero
  RNG draws; the reference grid for debugging).
* :class:`Poisson` — memoryless interarrivals at ``rate`` clients/s, one
  ``expovariate`` draw per client.
* :class:`Diurnal` — trace-driven time-varying rate: a piecewise-constant
  rate profile (e.g. hourly request rates from a measured trace),
  realised by thinning a homogeneous Poisson process at the profile's
  peak rate (exactly two draws per candidate arrival, accepted or not).
"""

from __future__ import annotations

import random
from typing import Sequence, Tuple

__all__ = ["ArrivalProcess", "Diurnal", "FixedRate", "Poisson"]

#: The RNG stream name the load runner draws arrival times from. Keeping
#: it a module constant (and unique to this package) is what REP011
#: checks: no other simulation domain may alias it.
ARRIVALS_STREAM = "load:arrivals"


class ArrivalProcess:
    """Base class: generates client arrival times (seconds from start).

    Subclasses implement :meth:`times`; parameters are fixed at
    construction so a process instance plus an equally seeded RNG always
    yields the same schedule.
    """

    #: Short name used in artifacts and CLI flags.
    kind = "abstract"

    def times(self, clients: int, rng: random.Random) -> Tuple[float, ...]:
        """Arrival times for ``clients`` clients, non-decreasing.

        Args:
            clients: how many arrivals to generate (>= 0).
            rng: the dedicated arrivals stream. Every subclass draws
                only from this generator (or not at all), so the
                schedule is a pure function of (parameters, stream
                state).
        """
        raise NotImplementedError

    def describe(self) -> dict:
        """JSON-shaped parameters (artifact metadata)."""
        raise NotImplementedError

    @staticmethod
    def _check(clients: int, rate: float) -> None:
        if clients < 0:
            raise ValueError(f"clients must be >= 0, got {clients!r}")
        if rate <= 0.0:
            raise ValueError(f"rate must be > 0, got {rate!r}")


class FixedRate(ArrivalProcess):
    """Deterministic arrivals: client ``i`` arrives at ``i / rate``.

    Draws nothing from the RNG — the degenerate (zero-variance) arrival
    process, useful as a debugging grid and as the fairest apples-to-
    apples baseline between load levels.
    """

    kind = "fixed"

    def __init__(self, rate: float) -> None:
        if rate <= 0.0:
            raise ValueError(f"rate must be > 0, got {rate!r}")
        self.rate = float(rate)

    def times(self, clients: int, rng: random.Random) -> Tuple[float, ...]:
        self._check(clients, self.rate)
        return tuple(i / self.rate for i in range(clients))

    def describe(self) -> dict:
        return {"kind": self.kind, "rate": self.rate}

    def __repr__(self) -> str:
        return f"FixedRate(rate={self.rate})"


class Poisson(ArrivalProcess):
    """Memoryless (exponential-interarrival) arrivals at ``rate``/s.

    The standard open-loop heavy-traffic model: arrivals are independent
    of each other and of system state, so bursts arise naturally and the
    offered load's variance is realistic.
    """

    kind = "poisson"

    def __init__(self, rate: float) -> None:
        if rate <= 0.0:
            raise ValueError(f"rate must be > 0, got {rate!r}")
        self.rate = float(rate)

    def times(self, clients: int, rng: random.Random) -> Tuple[float, ...]:
        self._check(clients, self.rate)
        now = 0.0
        out = []
        for __ in range(clients):
            now += rng.expovariate(self.rate)
            out.append(now)
        return tuple(out)

    def describe(self) -> dict:
        return {"kind": self.kind, "rate": self.rate}

    def __repr__(self) -> str:
        return f"Poisson(rate={self.rate})"


class Diurnal(ArrivalProcess):
    """Trace-driven time-varying arrivals (piecewise-constant rate).

    ``profile`` gives relative request rates over one ``period`` (e.g.
    24 hourly buckets from a measured diurnal trace, or any shape); the
    whole profile is scaled so its *mean* rate is ``rate`` clients/s,
    making ``rate`` comparable across processes. Times are generated by
    thinning a homogeneous Poisson process at the profile's peak rate:
    two draws per candidate (one interarrival, one accept), with
    rejected candidates consuming draws too — the draw count per
    arrival is bounded and the schedule stays a pure function of the
    stream.

    Args:
        rate: mean arrival rate, clients/s.
        profile: relative rates per bucket (>= 0, at least one > 0).
        period: seconds the profile spans before repeating.
    """

    kind = "diurnal"

    def __init__(
        self,
        rate: float,
        profile: Sequence[float] = (1, 2, 4, 8, 4, 2),
        period: float = 60.0,
    ) -> None:
        if rate <= 0.0:
            raise ValueError(f"rate must be > 0, got {rate!r}")
        if period <= 0.0:
            raise ValueError(f"period must be > 0, got {period!r}")
        shape = [float(v) for v in profile]
        if not shape or any(v < 0.0 for v in shape):
            raise ValueError("profile needs non-negative entries")
        mean = sum(shape) / len(shape)
        if mean <= 0.0:
            raise ValueError("profile must have a positive mean")
        self.rate = float(rate)
        self.period = float(period)
        #: Absolute clients/s per bucket (profile normalised to the mean).
        self.rates = tuple(v / mean * rate for v in shape)

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at time ``t`` (profile repeats)."""
        bucket = int((t % self.period) / self.period * len(self.rates))
        # Guard the t == period boundary float artifact.
        return self.rates[min(bucket, len(self.rates) - 1)]

    def times(self, clients: int, rng: random.Random) -> Tuple[float, ...]:
        self._check(clients, self.rate)
        peak = max(self.rates)
        if peak <= 0.0:
            raise ValueError("profile must have a positive peak")
        now = 0.0
        out = []
        while len(out) < clients:
            now += rng.expovariate(peak)
            if rng.random() * peak <= self.rate_at(now):
                out.append(now)
        return tuple(out)

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "rate": self.rate,
            "period": self.period,
            "rates": list(self.rates),
        }

    def __repr__(self) -> str:
        return (
            f"Diurnal(rate={self.rate}, period={self.period}, "
            f"buckets={len(self.rates)})"
        )


#: CLI flag value -> constructor taking just a rate.
PROCESSES = {
    "fixed": FixedRate,
    "poisson": Poisson,
    "diurnal": Diurnal,
}


def make_process(kind: str, rate: float) -> ArrivalProcess:
    """Construct an arrival process from its CLI name.

    Raises:
        ValueError: on an unknown kind.
    """
    try:
        ctor = PROCESSES[kind]
    except KeyError:
        raise ValueError(
            f"unknown arrival process {kind!r}; "
            f"choose from {', '.join(sorted(PROCESSES))}"
        ) from None
    return ctor(rate)
