"""Capacity-curve JSONL artifacts (the ``mm-load`` / ``mm-report`` contract).

One artifact is one swept capacity curve, in the standard
:mod:`repro.obs.artifact` JSONL format:

* the ``meta`` line carries the curve: ``experiment: "load"``, the top
  level's scenario parameters, one summary dict per level (client count,
  offered rate, PLT and server-latency quantiles, failure counts), and
  the detected knee;
* ``series`` lines carry the *top* level's farm-wide worker occupancy
  and backlog step series (``load.occupancy`` / ``load.backlog``) — the
  time-domain view of why the knee is where it is.

Artifacts are byte-deterministic: :func:`repro.obs.artifact.write_artifact`
emits sorted keys, compact separators, and no wall-clock fields, so two
runs of the same seed write identical files — the property
``sanitizer --scenario load`` enforces in CI.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ReproError
from repro.load.capacity import CapacityCurve
from repro.obs.artifact import (
    Artifact,
    artifact_bytes,
    read_artifact,
    write_artifact,
)
from repro.obs.registry import MetricsRegistry

__all__ = [
    "capacity_artifact_bytes",
    "load_curve_view",
    "write_capacity_artifact",
]

#: Bump on incompatible changes to the meta line's load-specific shape.
LOAD_SCHEMA = 1


def _curve_registry(curve: CapacityCurve) -> MetricsRegistry:
    """A registry holding the top level's farm-wide series for export."""
    registry = MetricsRegistry()
    top = curve.results[-1]
    for name, points in (
        ("load.occupancy", top.occupancy),
        ("load.backlog", top.backlog),
    ):
        series = registry.timeseries(name)
        for time, value in points:
            series.record(time, value)
    return registry


def _curve_meta(
    curve: CapacityCurve, extra: Optional[Dict[str, object]] = None
) -> Dict[str, object]:
    meta: Dict[str, object] = {
        "experiment": "load",
        "load_schema": LOAD_SCHEMA,
        "scenario": curve.results[-1].scenario,
    }
    meta.update(curve.to_dict())
    if extra:
        meta.update(extra)
    return meta


def write_capacity_artifact(
    path: Union[str, Path],
    curve: CapacityCurve,
    meta: Optional[Dict[str, object]] = None,
) -> Path:
    """Write one capacity curve as a JSONL artifact.

    Args:
        path: output file (parents created; write is atomic).
        curve: the swept curve.
        meta: extra meta-line fields (seed, bench name, ...).
    """
    return write_artifact(
        path, _curve_registry(curve), meta=_curve_meta(curve, meta))


def capacity_artifact_bytes(
    curve: CapacityCurve, meta: Optional[Dict[str, object]] = None
) -> bytes:
    """The exact bytes :func:`write_capacity_artifact` would write.

    Goes through :func:`repro.obs.artifact.artifact_bytes` — the same
    serialiser the on-disk path uses — so the sanitizer's byte-identity
    check can compare runs without touching the filesystem and cannot
    drift from the file format.
    """
    return artifact_bytes(_curve_registry(curve), meta=_curve_meta(curve, meta))


class LoadCurveView:
    """A read-side view of one capacity-curve artifact.

    Attributes:
        levels: per-level summary dicts, in sweep order.
        knee: the knee dict (None when no knee was detected).
        scenario: the top level's scenario parameters.
        occupancy / backlog: the top level's farm-wide step series.
    """

    def __init__(self, artifact: Artifact) -> None:
        meta = artifact.meta
        if meta.get("experiment") != "load":
            raise ReproError(
                f"not a load artifact: experiment="
                f"{meta.get('experiment')!r} (expected 'load')"
            )
        schema = meta.get("load_schema")
        if schema != LOAD_SCHEMA:
            raise ReproError(
                f"unsupported load artifact schema {schema!r} "
                f"(expected {LOAD_SCHEMA})"
            )
        levels = meta.get("levels")
        if not isinstance(levels, list) or not levels:
            raise ReproError("load artifact has no levels")
        self.meta = meta
        self.levels: List[dict] = levels
        self.knee: Optional[dict] = meta.get("knee")
        self.scenario: dict = meta.get("scenario") or {}
        self.occupancy = self._series(artifact, "load.occupancy")
        self.backlog = self._series(artifact, "load.backlog")

    @staticmethod
    def _series(artifact: Artifact, name: str) -> List[Tuple[float, float]]:
        points = artifact.series.get(name) or []
        return [(float(t), float(v)) for t, v in points]

    def points(self) -> List[Tuple[float, float]]:
        """(offered load, p99 completion time) per level."""
        out = []
        for level in self.levels:
            plt = level.get("plt") or {}
            p99 = plt.get("p99")
            if p99 is None:
                p99 = float(
                    (self.scenario or {}).get("timeout") or 0.0)
            out.append((float(level.get("offered_rate", 0.0)), float(p99)))
        return out

    def __repr__(self) -> str:
        return (
            f"<LoadCurveView levels={len(self.levels)} "
            f"knee={'yes' if self.knee else 'no'}>"
        )


def load_curve_view(path: Union[str, Path]) -> LoadCurveView:
    """Read one capacity-curve artifact into a :class:`LoadCurveView`.

    Raises:
        ReproError: when the file is not a load artifact (or malformed).
    """
    return LoadCurveView(read_artifact(path))
