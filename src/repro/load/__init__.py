"""Open-loop heavy-traffic workload generation (``mm-load``).

Everything else in the toolkit measures one browser per simulated world;
this package measures a *service under load*: hundreds to thousands of
concurrent clients — full page loads, app-launch sequences, single-object
fetches — arriving open-loop against one shared ReplayShell + LinkShell
stack, with capacity curves (offered load vs p99 latency, knee detection)
as the headline output.

The reproducibility contract is total: arrival times
(:mod:`~repro.load.arrivals`) and the client mix
(:mod:`~repro.load.population`) are materialised from dedicated seeded
streams before the world runs, per-client outcomes are collected in
client-index order after it drains, and two runs of the same
``(scenario, seed)`` produce bit-identical event-stream digests *and*
byte-identical JSONL artifacts (``sanitizer --scenario load`` enforces
both in CI).
"""

from repro.load.arrivals import (
    ArrivalProcess,
    Diurnal,
    FixedRate,
    Poisson,
    make_process,
)
from repro.load.artifact import (
    capacity_artifact_bytes,
    load_curve_view,
    write_capacity_artifact,
)
from repro.load.capacity import CapacityCurve, detect_knee, run_capacity_curve
from repro.load.population import ClientPlan, Population, default_population
from repro.load.runner import (
    ClientRecord,
    LoadResult,
    LoadScenario,
    LoadSession,
    run_load,
)

__all__ = [
    "ArrivalProcess",
    "CapacityCurve",
    "ClientPlan",
    "ClientRecord",
    "Diurnal",
    "FixedRate",
    "LoadResult",
    "LoadScenario",
    "LoadSession",
    "Poisson",
    "Population",
    "capacity_artifact_bytes",
    "default_population",
    "detect_knee",
    "load_curve_view",
    "make_process",
    "run_capacity_curve",
    "run_load",
    "write_capacity_artifact",
]
