"""Text rendering of capacity-curve artifacts (``mm-report load``).

Three sections, mirroring the artifact layout
(:mod:`repro.load.artifact`): a per-level summary table, the capacity
curve itself (offered load on x, p99 completion time on y, the detected
knee marked ``K``), and the top level's farm-wide worker occupancy and
backlog step series — the time-domain view of why the knee sits where
it does.
"""

from __future__ import annotations

from typing import List, Optional

from repro.load.artifact import LoadCurveView
from repro.obs.render import ascii_curve, ascii_timeseries

__all__ = ["level_table", "render_load_artifact"]


def _fmt(value: object, digits: int = 4) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    return str(value)


def level_table(view: LoadCurveView) -> str:
    """Per-level summary table: one row per swept load level."""
    headers = [
        "clients", "offered/s", "done", "failed",
        "plt p50", "plt p99", "srv p99", "makespan",
    ]
    rows: List[List[str]] = []
    for i, level in enumerate(view.levels):
        plt = level.get("plt") or {}
        srv = level.get("server_latency") or {}
        marker = " <knee" if view.knee and view.knee.get("index") == i else ""
        rows.append([
            _fmt(level.get("clients")),
            _fmt(level.get("offered_rate")),
            _fmt(level.get("completed")),
            _fmt(level.get("failed")),
            _fmt(plt.get("p50")),
            _fmt(plt.get("p99")),
            _fmt(srv.get("p99")),
            _fmt(level.get("makespan")) + marker,
        ])
    widths = [
        max(len(headers[c]), max(len(row[c]) for row in rows))
        for c in range(len(headers))
    ]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_load_artifact(
    view: LoadCurveView,
    width: int = 64,
    height: int = 12,
    series: bool = True,
) -> str:
    """Render one capacity-curve artifact as plain text.

    Args:
        view: the parsed artifact.
        width / height: plot grid size for curve and time series.
        series: include the top level's occupancy/backlog step plots.
    """
    scenario = view.scenario
    blocks: List[str] = []
    header = [
        f"capacity curve: {len(view.levels)} levels, "
        f"top {_fmt(view.levels[-1].get('clients'))} clients"
    ]
    if scenario:
        arrivals = scenario.get("arrivals")
        if isinstance(arrivals, dict):
            arrivals = "/".join(
                _fmt(arrivals[k]) for k in sorted(arrivals))
        header.append(
            "scenario: "
            f"arrivals={arrivals or '?'} "
            f"link={_fmt(scenario.get('link_mbps'))} Mbit/s "
            f"delay={_fmt(scenario.get('one_way_delay'))}s "
            f"server_workers={_fmt(scenario.get('server_workers'))}"
        )
    if view.knee:
        header.append(
            f"knee: {_fmt(view.knee.get('offered_rate'))} clients/s "
            f"({_fmt(view.knee.get('clients'))} clients, "
            f"p99 {_fmt(view.knee.get('p99'))}s)"
        )
    else:
        header.append("knee: none detected")
    blocks.append("\n".join(header))
    blocks.append(level_table(view))

    points = view.points()
    if len(points) >= 2:
        knee_index: Optional[int] = (
            view.knee.get("index") if view.knee else None)
        blocks.append(ascii_curve(
            points,
            width=width,
            height=height,
            title="offered load vs p99 completion time",
            x_label="offered load (clients/s)",
            y_label="p99 (s)",
            mark=knee_index,
        ))
    if series:
        for name, pts in (
            ("load.occupancy (top level)", view.occupancy),
            ("load.backlog (top level)", view.backlog),
        ):
            if pts:
                blocks.append(ascii_timeseries(
                    pts, width=width, height=height, title=name))
    return "\n\n".join(blocks) + "\n"
