"""Recording and replaying HTTP traffic (Mahimahi's stored-site format).

* :class:`~repro.record.entry.RequestResponsePair` — one recorded exchange
  with its origin (scheme, IP, port), mirroring Mahimahi's one-file-per-pair
  protobufs (here: one JSON file per pair).
* :class:`~repro.record.store.RecordedSite` — a recorded folder: load,
  save, and query origins/hostnames.
* :class:`~repro.record.matcher.RequestMatcher` — the replay-side matching
  algorithm (exact URI, else longest common query prefix on the same
  host+path), re-implemented from Mahimahi's CGI replay server semantics.
* :class:`~repro.record.proxy.RecordingProxy` — the transparent
  man-in-the-middle proxy at the heart of RecordShell, plus the
  iptables-REDIRECT-equivalent :class:`~repro.record.proxy.Redirector`.
"""

from repro.record.cas import CasStore, body_checksum, missing_blobs
from repro.record.entry import RequestResponsePair
from repro.record.har import save_har, to_har
from repro.record.matcher import MatchResult, RequestMatcher
from repro.record.proxy import RecordingProxy, Redirector
from repro.record.store import RecordedSite, site_blob_refs, site_cas

__all__ = [
    "CasStore",
    "MatchResult",
    "RecordedSite",
    "RecordingProxy",
    "Redirector",
    "RequestMatcher",
    "RequestResponsePair",
    "body_checksum",
    "missing_blobs",
    "save_har",
    "site_blob_refs",
    "site_cas",
    "to_har",
]
