"""RecordShell's transparent man-in-the-middle proxy.

Two pieces, exactly as in Mahimahi:

* :class:`Redirector` — the iptables REDIRECT equivalent. A prerouting
  hook in the shell's namespace rewrites packets heading for any remote
  host on the recorded ports (80/443) to the proxy's local endpoint,
  remembering each flow's original destination (conntrack +
  SO_ORIGINAL_DST); a postrouting hook rewrites the proxy's replies so the
  client still believes it is talking to the origin.

* :class:`RecordingProxy` — accepts the redirected connections, opens an
  upstream connection to the flow's *original* destination, relays
  complete HTTP messages in both directions, and stores every
  request-response pair. Port-443 flows get a (cost-model) TLS session on
  both legs — the MITM that lets Mahimahi record HTTPS.

Relaying is message-level store-and-forward: a response is forwarded once
fully received. This adds proxy-side buffering latency relative to
Mahimahi's byte-level streaming, which is irrelevant here because no paper
measurement times page loads *through* RecordShell (see DESIGN.md).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.http.message import HttpRequest, HttpResponse
from repro.http.parser import HttpParser
from repro.http.serialize import serialize_request, serialize_response
from repro.net.address import Endpoint, IPv4Address
from repro.net.namespace import NetworkNamespace
from repro.net.packet import Packet
from repro.record.entry import RequestResponsePair
from repro.record.store import RecordedSite
from repro.sim.simulator import Simulator
from repro.transport.host import TransportHost
from repro.transport.tcp import TcpConnection
from repro.transport.tls import TlsClientSession, TlsServerSession

PROXY_PORT = 3128
RECORDED_PORTS = (80, 443)


class Redirector:
    """REDIRECT-to-local-proxy packet rewriting for one namespace.

    Args:
        namespace: the namespace whose traffic is intercepted (the shell's
            *parent* — Mahimahi's proxy runs on the host machine).
        proxy_endpoint: where redirected flows are steered.
        watch_interface: only packets arriving on this interface are
            redirected (iptables' ``-i <veth>`` — so traffic from other
            shells sharing the parent namespace is untouched).
        ports: destination ports to intercept (HTTP and HTTPS).
    """

    def __init__(
        self,
        namespace: NetworkNamespace,
        proxy_endpoint: Endpoint,
        watch_interface,
        ports: Tuple[int, ...] = RECORDED_PORTS,
    ) -> None:
        self.namespace = namespace
        self.proxy_endpoint = proxy_endpoint
        self.watch_interface = watch_interface
        self.ports = frozenset(ports)
        # (client_ip, client_port) -> original (dst_ip, dst_port)
        self._conntrack: Dict[Tuple[IPv4Address, int], Tuple[IPv4Address, int]] = {}
        self.redirected_flows = 0
        namespace.prerouting_hooks.append(self._prerouting)
        namespace.postrouting_hooks.append(self._postrouting)

    def original_destination(
        self, client: Endpoint
    ) -> Optional[Tuple[IPv4Address, int]]:
        """SO_ORIGINAL_DST: where the client was actually connecting."""
        return self._conntrack.get((client.address, client.port))

    def _prerouting(self, packet: Packet, in_interface) -> None:
        if packet.protocol != "tcp":
            return
        if in_interface is not self.watch_interface:
            return
        key = (packet.src, packet.sport)
        if key in self._conntrack:
            # Established redirected flow: keep steering it to the proxy.
            packet.dst = self.proxy_endpoint.address
            packet.dport = self.proxy_endpoint.port
            return
        if packet.dport not in self.ports:
            return
        if self.namespace.is_local(packet.dst):
            return
        self._conntrack[key] = (packet.dst, packet.dport)
        self.redirected_flows += 1
        packet.dst = self.proxy_endpoint.address
        packet.dport = self.proxy_endpoint.port

    def _postrouting(self, packet: Packet) -> None:
        if packet.protocol != "tcp":
            return
        if (packet.src, packet.sport) != (
            self.proxy_endpoint.address, self.proxy_endpoint.port
        ):
            return
        original = self._conntrack.get((packet.dst, packet.dport))
        if original is not None:
            packet.src, packet.sport = original


class RecordingProxy:
    """The MITM proxy: record and forward all HTTP(S) exchanges.

    Args:
        sim: the simulator.
        transport: transport host of the shell's namespace.
        address: local address the proxy binds (and the redirector targets).
        store: recorded site receiving every completed pair.
        redirector: flow-origin oracle (created by RecordShell).
    """

    def __init__(
        self,
        sim: Simulator,
        transport: TransportHost,
        address: IPv4Address,
        store: RecordedSite,
        redirector: Redirector,
        port: int = PROXY_PORT,
    ) -> None:
        self.sim = sim
        self.transport = transport
        self.store = store
        self.redirector = redirector
        self.endpoint = Endpoint(IPv4Address(address), port)
        self.pairs_recorded = 0
        self.connections = 0
        transport.listen(self.endpoint.address, port, self._accept)

    def _accept(self, conn: TcpConnection) -> None:
        original = self.redirector.original_destination(conn.remote)
        if original is None:
            conn.abort()
            return
        self.connections += 1
        _ProxiedConnection(self, conn, Endpoint(*original))


class _ProxiedConnection:
    """One client connection and its paired upstream connection."""

    def __init__(
        self,
        proxy: RecordingProxy,
        client_conn: TcpConnection,
        original: Endpoint,
    ) -> None:
        self.proxy = proxy
        self.original = original
        self.scheme = "https" if original.port == 443 else "http"
        self.client_conn = client_conn
        self._outstanding: Deque[HttpRequest] = deque()

        self._request_parser = HttpParser("request")
        self._request_parser.on_message = self._client_request
        self._response_parser = HttpParser("response")
        self._response_parser.on_message = self._upstream_response

        self.upstream_conn = proxy.transport.connect(original)
        self.upstream_conn.on_error = lambda exc: self._teardown()
        self.upstream_conn.on_remote_close = self._upstream_closed
        client_conn.on_remote_close = self._client_closed
        client_conn.on_error = lambda exc: self._teardown()

        if self.scheme == "https":
            self._client_tls = TlsServerSession(client_conn)
            self._client_tls.on_data = self._request_parser.feed
            self._upstream_tls = TlsClientSession(self.upstream_conn)
            self._upstream_tls.on_data = self._response_parser.feed
            self._client_sender = self._client_tls
            self._upstream_sender = self._upstream_tls
        else:
            self._client_tls = None
            self._upstream_tls = None
            client_conn.on_data = self._request_parser.feed
            self.upstream_conn.on_data = self._response_parser.feed
            self._client_sender = client_conn
            self._upstream_sender = self.upstream_conn

    def _client_request(self, request: HttpRequest) -> None:
        self._outstanding.append(request)
        self._response_parser.expect(request.method)
        self._send(self._upstream_sender, serialize_request(request))

    def _upstream_response(self, response: HttpResponse) -> None:
        if self._outstanding:
            request = self._outstanding.popleft()
            pair = RequestResponsePair(
                self.scheme, self.original.address, self.original.port,
                request, response,
            )
            self.proxy.store.add_pair(pair)
            self.proxy.pairs_recorded += 1
        self._send(self._client_sender, serialize_response(response))

    @staticmethod
    def _send(sender, pieces) -> None:
        for piece in pieces:
            if isinstance(piece, int):
                sender.send_virtual(piece)
            else:
                sender.send(piece)

    def _client_closed(self) -> None:
        if not self._outstanding:
            self._close_quietly(self.upstream_conn)

    def _upstream_closed(self) -> None:
        try:
            self._response_parser.finish()
        except Exception:
            pass
        self._close_quietly(self.client_conn)

    def _teardown(self) -> None:
        self._close_quietly(self.client_conn)
        self._close_quietly(self.upstream_conn)

    @staticmethod
    def _close_quietly(conn: TcpConnection) -> None:
        try:
            conn.close()
        except Exception:
            pass
