"""Content-addressed body store (the CAS behind format-v3 recorded sites).

Motivation (the Web Execution Bundles argument, PAPERS.md): across a
recorded corpus the same response bodies recur constantly — shared CDN
objects, analytics beacons, font files, the same jQuery on five hundred
sites. The flat store (format v2) duplicates every byte per site; the CAS
stores each unique body **exactly once**, addressed by the same BLAKE2
checksum family the v2 manifests already use, and site pair files carry
``{"length": N, "cas": "<hex>"}`` references instead of base64 content.

Layout::

    <root>/
      objects/
        ab/
          ab3f...9c.bin      # raw body bytes; the name is the digest

Properties:

* **Write-once** — a blob's name is a function of its bytes, so a put of
  existing content is a no-op (counted as a dedup hit, never rewritten).
* **Self-verifying** — :meth:`CasStore.get` re-hashes what it reads; a
  flipped byte raises :class:`~repro.errors.BlobCorruptError` naming the
  blob path, with no manifest needed.
* **Concurrent-safe** — puts write a per-process temp name and
  ``os.replace`` into place, so parallel corpus generators (``mm-corpus
  generate --workers --cas``) can share one store without torn writes.
* **Shippable** — :func:`missing_blobs` computes the blob *delta* between
  a manifest's references and a local store, so a corpus travels to a
  fabric worker as site manifests plus only the blobs the worker lacks
  (see :mod:`repro.fabric.sync`).

The round-trip contract: a site saved through a CAS and loaded back is
*pair-for-pair byte-identical* (``to_canonical_bytes``) to the same site
saved flat — so replay measurements cannot tell the layouts apart.
"""

from __future__ import annotations

import hashlib
import os
from typing import Any, Dict, Iterable, Iterator, List, Set, Tuple

from repro.errors import BlobCorruptError, BlobMissingError
from repro.fsutil import fsync_dir

__all__ = [
    "CAS_DIR_NAME",
    "CasStore",
    "body_checksum",
    "missing_blobs",
]

#: Conventional CAS directory name inside a corpus folder (dot-named so
#: corpus walkers never mistake it for a recorded site).
CAS_DIR_NAME = ".cas"

_OBJECTS_DIR = "objects"
_BLOB_SUFFIX = ".bin"
_DIGEST_SIZE = 16  # same family/width as the v2 pair checksums


def body_checksum(data: bytes) -> str:
    """BLAKE2 address (hex) of a body's raw bytes.

    Same digest family and width as
    :func:`repro.record.store.pair_checksum`, applied to body bytes
    instead of pair-file bytes — one checksum vocabulary across both
    store formats.
    """
    return hashlib.blake2b(data, digest_size=_DIGEST_SIZE).hexdigest()


class CasStore:
    """A content-addressed store of response-body blobs.

    Args:
        root: the store directory (created lazily on first put).

    Example:
        >>> import tempfile
        >>> store = CasStore(tempfile.mkdtemp())
        >>> ref = store.put(b"hello body")
        >>> store.get(ref)
        b'hello body'
        >>> store.put(b"hello body") == ref   # write-once dedup
        True
    """

    def __init__(self, root: Any) -> None:
        self.root = os.fspath(root)
        #: Puts that found their blob already present (dedup hits).
        self.deduped = 0
        #: Puts that materialised a new blob.
        self.written = 0
        #: Bytes written by new-blob puts (unique bytes added).
        self.bytes_written = 0

    # ------------------------------------------------------------------ #
    # addressing

    def path_for(self, ref: str) -> str:
        """Filesystem path a blob address resolves to (existing or not)."""
        ref = self._check_ref(ref)
        return os.path.join(
            self.root, _OBJECTS_DIR, ref[:2], ref + _BLOB_SUFFIX
        )

    @staticmethod
    def _check_ref(ref: str) -> str:
        ref = str(ref).lower()
        if len(ref) != _DIGEST_SIZE * 2 or any(
            c not in "0123456789abcdef" for c in ref
        ):
            raise BlobMissingError(f"malformed CAS reference: {ref!r}")
        return ref

    # ------------------------------------------------------------------ #
    # reading

    def has(self, ref: str) -> bool:
        """Whether the store holds a blob at this address."""
        return os.path.exists(self.path_for(ref))

    def get(self, ref: str) -> bytes:
        """Read one blob, verifying it against its own address.

        Raises:
            BlobMissingError: no blob at this address (a dangling
                reference), naming the path that should have held it.
            BlobCorruptError: the blob's bytes no longer hash to the
                address (bitrot), naming the blob path.
        """
        path = self.path_for(ref)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            raise BlobMissingError(
                f"dangling CAS reference {ref}: no blob at {path}"
            ) from None
        if body_checksum(data) != self._check_ref(ref):
            raise BlobCorruptError(
                f"CAS blob {path} does not hash to its address {ref}"
            )
        return data

    def __contains__(self, ref: str) -> bool:
        return self.has(ref)

    def blobs(self) -> Iterator[Tuple[str, int]]:
        """All stored blobs as sorted ``(address, size)`` pairs."""
        objects = os.path.join(self.root, _OBJECTS_DIR)
        if not os.path.isdir(objects):
            return
        for shard in sorted(os.listdir(objects)):
            shard_dir = os.path.join(objects, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(_BLOB_SUFFIX):
                    continue
                ref = name[: -len(_BLOB_SUFFIX)]
                yield ref, os.path.getsize(os.path.join(shard_dir, name))

    def __len__(self) -> int:
        return sum(1 for __ in self.blobs())

    def stats(self) -> Dict[str, int]:
        """``{"blobs": n, "bytes": total}`` over the stored objects."""
        blobs = bytes_total = 0
        for __, size in self.blobs():
            blobs += 1
            bytes_total += size
        return {"blobs": blobs, "bytes": bytes_total}

    # ------------------------------------------------------------------ #
    # writing

    def put(self, data: bytes) -> str:
        """Store one body; return its address.

        Content the store already holds is never rewritten (the address
        proves the bytes are identical); the hit is counted in
        :attr:`deduped`. New blobs land via a per-process temp name +
        ``os.replace`` so concurrent writers cannot tear each other.
        """
        ref = body_checksum(data)
        path = self.path_for(ref)
        if os.path.exists(path):
            self.deduped += 1
            return ref
        parent = os.path.dirname(path)
        os.makedirs(parent, exist_ok=True)
        tmp = f"{path}.{os.getpid()}.tmp"
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        fsync_dir(parent)
        self.written += 1
        self.bytes_written += len(data)
        return ref

    def import_blob(self, ref: str, data: bytes) -> bool:
        """Install a blob shipped from another store (fabric sync).

        The bytes are verified against the claimed address before they
        are admitted — a corrupted transfer cannot poison the store.

        Returns:
            True when the blob was new, False when it was already held.

        Raises:
            BlobCorruptError: the bytes do not hash to ``ref``.
        """
        ref = self._check_ref(ref)
        if body_checksum(data) != ref:
            raise BlobCorruptError(
                f"refusing to import blob {ref}: bytes hash to "
                f"{body_checksum(data)}"
            )
        before = self.written
        self.put(data)
        return self.written > before

    def __repr__(self) -> str:
        return f"<CasStore {self.root!r}>"


def missing_blobs(refs: Iterable[str], store: CasStore) -> List[str]:
    """The delta: which of ``refs`` the store does not hold (sorted).

    This is the unit of corpus shipping — a worker that already holds a
    corpus's shared CDN objects receives only the manifests plus this
    list's blobs, not the whole corpus again.
    """
    unique: Set[str] = set(refs)
    return sorted(ref for ref in unique if not store.has(ref))
