"""One recorded request-response exchange.

Mahimahi stores each pair as a protobuf file containing the raw request,
the raw response, and the connection's original destination (IP/port) —
the datum that makes multi-origin replay possible. This class is the same
record with JSON serialization; response bodies can be real (base64) or
virtual (length only).
"""

from __future__ import annotations

import base64
import json
from typing import Any, Callable, Dict, Optional

from repro.errors import StoreFormatError

#: Resolves a CAS body reference (hex address) to the body's raw bytes.
BodyResolver = Callable[[str], bytes]

#: Stores raw body bytes, returning their CAS address.
BodyPut = Callable[[bytes], str]
from repro.http.body import Body
from repro.http.message import Headers, HttpRequest, HttpResponse
from repro.net.address import IPv4Address


class RequestResponsePair:
    """A recorded exchange and the origin that served it.

    Attributes:
        scheme: "http" or "https".
        origin_ip: the server IP the client originally connected to.
        origin_port: the server port (80 / 443 typically).
        request / response: the parsed messages.
    """

    __slots__ = ("scheme", "origin_ip", "origin_port", "request", "response")

    def __init__(
        self,
        scheme: str,
        origin_ip: IPv4Address,
        origin_port: int,
        request: HttpRequest,
        response: HttpResponse,
    ) -> None:
        if scheme not in ("http", "https"):
            raise StoreFormatError(f"unknown scheme: {scheme!r}")
        self.scheme = scheme
        self.origin_ip = origin_ip
        self.origin_port = origin_port
        self.request = request
        self.response = response

    @property
    def host(self) -> Optional[str]:
        """The request's Host header value (no port)."""
        return self.request.host

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form."""
        return {
            "scheme": self.scheme,
            "origin_ip": str(self.origin_ip),
            "origin_port": self.origin_port,
            "request": _message_to_dict(
                self.request,
                first_line=[self.request.method, self.request.uri,
                            self.request.version],
            ),
            "response": _message_to_dict(
                self.response,
                first_line=[self.response.version, self.response.status,
                            self.response.reason],
            ),
        }

    def to_canonical_bytes(self) -> bytes:
        """The pair's canonical serialized form (sorted keys, no spaces).

        This is the exact byte sequence :meth:`RecordedSite.save
        <repro.record.store.RecordedSite.save>` writes to a pair file and
        the input to the store's per-pair BLAKE2 checksum — one canonical
        encoding, so a checksum mismatch always means damage, never an
        encoder's whitespace mood.
        """
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    def to_cas_dict(self, put: BodyPut) -> Dict[str, Any]:
        """JSON form with real bodies externalised into a CAS.

        Every fully-real, non-empty body is handed to ``put`` (which
        stores it and returns its address) and serialised as
        ``{"length": N, "cas": "<hex>"}`` instead of inline base64.
        Virtual and empty bodies are unchanged — they carry no content
        to deduplicate.
        """
        data = self.to_dict()
        for message, body in (("request", self.request.body),
                              ("response", self.response.body)):
            body_dict = data[message]["body"]
            if "content_b64" in body_dict:
                body_dict.pop("content_b64")
                body_dict["cas"] = put(body.as_bytes())
        return data

    def to_cas_bytes(self, put: BodyPut) -> bytes:
        """Canonical bytes of the :meth:`to_cas_dict` form (the v3 pair
        file content and its checksum input)."""
        return json.dumps(
            self.to_cas_dict(put), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    @classmethod
    def from_dict(
        cls,
        data: Dict[str, Any],
        body_resolver: Optional[BodyResolver] = None,
    ) -> "RequestResponsePair":
        """Parse the :meth:`to_dict` (or :meth:`to_cas_dict`) form.

        Args:
            data: the serialized pair.
            body_resolver: resolves ``{"cas": "<hex>"}`` body references
                to raw bytes (a bound :meth:`CasStore.get
                <repro.record.cas.CasStore.get>`); without one, a CAS
                reference raises :class:`StoreFormatError`.

        Raises:
            StoreFormatError: on missing or malformed fields, or a CAS
                reference with no resolver attached.
            BlobMissingError / BlobCorruptError: propagated from the
                resolver for a dangling or corrupt reference.
        """
        try:
            req_data = data["request"]
            resp_data = data["response"]
            method, uri, req_version = req_data["first_line"]
            resp_version, status, reason = resp_data["first_line"]
            request = HttpRequest(
                method, uri,
                _headers_from_list(req_data["headers"]),
                _body_from_dict(req_data["body"], body_resolver),
                req_version,
            )
            response = HttpResponse(
                int(status), reason,
                _headers_from_list(resp_data["headers"]),
                _body_from_dict(resp_data["body"], body_resolver),
                resp_version,
            )
            return cls(
                data["scheme"],
                IPv4Address(data["origin_ip"]),
                int(data["origin_port"]),
                request,
                response,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreFormatError(f"malformed pair record: {exc}") from exc

    def __repr__(self) -> str:
        return (
            f"<RequestResponsePair {self.scheme}://{self.host}"
            f"{self.request.uri} @ {self.origin_ip}:{self.origin_port} "
            f"-> {self.response.status} ({self.response.body.length}B)>"
        )


def _message_to_dict(message, first_line) -> Dict[str, Any]:
    body: Body = message.body
    body_dict: Dict[str, Any] = {"length": body.length}
    if body.length and body.is_fully_real:
        body_dict["content_b64"] = base64.b64encode(body.as_bytes()).decode("ascii")
    return {
        "first_line": list(first_line),
        "headers": [[name, value] for name, value in message.headers],
        "body": body_dict,
    }


def _headers_from_list(items) -> Headers:
    return Headers((name, value) for name, value in items)


def _body_from_dict(
    data: Dict[str, Any], resolver: Optional[BodyResolver] = None
) -> Body:
    length = int(data["length"])
    content = data.get("content_b64")
    cas_ref = data.get("cas")
    if content is not None:
        raw = base64.b64decode(content)
        if len(raw) != length:
            raise StoreFormatError(
                f"body length {length} does not match content ({len(raw)}B)"
            )
        return Body.from_bytes(raw)
    if cas_ref is not None:
        if resolver is None:
            raise StoreFormatError(
                f"body references CAS blob {cas_ref!r} but no store is "
                f"attached (format v3 needs its cas directory)"
            )
        raw = resolver(str(cas_ref))
        if len(raw) != length:
            raise StoreFormatError(
                f"body length {length} does not match CAS blob "
                f"{cas_ref} ({len(raw)}B)"
            )
        return Body.from_bytes(raw)
    if length == 0:
        return Body.empty()
    return Body.virtual(length)
