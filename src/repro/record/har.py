"""HAR (HTTP Archive) export.

Web-measurement tooling speaks HAR: browser devtools, waterfall viewers,
and analysis pipelines all consume it. This module renders a recorded
site — optionally joined with a page load's timings — as a HAR 1.2
document, so measurements taken inside the simulator can be inspected
with standard waterfall tools.

Virtual bodies export their size with no text (mirroring HAR's own
``bodySize``-without-content convention).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.record.store import RecordedSite

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.browser.engine import PageLoadResult

HAR_VERSION = "1.2"
CREATOR = {"name": "repro-mahimahi", "version": "1.0.0"}

#: Fixed epoch for startedDateTime rendering: HAR wants wall-clock ISO
#: timestamps; the simulator has only virtual seconds, so exports anchor
#: virtual time zero here (any fixed anchor keeps waterfalls correct).
EPOCH = "2014-08-17T00:00:00"


def _iso(virtual_seconds: float) -> str:
    whole = int(virtual_seconds)
    millis = int(round((virtual_seconds - whole) * 1000))
    if millis >= 1000:
        whole += 1
        millis -= 1000
    hours, rem = divmod(whole, 3600)
    minutes, seconds = divmod(rem, 60)
    return (f"{EPOCH[:11]}{hours:02d}:{minutes:02d}:{seconds:02d}."
            f"{millis:03d}Z")


def _headers(message) -> List[Dict[str, str]]:
    return [{"name": name, "value": value} for name, value in message.headers]


def _entry(pair, started: float, duration_ms: float) -> Dict[str, Any]:
    request = pair.request
    response = pair.response
    url = f"{pair.scheme}://{pair.host or pair.origin_ip}{request.uri}"
    body = response.body
    entry: Dict[str, Any] = {
        "startedDateTime": _iso(started),
        "time": round(duration_ms, 3),
        "request": {
            "method": request.method,
            "url": url,
            "httpVersion": request.version,
            "headers": _headers(request),
            "queryString": [],
            "headersSize": -1,
            "bodySize": request.body.length,
        },
        "response": {
            "status": response.status,
            "statusText": response.reason,
            "httpVersion": response.version,
            "headers": _headers(response),
            "content": {
                "size": body.length,
                "mimeType": response.headers.get("Content-Type", ""),
            },
            "redirectURL": response.headers.get("Location", ""),
            "headersSize": -1,
            "bodySize": body.length,
        },
        "cache": {},
        "timings": {"send": 0, "wait": round(duration_ms, 3), "receive": 0},
        "serverIPAddress": str(pair.origin_ip),
    }
    if body.length and body.is_fully_real:
        entry["response"]["content"]["text"] = body.as_bytes().decode(
            "utf-8", "replace")
    return entry


def to_har(
    store: RecordedSite,
    result: Optional["PageLoadResult"] = None,
) -> Dict[str, Any]:
    """Build a HAR dict for a recorded site.

    Args:
        store: the recorded exchanges.
        result: a page load over this recording; when given, each entry
            gets that load's request start and duration, and a ``pages``
            record carries the measured onLoad time. Without it, entries
            are exported untimed in recording order.
    """
    timings = result.timings if result is not None else {}
    entries = []
    for pair in store.pairs:
        url = f"{pair.scheme}://{pair.host or pair.origin_ip}{pair.request.path}"
        started, finished = 0.0, 0.0
        for timed_url, (t0, t1) in timings.items():
            timed_base = timed_url.split("?", 1)[0]
            if timed_base == url:
                started, finished = t0, max(t1, t0)
                break
        entry = _entry(pair, started, (finished - started) * 1000.0)
        if result is not None:
            entry["pageref"] = "page_1"
        entries.append(entry)
    entries.sort(key=lambda e: e["startedDateTime"])

    log: Dict[str, Any] = {
        "version": HAR_VERSION,
        "creator": dict(CREATOR),
        "entries": entries,
    }
    if result is not None:
        log["pages"] = [{
            "startedDateTime": _iso(result.started_at),
            "id": "page_1",
            "title": store.name,
            "pageTimings": {
                "onLoad": round(result.page_load_time * 1000.0, 3)
                if result.complete else -1,
                "onContentLoad": -1,
            },
        }]
    return {"log": log}


def save_har(store: RecordedSite, path,
             result: Optional["PageLoadResult"] = None) -> None:
    """Write a HAR file for ``store`` (and optionally one load of it)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_har(store, result), handle, indent=2)
