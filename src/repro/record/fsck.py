"""Recorded-store integrity checking and repair (the ``mm-fsck`` engine).

A recorded folder is the *input* to every replay measurement, so a
damaged folder silently skews results long after the recording session
is gone. This module verifies a site folder the way a filesystem fsck
verifies a disk — every pair file is checked for presence, size,
checksum (format v2), JSON well-formedness, and semantic validity — and
optionally repairs it:

* damaged pair files are **quarantined** (moved into a ``quarantine/``
  subfolder, never deleted — the bytes may still be forensically useful);
* the manifest is **rewritten** to vouch for exactly the surviving
  pairs (atomically, via temp + fsync + rename);
* valid pair files are **never touched** — no rewrite, no renumber, no
  re-encode;
* format v1 folders are **upgraded** to v2 on repair (checksums computed
  from the surviving files' bytes as they are);
* format v3 folders keep their CAS layout: pair-file body references are
  resolved through the site's content-addressed store, a dangling or
  corrupt reference damages *that pair* (quarantined on repair like any
  other damage), and the rewritten manifest stays v3.

Corpus-level checks extend to the CAS itself (:func:`fsck_cas`): every
blob is re-hashed against its address, and blobs referenced by no site
under the checked tree are reported as **orphans** (quarantined on
repair — moved into ``<cas>/quarantine/``, never deleted, so a blob
orphaned by a quarantined pair file can still be recovered).

After a repair, :meth:`RecordedSite.load` succeeds strictly and
ReplayShell serves the surviving pairs, with the losses counted in the
obs artifact (see :class:`~repro.core.replayshell.ReplayShell`).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import BlobCorruptError, BlobMissingError, StoreFormatError
from repro.fsutil import atomic_write_bytes
from repro.record.cas import CasStore
from repro.record.entry import RequestResponsePair
from repro.record.store import (
    _CAS_FORMAT_VERSION,
    _PAIR_PREFIX,
    _QUARANTINE_DIR,
    _SITE_FILE,
    pair_checksum,
    pair_filename,
    read_manifest,
    site_blob_refs,
    site_cas,
)

__all__ = [
    "FsckProblem",
    "FsckReport",
    "fsck_cas",
    "fsck_site",
    "fsck_tree",
    "is_site_dir",
]


@dataclass(frozen=True)
class FsckProblem:
    """One integrity problem found in a site folder."""

    file: str  #: file name within the folder ("site.json" or a pair
    #: file), or a blob address in a CAS report
    kind: str  #: missing | truncated | corrupt | malformed | orphan |
    #: dangling | fatal
    detail: str  #: human-readable specifics


@dataclass
class FsckReport:
    """Outcome of one :func:`fsck_site` (or :func:`fsck_cas`) pass."""

    directory: str
    format_version: Optional[int] = None
    pairs_ok: int = 0  #: valid pair files (site) / intact blobs (cas)
    problems: List[FsckProblem] = field(default_factory=list)
    quarantined: List[str] = field(default_factory=list)
    repaired: bool = False
    upgraded: bool = False
    kind: str = "site"  #: "site" or "cas"

    @property
    def clean(self) -> bool:
        """True when the folder was fully intact."""
        return not self.problems

    @property
    def fatal(self) -> bool:
        """True when the folder cannot be repaired (site.json unusable)."""
        return any(p.kind == "fatal" for p in self.problems)

    def add(self, file: str, kind: str, detail: str) -> None:
        self.problems.append(FsckProblem(file, kind, detail))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "directory": str(self.directory),
            "kind": self.kind,
            "format_version": self.format_version,
            "pairs_ok": self.pairs_ok,
            "clean": self.clean,
            "repaired": self.repaired,
            "upgraded": self.upgraded,
            "quarantined": list(self.quarantined),
            "problems": [
                {"file": p.file, "kind": p.kind, "detail": p.detail}
                for p in self.problems
            ],
        }

    def __repr__(self) -> str:
        return (
            f"<FsckReport {self.directory!r} ok={self.pairs_ok} "
            f"problems={len(self.problems)} repaired={self.repaired}>"
        )


def is_site_dir(directory: Any) -> bool:
    """Whether ``directory`` looks like one recorded site folder."""
    return os.path.isfile(os.path.join(os.fspath(directory), _SITE_FILE))


def _verify_pair_file(
    directory: str,
    filename: str,
    size: Optional[int],
    checksum: Optional[str],
    resolver: Optional[Callable[[str], bytes]] = None,
) -> Tuple[Optional[FsckProblem], Optional[Dict[str, Any]]]:
    """Check one pair file; return (problem, manifest-entry-if-valid).

    ``resolver`` resolves CAS body references (v3 folders): a dangling
    reference is the pair's problem (kind ``dangling``), a blob that no
    longer hashes to its address is ``corrupt`` — either way the pair
    cannot serve its recorded body and repair quarantines it.
    """
    path = os.path.join(directory, filename)
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except FileNotFoundError:
        return FsckProblem(
            filename, "missing", f"missing pair file: {path}"
        ), None
    if size is not None and len(raw) != size:
        return FsckProblem(
            filename, "truncated",
            f"truncated pair file {path}: {len(raw)} bytes, "
            f"manifest says {size}",
        ), None
    if checksum is not None and pair_checksum(raw) != checksum:
        return FsckProblem(
            filename, "corrupt", f"checksum mismatch in pair file {path}"
        ), None
    try:
        data = json.loads(raw.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        return FsckProblem(
            filename, "corrupt", f"corrupt pair file {path}: {exc}"
        ), None
    try:
        RequestResponsePair.from_dict(data, body_resolver=resolver)
    except BlobMissingError as exc:
        return FsckProblem(
            filename, "dangling", f"pair file {path}: {exc}"
        ), None
    except BlobCorruptError as exc:
        return FsckProblem(
            filename, "corrupt", f"pair file {path}: {exc}"
        ), None
    except StoreFormatError as exc:
        return FsckProblem(
            filename, "malformed", f"malformed pair file {path}: {exc}"
        ), None
    return None, {
        "file": filename,
        "size": len(raw),
        "checksum": pair_checksum(raw),
    }


def fsck_site(directory: Any, repair: bool = False) -> FsckReport:
    """Verify (and optionally repair) one recorded site folder.

    Args:
        directory: the site folder.
        repair: quarantine damaged/orphan pair files into
            ``quarantine/`` and atomically rewrite the manifest (format
            v2) to cover exactly the surviving pairs. Valid pair files
            are never modified.

    Returns:
        An :class:`FsckReport`; ``report.clean`` means nothing was
        wrong, ``report.repaired`` means damage was found and repaired.
    """
    directory = os.fspath(directory)
    report = FsckReport(directory=directory)
    try:
        metadata = read_manifest(directory)
    except StoreFormatError as exc:
        report.add(_SITE_FILE, "fatal", str(exc))
        return report
    version = metadata.get("format_version")
    report.format_version = version
    resolver: Optional[Callable[[str], bytes]] = None
    if version == _CAS_FORMAT_VERSION:
        try:
            resolver = site_cas(directory, metadata).get
        except StoreFormatError as exc:
            report.add(_SITE_FILE, "fatal", str(exc))
            return report

    valid_entries: List[Dict[str, Any]] = []
    bad_files: List[str] = []

    if version == 1:
        # v1 manifests carry no per-pair metadata, so the folder itself
        # is the source of truth: every pair-NNNNN.json present is a
        # candidate (content-verified below), and holes in the numbering
        # are reported as missing files. Repair keeps whatever verifies
        # — the rewritten v2 manifest names survivors explicitly, so
        # contiguous numbering stops being a load requirement.
        found = sorted(
            f for f in os.listdir(directory)
            if f.startswith(_PAIR_PREFIX) and not f.endswith(".tmp")
        )
        declared = metadata.get("pair_count")
        if declared is not None and declared != len(found):
            report.add(
                _SITE_FILE, "missing",
                f"{os.path.join(directory, _SITE_FILE)} declares "
                f"{declared} pairs but {len(found)} pair files exist",
            )
        top = max(len(found), declared or 0)
        for index in range(top):
            gap = pair_filename(index)
            if gap not in found and index < (declared or len(found)):
                report.add(
                    gap, "missing",
                    f"pair numbering has a gap: missing "
                    f"{os.path.join(directory, gap)}",
                )
        for filename in found:
            problem, entry = _verify_pair_file(
                directory, filename, size=None, checksum=None
            )
            if problem is not None:
                report.problems.append(problem)
                bad_files.append(filename)
            else:
                valid_entries.append(entry)
    else:
        entries = metadata.get("pairs")
        if not isinstance(entries, list):
            report.add(
                _SITE_FILE, "fatal",
                f"{os.path.join(directory, _SITE_FILE)}: format v2 "
                f"requires a 'pairs' manifest list",
            )
            return report
        manifest_files = set()
        for entry in entries:
            try:
                filename = entry["file"]
                size = int(entry["size"])
                checksum = str(entry["checksum"])
            except (TypeError, KeyError, ValueError):
                report.add(
                    _SITE_FILE, "corrupt",
                    f"malformed manifest entry {entry!r} in "
                    f"{os.path.join(directory, _SITE_FILE)}",
                )
                continue
            manifest_files.add(filename)
            problem, valid = _verify_pair_file(
                directory, filename, size=size, checksum=checksum,
                resolver=resolver,
            )
            if problem is not None:
                report.problems.append(problem)
                if problem.kind != "missing":
                    bad_files.append(filename)
            else:
                valid_entries.append(valid)
        for filename in sorted(os.listdir(directory)):
            if (filename.startswith(_PAIR_PREFIX)
                    and not filename.endswith(".tmp")
                    and filename not in manifest_files):
                report.add(
                    filename, "orphan",
                    f"orphan pair file not in the manifest: "
                    f"{os.path.join(directory, filename)}",
                )
                bad_files.append(filename)

    report.pairs_ok = len(valid_entries)

    if repair and report.problems and not report.fatal:
        _repair(directory, metadata, valid_entries, bad_files, report)
    return report


def _repair(
    directory: str,
    metadata: Dict[str, Any],
    valid_entries: List[Dict[str, Any]],
    bad_files: List[str],
    report: FsckReport,
) -> None:
    """Quarantine the damage and commit a clean manifest.

    v1 folders are upgraded to v2; v3 folders *stay* v3 (the surviving
    pair files still reference the CAS, so the manifest must keep naming
    it).
    """
    quarantine = os.path.join(directory, _QUARANTINE_DIR)
    for filename in bad_files:
        source = os.path.join(directory, filename)
        if not os.path.exists(source):
            continue
        os.makedirs(quarantine, exist_ok=True)
        os.replace(source, os.path.join(quarantine, filename))
        report.quarantined.append(filename)
    is_v3 = metadata.get("format_version") == _CAS_FORMAT_VERSION
    manifest = {
        "format_version": _CAS_FORMAT_VERSION if is_v3 else 2,
        "name": metadata.get("name", os.path.basename(directory)),
        "pair_count": len(valid_entries),
        "pairs": valid_entries,
    }
    if is_v3:
        manifest["cas"] = metadata.get("cas")
    atomic_write_bytes(
        os.path.join(directory, _SITE_FILE),
        json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8"),
    )
    report.repaired = True
    report.upgraded = metadata.get("format_version") == 1


def fsck_cas(
    cas_root: Any,
    referenced: Set[str],
    repair: bool = False,
) -> FsckReport:
    """Verify one content-addressed store against its referencing sites.

    Checks every stored blob re-hashes to its address (``corrupt``
    otherwise), reports blobs no site references as ``orphan``, and
    reports referenced addresses with no blob as ``dangling`` (the
    CAS-level view of the same damage the per-pair check finds).

    ``repair`` moves corrupt and orphan blobs into ``<cas>/quarantine/``
    — moved, never deleted; an orphan produced by a quarantined pair
    file stays recoverable. Dangling references are *not* repairable
    here: the missing bytes are gone, and the referencing pair files are
    the site-level repair's to quarantine.

    Args:
        cas_root: the store directory.
        referenced: every blob address the in-scope sites reference.
        repair: quarantine corrupt and orphan blobs.
    """
    cas_root = os.fspath(cas_root)
    store = CasStore(cas_root)
    report = FsckReport(directory=cas_root, kind="cas",
                        format_version=_CAS_FORMAT_VERSION)
    bad: List[str] = []
    stored: Set[str] = set()
    for ref, __ in store.blobs():
        stored.add(ref)
        try:
            store.get(ref)
        except BlobCorruptError as exc:
            report.add(ref, "corrupt", str(exc))
            bad.append(ref)
            continue
        except BlobMissingError as exc:  # malformed name in objects/
            report.add(ref, "malformed", str(exc))
            continue
        if ref not in referenced:
            report.add(ref, "orphan",
                       f"orphan blob (referenced by no site): "
                       f"{store.path_for(ref)}")
            bad.append(ref)
    report.pairs_ok = len(stored) - len(bad)
    for ref in sorted(referenced - stored):
        report.add(ref, "dangling",
                   f"dangling reference: no blob at {store.path_for(ref)}")
    if repair and bad:
        quarantine = os.path.join(cas_root, _QUARANTINE_DIR)
        os.makedirs(quarantine, exist_ok=True)
        for ref in bad:
            source = store.path_for(ref)
            if os.path.exists(source):
                os.replace(source,
                           os.path.join(quarantine, ref + ".bin"))
                report.quarantined.append(ref)
        report.repaired = True
    return report


def _cas_scope(site_dirs: List[str], tree_root: str) -> Dict[str, Set[str]]:
    """CAS root -> union of blob refs, over the v3 sites in scope.

    Only stores *inside* ``tree_root`` are returned: a store outside the
    checked tree may be shared with sites fsck cannot see, and an orphan
    verdict there would be unsound.
    """
    tree_root = os.path.realpath(tree_root)
    scope: Dict[str, Set[str]] = {}
    for site_dir in site_dirs:
        try:
            metadata = read_manifest(site_dir)
        except StoreFormatError:
            continue
        if metadata.get("format_version") != _CAS_FORMAT_VERSION:
            continue
        try:
            store = site_cas(site_dir, metadata)
        except StoreFormatError:
            continue
        root = os.path.realpath(store.root)
        if os.path.commonpath([tree_root, root]) != tree_root:
            continue
        scope.setdefault(root, set()).update(site_blob_refs(site_dir))
    return scope


def fsck_tree(
    directory: Any, repair: bool = False
) -> List[FsckReport]:
    """Fsck a corpus folder: every immediate subdirectory with a
    ``site.json``, in sorted order, then every content-addressed store
    those sites reference (when it lives under ``directory`` — see
    :func:`fsck_cas` for why out-of-tree stores are skipped). A site
    folder passed directly is checked as itself, without a CAS orphan
    pass (one site cannot vouch for a store other sites may share).

    The CAS pass runs *after* any site repairs, so blobs referenced only
    by just-quarantined pair files are correctly reported (and
    quarantined) as orphans.

    Raises:
        StoreFormatError: when ``directory`` contains no recorded site.
    """
    directory = os.fspath(directory)
    if is_site_dir(directory):
        return [fsck_site(directory, repair=repair)]
    if not os.path.isdir(directory):
        raise StoreFormatError(f"not a directory: {directory}")
    reports = []
    site_dirs = []
    for name in sorted(os.listdir(directory)):
        candidate = os.path.join(directory, name)
        if os.path.isdir(candidate) and is_site_dir(candidate):
            site_dirs.append(candidate)
            reports.append(fsck_site(candidate, repair=repair))
    if not reports:
        raise StoreFormatError(
            f"no recorded sites under {directory!r} "
            f"(expected site folders containing {_SITE_FILE})"
        )
    for root, refs in sorted(_cas_scope(site_dirs, directory).items()):
        reports.append(fsck_cas(root, refs, repair=repair))
    return reports
