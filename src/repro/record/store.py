"""Recorded-site folders.

A recorded site is a directory: ``site.json`` with metadata plus one
``pair-NNNNN.json`` per request-response exchange — the JSON analogue of
Mahimahi's recorded folders of protobuf files. The store also answers the
two questions ReplayShell asks: which (IP, port) origins existed, and which
hostnames map to which recorded IP.

Format v2 makes the folder *verifiable and durable* (the Web Execution
Bundles argument: a recorded measurement is only reproducible if the
recording itself can be checked):

* ``site.json`` carries a **manifest**: one entry per pair file with its
  size and a BLAKE2 checksum over the pair's canonical bytes, so
  truncation, bitrot, and missing files are all detectable;
* :meth:`RecordedSite.save` is **atomic** — every file is written to a
  temp name, fsync'd, and ``os.replace``d, with the manifest committed
  last, so a crash mid-save never leaves a folder that later loads as
  valid-but-wrong;
* :meth:`RecordedSite.load` verifies the manifest (strict: any damage
  raises with the offending path); :meth:`RecordedSite.load_tolerant`
  degrades gracefully — loads every valid pair and reports the damage in
  a :class:`StoreDamage` so ReplayShell can serve what survives.

Format v1 folders (no manifest) still load: checksums are simply not
checked, and the pair numbering is validated against ``pair_count``
instead. ``mm-fsck --repair`` upgrades a folder to v2 in place.

Format v3 is v2 with bodies externalised into a **content-addressed
store** (:mod:`repro.record.cas`): pair files carry ``{"length", "cas"}``
body references instead of inline base64, ``site.json`` names the CAS
directory (``"cas"``: a path relative to the site folder), and identical
bodies across a whole corpus are stored once. The load path resolves
references transparently — a v3 site loads into exactly the same
:class:`RecordedSite` (pair-for-pair canonical-byte identical) as its
flat v2 twin, so ReplayShell and every measurement are layout-blind.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, List, NamedTuple, Optional, Set, Tuple

from repro.errors import (
    BlobCorruptError,
    BlobMissingError,
    StoreFormatError,
    StoreIntegrityError,
)
from repro.fsutil import atomic_write_bytes, fsync_dir as _fsync_dir
from repro.net.address import IPv4Address
from repro.record.cas import CasStore
from repro.record.entry import RequestResponsePair

_SITE_FILE = "site.json"
_PAIR_PREFIX = "pair-"
_QUARANTINE_DIR = "quarantine"
_FORMAT_VERSION = 2
_CAS_FORMAT_VERSION = 3
_SUPPORTED_VERSIONS = (1, 2, 3)


def pair_checksum(data: bytes) -> str:
    """BLAKE2 checksum (hex) of a pair file's bytes."""
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def pair_filename(index: int) -> str:
    """The canonical pair file name for recording index ``index``."""
    return f"{_PAIR_PREFIX}{index:05d}.json"


def read_manifest(directory: Any) -> Dict[str, Any]:
    """Read and validate a site folder's ``site.json``.

    Returns the metadata dict (format version already checked against
    :data:`_SUPPORTED_VERSIONS`).

    Raises:
        StoreFormatError: missing folder/file, corrupt JSON, or an
            unsupported format version — always naming the offending
            path.
    """
    site_path = os.path.join(os.fspath(directory), _SITE_FILE)
    try:
        with open(site_path, "r", encoding="utf-8") as handle:
            metadata = json.load(handle)
    except FileNotFoundError:
        raise StoreFormatError(f"not a recorded site: {directory}") from None
    except json.JSONDecodeError as exc:
        raise StoreFormatError(
            f"corrupt {_SITE_FILE}: {site_path}: {exc}"
        ) from exc
    if not isinstance(metadata, dict):
        raise StoreFormatError(
            f"corrupt {_SITE_FILE}: {site_path}: not a JSON object"
        )
    version = metadata.get("format_version")
    if version not in _SUPPORTED_VERSIONS:
        raise StoreFormatError(
            f"unsupported format version {version!r} in {site_path}"
        )
    return metadata


def site_cas(directory: Any, metadata: Optional[Dict[str, Any]] = None) -> CasStore:
    """The CAS store a format-v3 site folder references.

    Args:
        directory: the site folder.
        metadata: its already-read manifest (read here when omitted).

    Raises:
        StoreFormatError: the manifest is not v3 or names no CAS.
    """
    directory = os.fspath(directory)
    if metadata is None:
        metadata = read_manifest(directory)
    if metadata.get("format_version") != _CAS_FORMAT_VERSION:
        raise StoreFormatError(
            f"{os.path.join(directory, _SITE_FILE)}: format "
            f"v{metadata.get('format_version')} has no CAS"
        )
    cas_rel = metadata.get("cas")
    if not isinstance(cas_rel, str) or not cas_rel:
        raise StoreFormatError(
            f"{os.path.join(directory, _SITE_FILE)}: format v3 requires "
            f"a 'cas' directory reference"
        )
    return CasStore(os.path.normpath(os.path.join(directory, cas_rel)))


def site_blob_refs(directory: Any) -> List[str]:
    """Every CAS address a site folder's pair files reference (sorted,
    deduplicated). Non-v3 folders reference nothing.

    Unreadable or corrupt pair files contribute no references (they are
    mm-fsck's problem, reported separately); the refs of everything
    readable are still returned, which is what both the orphan-blob scan
    and the fabric corpus delta need.
    """
    directory = os.fspath(directory)
    metadata = read_manifest(directory)
    if metadata.get("format_version") != _CAS_FORMAT_VERSION:
        return []
    refs: Set[str] = set()
    entries = metadata.get("pairs")
    if not isinstance(entries, list):
        return []
    for entry in entries:
        filename = entry.get("file") if isinstance(entry, dict) else None
        if not isinstance(filename, str):
            continue
        path = os.path.join(directory, filename)
        try:
            with open(path, "rb") as handle:
                data = json.loads(handle.read().decode("utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            continue
        if not isinstance(data, dict):
            continue
        for message in ("request", "response"):
            body = data.get(message, {}).get("body", {})
            ref = body.get("cas") if isinstance(body, dict) else None
            if isinstance(ref, str):
                refs.add(ref)
    return sorted(refs)


class DamagedPair(NamedTuple):
    """One damaged pair file, as found by a tolerant load or mm-fsck."""

    file: str  #: pair file name within the site folder
    problem: str  #: "missing" | "truncated" | "corrupt" | "malformed" | "orphan"
    detail: str  #: human-readable specifics


class StoreDamage:
    """Damage report from :meth:`RecordedSite.load_tolerant`.

    Attributes:
        directory: the site folder inspected.
        damaged: the per-file damage records.
        pairs_loaded: pairs that survived and were loaded.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.damaged: List[DamagedPair] = []
        self.pairs_loaded = 0

    def add(self, file: str, problem: str, detail: str) -> None:
        self.damaged.append(DamagedPair(file, problem, detail))

    @property
    def ok(self) -> bool:
        """True when the folder was fully intact."""
        return not self.damaged

    def __len__(self) -> int:
        return len(self.damaged)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "directory": str(self.directory),
            "pairs_loaded": self.pairs_loaded,
            "pairs_damaged": len(self.damaged),
            "damaged": [d._asdict() for d in self.damaged],
        }

    def __repr__(self) -> str:
        return (
            f"<StoreDamage {self.directory!r} loaded={self.pairs_loaded} "
            f"damaged={len(self.damaged)}>"
        )


class RecordedSite:
    """An in-memory recorded site, loadable from / savable to a folder.

    Args:
        name: site label (e.g. "www.example.com").
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._pairs: List[RequestResponsePair] = []
        #: Damage report when this site came from :meth:`load_tolerant`
        #: of a damaged folder (None for intact/in-memory sites).
        self.damage: Optional[StoreDamage] = None

    # ------------------------------------------------------------------ #
    # content

    def add_pair(self, pair: RequestResponsePair) -> None:
        """Append one recorded exchange."""
        self._pairs.append(pair)

    @property
    def pairs(self) -> List[RequestResponsePair]:
        """All recorded exchanges, in recording order (copy)."""
        return list(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    def origins(self) -> Set[Tuple[IPv4Address, int]]:
        """Distinct (IP, port) pairs seen while recording — the servers
        ReplayShell must spawn."""
        return {(p.origin_ip, p.origin_port) for p in self._pairs}

    def hostnames(self) -> Dict[str, IPv4Address]:
        """hostname → recorded IP (first recorded wins, like a DNS pin)."""
        mapping: Dict[str, IPv4Address] = {}
        for pair in self._pairs:
            host = pair.host
            if host is not None and host not in mapping:
                mapping[host] = pair.origin_ip
        return mapping

    def total_response_bytes(self) -> int:
        """Sum of response body lengths (site weight)."""
        return sum(p.response.body.length for p in self._pairs)

    def pairs_for_origin(
        self, ip: IPv4Address, port: int
    ) -> List[RequestResponsePair]:
        """Exchanges served by one origin (note: Mahimahi gives every
        replay server the whole store; this is for tooling/tests)."""
        return [
            p for p in self._pairs
            if p.origin_ip == ip and p.origin_port == port
        ]

    # ------------------------------------------------------------------ #
    # persistence

    def save(self, directory, cas: Optional[CasStore] = None) -> None:
        """Write the site folder atomically (format v2, with manifest).

        Every pair file and the manifest go through temp + fsync +
        ``os.replace``; the manifest is committed *last*, so a crash at
        any point leaves either no loadable site (no/old ``site.json``)
        or a complete one — never a half-written folder that loads as
        valid.

        Args:
            cas: a :class:`~repro.record.cas.CasStore` to externalise
                bodies into (format v3). Bodies land in the CAS *before*
                the pair files that reference them, and the manifest
                still commits last, so the crash-safety ordering holds:
                nothing loadable ever references a blob that was not yet
                durable.
        """
        directory = os.fspath(directory)
        os.makedirs(directory, exist_ok=True)
        manifest_pairs: List[Dict[str, Any]] = []
        for index, pair in enumerate(self._pairs):
            filename = pair_filename(index)
            if cas is not None:
                data = pair.to_cas_bytes(cas.put)
            else:
                data = pair.to_canonical_bytes()
            atomic_write_bytes(os.path.join(directory, filename), data)
            manifest_pairs.append({
                "file": filename,
                "size": len(data),
                "checksum": pair_checksum(data),
            })
        metadata = {
            "format_version": (_CAS_FORMAT_VERSION if cas is not None
                               else _FORMAT_VERSION),
            "name": self.name,
            "pair_count": len(self._pairs),
            "pairs": manifest_pairs,
        }
        if cas is not None:
            metadata["cas"] = os.path.relpath(cas.root, directory)
        atomic_write_bytes(
            os.path.join(directory, _SITE_FILE),
            json.dumps(metadata, indent=2, sort_keys=True).encode("utf-8"),
        )
        _fsync_dir(directory)

    @classmethod
    def load(cls, directory) -> "RecordedSite":
        """Read a site folder, verifying it completely (strict).

        Raises:
            StoreFormatError: missing/malformed folder, orphan or gap in
                the pair numbering, or a pair that fails to parse — the
                message names the offending path.
            StoreIntegrityError: a pair file whose size or checksum does
                not match the manifest (truncation, bitrot).
        """
        site, damage = cls._load(os.fspath(directory), strict=True)
        assert damage.ok
        return site

    @classmethod
    def load_tolerant(cls, directory) -> Tuple["RecordedSite", StoreDamage]:
        """Read a site folder, salvaging every valid pair.

        The graceful-degradation path ReplayShell uses on damaged
        folders: damaged pairs are skipped and reported in the returned
        :class:`StoreDamage` (also stashed on ``site.damage``) instead
        of raising. Only an unreadable/unsupported ``site.json`` — where
        nothing can be salvaged — still raises.

        Raises:
            StoreFormatError: when ``site.json`` itself is unusable.
        """
        site, damage = cls._load(os.fspath(directory), strict=False)
        return site, damage

    @classmethod
    def _load(
        cls, directory: str, strict: bool
    ) -> Tuple["RecordedSite", StoreDamage]:
        metadata = read_manifest(directory)
        site = cls(str(metadata.get("name", os.path.basename(directory))))
        damage = StoreDamage(directory)
        version = metadata.get("format_version")
        if version == 1:
            cls._load_v1(directory, metadata, site, damage, strict)
        else:
            resolver = None
            if version == _CAS_FORMAT_VERSION:
                resolver = site_cas(directory, metadata).get
            cls._load_v2(directory, metadata, site, damage, strict,
                         resolver=resolver)
        site.damage = None if damage.ok else damage
        damage.pairs_loaded = len(site)
        return site, damage

    # -- v1: no manifest; discover files, validate numbering ----------- #

    @classmethod
    def _load_v1(
        cls,
        directory: str,
        metadata: Dict[str, Any],
        site: "RecordedSite",
        damage: StoreDamage,
        strict: bool,
    ) -> None:
        found = sorted(
            f for f in os.listdir(directory)
            if f.startswith(_PAIR_PREFIX) and not f.endswith(".tmp")
        )
        expected = [pair_filename(i) for i in range(len(found))]
        if found != expected:
            # Same length by construction, so the first positional
            # mismatch names the file that breaks contiguous numbering —
            # an orphan, or the first file after a gap.
            offender, wanted = next(
                (f, e) for f, e in zip(found, expected) if f != e
            )
            problem = (
                f"pair numbering has an orphan or gap: found "
                f"{os.path.join(directory, offender)} where "
                f"{wanted} was expected"
            )
            if strict:
                raise StoreFormatError(problem)
            damage.add(offender, "orphan", problem)
        declared = metadata.get("pair_count")
        if declared is not None and declared != len(found):
            problem = (
                f"{os.path.join(directory, _SITE_FILE)} declares "
                f"{declared} pairs but {len(found)} pair files exist"
            )
            if strict:
                raise StoreFormatError(problem)
            damage.add(_SITE_FILE, "missing", problem)
        for filename in found:
            if filename not in expected and not strict:
                continue  # orphan already reported
            cls._load_pair_file(
                directory, filename, site, damage, strict,
                size=None, checksum=None,
            )

    # -- v2/v3: trust the manifest, verify everything against it ------- #

    @classmethod
    def _load_v2(
        cls,
        directory: str,
        metadata: Dict[str, Any],
        site: "RecordedSite",
        damage: StoreDamage,
        strict: bool,
        resolver=None,
    ) -> None:
        entries = metadata.get("pairs")
        if not isinstance(entries, list):
            raise StoreFormatError(
                f"{os.path.join(directory, _SITE_FILE)}: format v2 "
                f"requires a 'pairs' manifest list"
            )
        manifest_files = set()
        for entry in entries:
            try:
                filename = entry["file"]
                size = int(entry["size"])
                checksum = str(entry["checksum"])
            except (TypeError, KeyError, ValueError) as exc:
                raise StoreFormatError(
                    f"{os.path.join(directory, _SITE_FILE)}: malformed "
                    f"manifest entry {entry!r}: {exc}"
                ) from exc
            manifest_files.add(filename)
            cls._load_pair_file(
                directory, filename, site, damage, strict,
                size=size, checksum=checksum, resolver=resolver,
            )
        # Orphans: pair files on disk the manifest does not vouch for.
        for filename in sorted(os.listdir(directory)):
            if (filename.startswith(_PAIR_PREFIX)
                    and not filename.endswith(".tmp")
                    and filename not in manifest_files):
                problem = (
                    f"orphan pair file not in the manifest: "
                    f"{os.path.join(directory, filename)}"
                )
                if strict:
                    raise StoreFormatError(problem)
                damage.add(filename, "orphan", problem)

    @classmethod
    def _load_pair_file(
        cls,
        directory: str,
        filename: str,
        site: "RecordedSite",
        damage: StoreDamage,
        strict: bool,
        size: Optional[int],
        checksum: Optional[str],
        resolver=None,
    ) -> None:
        path = os.path.join(directory, filename)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            problem = f"missing pair file: {path}"
            if strict:
                raise StoreFormatError(problem) from None
            damage.add(filename, "missing", problem)
            return
        if size is not None and len(raw) != size:
            problem = (
                f"truncated pair file {path}: {len(raw)} bytes, "
                f"manifest says {size}"
            )
            if strict:
                raise StoreIntegrityError(problem)
            damage.add(filename, "truncated", problem)
            return
        if checksum is not None and pair_checksum(raw) != checksum:
            problem = f"checksum mismatch in pair file {path}"
            if strict:
                raise StoreIntegrityError(problem)
            damage.add(filename, "corrupt", problem)
            return
        try:
            data = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            problem = f"corrupt pair file {path}: {exc}"
            if strict:
                raise StoreFormatError(problem) from exc
            damage.add(filename, "corrupt", problem)
            return
        try:
            pair = RequestResponsePair.from_dict(data, body_resolver=resolver)
        except BlobMissingError as exc:
            problem = f"pair file {path}: {exc}"
            if strict:
                raise BlobMissingError(problem) from exc
            damage.add(filename, "missing", problem)
            return
        except BlobCorruptError as exc:
            problem = f"pair file {path}: {exc}"
            if strict:
                raise BlobCorruptError(problem) from exc
            damage.add(filename, "corrupt", problem)
            return
        except StoreFormatError as exc:
            problem = f"malformed pair file {path}: {exc}"
            if strict:
                raise StoreFormatError(problem) from exc
            damage.add(filename, "malformed", problem)
            return
        site.add_pair(pair)

    def __repr__(self) -> str:
        return (
            f"<RecordedSite {self.name!r} pairs={len(self._pairs)} "
            f"origins={len(self.origins())}>"
        )
