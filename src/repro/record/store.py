"""Recorded-site folders.

A recorded site is a directory: ``site.json`` with metadata plus one
``pair-NNNNN.json`` per request-response exchange — the JSON analogue of
Mahimahi's recorded folders of protobuf files. The store also answers the
two questions ReplayShell asks: which (IP, port) origins existed, and which
hostnames map to which recorded IP.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Set, Tuple

from repro.errors import StoreFormatError
from repro.net.address import IPv4Address
from repro.record.entry import RequestResponsePair

_SITE_FILE = "site.json"
_PAIR_PREFIX = "pair-"
_FORMAT_VERSION = 1


class RecordedSite:
    """An in-memory recorded site, loadable from / savable to a folder.

    Args:
        name: site label (e.g. "www.example.com").
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._pairs: List[RequestResponsePair] = []

    # ------------------------------------------------------------------ #
    # content

    def add_pair(self, pair: RequestResponsePair) -> None:
        """Append one recorded exchange."""
        self._pairs.append(pair)

    @property
    def pairs(self) -> List[RequestResponsePair]:
        """All recorded exchanges, in recording order (copy)."""
        return list(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    def origins(self) -> Set[Tuple[IPv4Address, int]]:
        """Distinct (IP, port) pairs seen while recording — the servers
        ReplayShell must spawn."""
        return {(p.origin_ip, p.origin_port) for p in self._pairs}

    def hostnames(self) -> Dict[str, IPv4Address]:
        """hostname → recorded IP (first recorded wins, like a DNS pin)."""
        mapping: Dict[str, IPv4Address] = {}
        for pair in self._pairs:
            host = pair.host
            if host is not None and host not in mapping:
                mapping[host] = pair.origin_ip
        return mapping

    def total_response_bytes(self) -> int:
        """Sum of response body lengths (site weight)."""
        return sum(p.response.body.length for p in self._pairs)

    def pairs_for_origin(
        self, ip: IPv4Address, port: int
    ) -> List[RequestResponsePair]:
        """Exchanges served by one origin (note: Mahimahi gives every
        replay server the whole store; this is for tooling/tests)."""
        return [
            p for p in self._pairs
            if p.origin_ip == ip and p.origin_port == port
        ]

    # ------------------------------------------------------------------ #
    # persistence

    def save(self, directory) -> None:
        """Write the site folder (created if needed, pairs overwritten)."""
        os.makedirs(directory, exist_ok=True)
        metadata = {
            "format_version": _FORMAT_VERSION,
            "name": self.name,
            "pair_count": len(self._pairs),
        }
        with open(os.path.join(directory, _SITE_FILE), "w",
                  encoding="utf-8") as handle:
            json.dump(metadata, handle, indent=2)
        for index, pair in enumerate(self._pairs):
            path = os.path.join(directory, f"{_PAIR_PREFIX}{index:05d}.json")
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(pair.to_dict(), handle)

    @classmethod
    def load(cls, directory) -> "RecordedSite":
        """Read a site folder.

        Raises:
            StoreFormatError: on a missing/malformed folder.
        """
        site_path = os.path.join(directory, _SITE_FILE)
        try:
            with open(site_path, "r", encoding="utf-8") as handle:
                metadata = json.load(handle)
        except FileNotFoundError:
            raise StoreFormatError(f"not a recorded site: {directory}") from None
        except json.JSONDecodeError as exc:
            raise StoreFormatError(f"corrupt {_SITE_FILE}: {exc}") from exc
        if metadata.get("format_version") != _FORMAT_VERSION:
            raise StoreFormatError(
                f"unsupported format version {metadata.get('format_version')!r}"
            )
        site = cls(str(metadata.get("name", os.path.basename(directory))))
        for filename in sorted(os.listdir(directory)):
            if not filename.startswith(_PAIR_PREFIX):
                continue
            path = os.path.join(directory, filename)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    data = json.load(handle)
            except json.JSONDecodeError as exc:
                raise StoreFormatError(f"corrupt pair file {filename}: {exc}") from exc
            site.add_pair(RequestResponsePair.from_dict(data))
        return site

    def __repr__(self) -> str:
        return (
            f"<RecordedSite {self.name!r} pairs={len(self._pairs)} "
            f"origins={len(self.origins())}>"
        )
