"""The replay request matcher (Mahimahi's CGI script).

On replay, every incoming request is compared against the recorded set:

1. A request matching a recorded request's **host and full URI exactly**
   returns that recording's response.
2. Otherwise, among recordings with the **same host and same path**
   (URI up to '?'), the one whose query string shares the **longest common
   prefix** with the incoming query wins — dynamic URLs (cache busters,
   timestamps) still hit the right resource.
3. No candidate at all → 404, so unrecorded resources fail fast instead of
   hanging the page load.

This mirrors the matching semantics of Mahimahi's ``replayserver``.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.http.body import Body
from repro.http.message import Headers, HttpRequest, HttpResponse
from repro.record.entry import RequestResponsePair


class MatchResult(NamedTuple):
    """Outcome of one match attempt."""

    response: HttpResponse
    pair: Optional[RequestResponsePair]
    exact: bool


def _common_prefix_len(a: str, b: str) -> int:
    limit = min(len(a), len(b))
    i = 0
    while i < limit and a[i] == b[i]:
        i += 1
    return i


class RequestMatcher:
    """Matches incoming requests against a recorded set.

    Every ReplayShell server holds one matcher over the *entire* recorded
    site (each Apache in Mahimahi can serve the whole folder), so requests
    that arrive at the "wrong" origin — as happens in single-server mode —
    still resolve.

    Args:
        pairs: the recorded exchanges to serve.
        damaged_pairs: how many of the site's recorded pairs were lost
            to store damage (quarantined by ``mm-fsck`` or skipped by a
            tolerant load). A matcher over a damaged site still serves
            every surviving pair; the count makes the degradation
            visible — misses mention it, so a 404 during replay of a
            damaged folder explains itself.
    """

    def __init__(
        self,
        pairs: List[RequestResponsePair],
        damaged_pairs: int = 0,
    ) -> None:
        self._by_exact: Dict[Tuple[Optional[str], str], RequestResponsePair] = {}
        self._by_path: Dict[Tuple[Optional[str], str], List[RequestResponsePair]] = {}
        for pair in pairs:
            exact_key = (pair.host, pair.request.uri)
            # First recording wins, matching Mahimahi's scan order.
            self._by_exact.setdefault(exact_key, pair)
            path_key = (pair.host, pair.request.path)
            self._by_path.setdefault(path_key, []).append(pair)
        self.damaged_pairs = damaged_pairs
        self.exact_hits = 0
        self.prefix_hits = 0
        self.misses = 0

    def match(self, request: HttpRequest) -> MatchResult:
        """Find the response for ``request`` (falls back to 404)."""
        host = request.host
        exact = self._by_exact.get((host, request.uri))
        if exact is not None:
            self.exact_hits += 1
            return MatchResult(exact.response, exact, True)
        candidates = self._by_path.get((host, request.path), [])
        if candidates:
            query = request.query
            best = max(
                candidates,
                key=lambda p: _common_prefix_len(p.request.query, query),
            )
            self.prefix_hits += 1
            return MatchResult(best.response, best, False)
        self.misses += 1
        return MatchResult(
            _not_found(request, self.damaged_pairs), None, False
        )


def _not_found(request: HttpRequest, damaged_pairs: int = 0) -> HttpResponse:
    text = f"no recorded response for {request.method} {request.uri}"
    if damaged_pairs:
        text += (
            f" (site store is damaged: {damaged_pairs} recorded pair(s) "
            f"quarantined — the resource may be among them)"
        )
    body = Body.from_bytes(text.encode())
    headers = Headers([
        ("Content-Type", "text/plain"),
        ("Content-Length", str(body.length)),
    ])
    return HttpResponse(404, headers=headers, body=body)
