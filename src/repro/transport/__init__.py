"""Transport layer: TCP (with congestion control), UDP, and a TLS cost model.

The kernel TCP stack Mahimahi rides on is replaced by
:class:`~repro.transport.tcp.TcpConnection`: a byte-stream with three-way
handshake, cumulative ACKs, Jacobson/Karels RTO estimation, NewReno-style
slow start / AIMD / fast retransmit, and loss via drop-tail queues. Page
load dynamics — handshake RTTs, bandwidth-limited transfers, bufferbloat on
unbounded queues — emerge from this machinery rather than being scripted.

Payload bytes are *mixed real/virtual*
(:mod:`~repro.transport.wire`): HTTP headers travel as real bytes, bodies
as counted virtual bytes, so a megabyte page costs a handful of Python
objects instead of a megabyte of copies.
"""

from repro.transport.congestion import CongestionControl, FixedWindow, NewReno
from repro.transport.host import TransportHost
from repro.transport.rto import RttEstimator
from repro.transport.tcp import TcpConfig, TcpConnection, TcpSegment
from repro.transport.tls import TlsConfig
from repro.transport.udp import UdpDatagram, UdpSocket
from repro.transport.wire import (
    ReassemblyBuffer,
    SendBuffer,
    pieces_len,
    pieces_slice,
)

__all__ = [
    "CongestionControl",
    "FixedWindow",
    "NewReno",
    "ReassemblyBuffer",
    "RttEstimator",
    "SendBuffer",
    "TcpConfig",
    "TcpConnection",
    "TcpSegment",
    "TlsConfig",
    "TransportHost",
    "UdpDatagram",
    "UdpSocket",
    "pieces_len",
    "pieces_slice",
]
