"""A TCP implementation for the simulated substrate.

This is the stack every byte in the reproduction rides on: three-way
handshake, cumulative ACKs with immediate acking, sliding window bounded by
min(cwnd, peer receive window), Jacobson/Karels RTO with Karn's rule and
exponential backoff, fast retransmit on three duplicate ACKs with
NewReno-style recovery, and FIN teardown. Sequence numbers start at zero
(ISN randomization adds nothing in a simulator); the SYN occupies sequence
0, stream byte *i* occupies sequence ``i + 1``, and the FIN occupies the
sequence after the last stream byte.

Payloads are mixed real/virtual pieces (:mod:`repro.transport.wire`), so
retransmissions re-slice the send buffer instead of holding copies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, TYPE_CHECKING

from repro.errors import ConnectionClosed, ConnectionReset, TransportError
from repro.net.address import Endpoint
from repro.net.packet import (
    IP_HEADER_BYTES,
    MTU_BYTES,
    TCP_HEADER_BYTES,
    Packet,
    PacketPool,
    _packet_ids,
)
from repro.sim.simulator import Simulator
from repro.sim.timers import Timer
from repro.transport.congestion import CongestionControl, NewReno
from repro.transport.rto import RttEstimator
from repro.transport.wire import Piece, ReassemblyBuffer, SendBuffer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.transport.host import TransportHost

#: Standard Ethernet MSS: MTU minus IP and TCP headers.
DEFAULT_MSS = 1460

#: Default advertised receive window. Large enough that modern
#: autotuned-receiver behaviour (cwnd-limited, not rwnd-limited) holds.
DEFAULT_RECEIVE_WINDOW = 4 * 1024 * 1024


@dataclass
class TcpConfig:
    """Tunables for one connection (shared freely between connections).

    Attributes:
        mss: maximum segment size, bytes.
        receive_window: advertised window, bytes.
        initial_window_segments: IW for the default NewReno controller.
        min_rto / max_rto / initial_rto: RTO policy, seconds.
        dupack_threshold: duplicate ACKs that trigger fast retransmit.
        max_syn_retries: SYN / SYN-ACK retransmissions before giving up.
        sack_blocks: maximum SACK ranges reported per ACK. Real stacks fit
            3-4 blocks in the option space and cycle through them across
            consecutive ACKs, so the sender's scoreboard converges to the
            receiver's full picture within a round trip; ``None`` (the
            default) models that converged state directly. A small value
            reproduces option-space-starved behaviour for experiments.
        congestion_control: factory ``mss -> CongestionControl``; defaults
            to NewReno with the configured initial window.
    """

    mss: int = DEFAULT_MSS
    receive_window: int = DEFAULT_RECEIVE_WINDOW
    initial_window_segments: int = 10
    min_rto: float = 0.2
    max_rto: float = 60.0
    initial_rto: float = 1.0
    dupack_threshold: int = 3
    max_syn_retries: int = 6
    sack_blocks: Optional[int] = None
    congestion_control: Optional[Callable[[int], CongestionControl]] = None

    def make_congestion_control(self) -> CongestionControl:
        """Instantiate this config's congestion controller."""
        if self.congestion_control is not None:
            return self.congestion_control(self.mss)
        return NewReno(self.mss, self.initial_window_segments)


class TcpSegment:
    """One TCP segment (the payload of a "tcp" packet).

    ``flags`` is a string drawn from "S", "A", "F", "R". ``sack`` carries
    up to three selective-acknowledgement blocks as (start, end) sequence
    ranges, like the SACK option every modern stack negotiates.
    """

    __slots__ = (
        "flags", "seq", "ack", "pieces", "data_len", "wnd", "sack", "_in_pool"
    )

    def __init__(
        self,
        flags: str,
        seq: int,
        ack: int,
        pieces: List[Piece],
        data_len: int,
        wnd: int,
        sack: tuple = (),
    ) -> None:
        self.flags = flags
        self.seq = seq
        self.ack = ack
        self.pieces = pieces
        self.data_len = data_len
        self.wnd = wnd
        self.sack = sack
        self._in_pool = False

    def __repr__(self) -> str:
        return (
            f"<TcpSegment [{self.flags}] seq={self.seq} ack={self.ack} "
            f"len={self.data_len} wnd={self.wnd}>"
        )


def _merge_range(
    ranges: List[Tuple[int, int]], start: int, end: int
) -> List[Tuple[int, int]]:
    """Insert [start, end) into a sorted disjoint range list."""
    merged: List[Tuple[int, int]] = []
    placed = False
    for r_start, r_end in ranges:
        if r_end < start or (placed and r_start > end):
            merged.append((r_start, r_end))
        elif r_start > end:
            if not placed:
                merged.append((start, end))
                placed = True
            merged.append((r_start, r_end))
        else:
            start = min(start, r_start)
            end = max(end, r_end)
    if not placed:
        merged.append((start, end))
    merged.sort()
    return merged


def _subtract_range(
    ranges: List[Tuple[int, int]], start: int, end: int
) -> List[Tuple[int, int]]:
    """Remove [start, end) from a sorted disjoint range list."""
    result: List[Tuple[int, int]] = []
    for r_start, r_end in ranges:
        if r_end <= start or r_start >= end:
            result.append((r_start, r_end))
            continue
        if r_start < start:
            result.append((r_start, start))
        if r_end > end:
            result.append((end, r_end))
    return result


# Connection states (strings keep debugging output readable).
CLOSED = "CLOSED"
SYN_SENT = "SYN_SENT"
SYN_RCVD = "SYN_RCVD"
ESTABLISHED = "ESTABLISHED"
FIN_WAIT_1 = "FIN_WAIT_1"
FIN_WAIT_2 = "FIN_WAIT_2"
CLOSING = "CLOSING"
CLOSE_WAIT = "CLOSE_WAIT"
LAST_ACK = "LAST_ACK"

_DATA_STATES = frozenset({ESTABLISHED, FIN_WAIT_1, FIN_WAIT_2})
_SEND_STATES = frozenset({ESTABLISHED, CLOSE_WAIT})


class TcpConnection:
    """One endpoint of a TCP connection.

    Applications interact through :meth:`send` / :meth:`send_virtual`,
    :meth:`close`, and the assignable callbacks:

    * ``on_established()`` — handshake complete.
    * ``on_data(pieces)`` — in-order stream data arrived.
    * ``on_remote_close()`` — peer sent FIN (half-close).
    * ``on_close()`` — connection fully terminated.
    * ``on_error(exc)`` — reset or handshake failure; connection is dead.
    """

    __slots__ = (
        "sim",
        "host",
        "local",
        "remote",
        "config",
        "passive",
        "state",
        "on_established",
        "on_data",
        "on_remote_close",
        "on_close",
        "on_error",
        "_send_buffer",
        "_snd_una",
        "_snd_nxt",
        "_cc",
        "_rtt",
        "_rto_timer",
        "_dupacks",
        "_in_recovery",
        "_recover_seq",
        "_sacked",
        "_rexmit_next",
        "_lost_edge",
        "_rexmit_out",
        "_rtt_seq",
        "_rtt_time",
        "_peer_rwnd",
        "_fin_queued",
        "_fin_sent",
        "_syn_retries",
        "_write_waiter",
        "_reasm",
        "_rcv_nxt",
        "_peer_fin_seq",
        "_ack_pending",
        "_established_fired",
        "bytes_sent",
        "bytes_delivered",
        "segments_sent",
        "segments_received",
        "retransmissions",
        "established_at",
        "_obs_cwnd",
        "_obs_rto",
        "_obs_cwnd_pts",
        "_obs_rto_pts",
        "_obs_prev_cwnd",
        "_obs_prev_rto",
        "_header_bytes",
        "_rcv_wnd",
        "_pool",
    )

    def __init__(
        self,
        sim: Simulator,
        host: "TransportHost",
        local: Endpoint,
        remote: Endpoint,
        config: Optional[TcpConfig] = None,
        passive: bool = False,
    ) -> None:
        self.sim = sim
        self.host = host
        self.local = local
        self.remote = remote
        self.config = config if config is not None else TcpConfig()
        self.passive = passive
        self.state = CLOSED

        # Hot-path precomputation. The per-packet header size and the MTU
        # bound are fixed for the connection's lifetime, so the old
        # per-segment arithmetic and per-packet size validation
        # (Packet.__init__) collapse to this single check — pooled packet
        # reuse in _send_segment re-stamps records without re-validating.
        self._header_bytes = IP_HEADER_BYTES + TCP_HEADER_BYTES
        if self.config.mss + self._header_bytes > MTU_BYTES:
            raise TransportError(
                f"mss {self.config.mss} + headers exceeds MTU {MTU_BYTES}"
            )
        self._rcv_wnd = self.config.receive_window
        pool = sim.packet_pool
        if pool is None:
            pool = sim.packet_pool = PacketPool()
        self._pool = pool

        # Callbacks
        self.on_established: Optional[Callable[[], None]] = None
        self.on_data: Optional[Callable[[List[Piece]], None]] = None
        self.on_remote_close: Optional[Callable[[], None]] = None
        self.on_close: Optional[Callable[[], None]] = None
        self.on_error: Optional[Callable[[Exception], None]] = None

        # Sender state
        self._send_buffer = SendBuffer()
        self._snd_una = 0
        self._snd_nxt = 0
        self._cc = self.config.make_congestion_control()
        self._rtt = RttEstimator(
            self.config.min_rto, self.config.max_rto, self.config.initial_rto
        )
        self._rto_timer = Timer(sim, self._on_rto)
        self._dupacks = 0
        self._in_recovery = False
        self._recover_seq = 0
        # SACK scoreboard: sorted disjoint (start, end) sequence ranges the
        # peer has reported holding above snd_una.
        self._sacked: List[Tuple[int, int]] = []
        # Within a recovery episode, holes below this have been retransmitted.
        self._rexmit_next = 0
        # After an RTO, every unsacked byte below this sequence is presumed
        # lost (classic go-back-N semantics, SACK-aware).
        self._lost_edge = 0
        # Ranges retransmitted but not yet cumulatively ACKed or SACKed;
        # these count as in-flight in the pipe estimate while the holes
        # they repair are presumed lost.
        self._rexmit_out: List[Tuple[int, int]] = []
        self._rtt_seq: Optional[int] = None
        self._rtt_time = 0.0
        self._peer_rwnd = self.config.receive_window
        self._fin_queued = False
        self._fin_sent = False
        self._syn_retries = 0
        self._write_waiter: Optional[tuple] = None

        # Receiver state
        self._reasm = ReassemblyBuffer()
        self._rcv_nxt = 0
        self._peer_fin_seq: Optional[int] = None
        self._ack_pending = False
        self._established_fired = False

        # Counters (diagnostics and tests)
        self.bytes_sent = 0
        self.bytes_delivered = 0
        self.segments_sent = 0
        self.segments_received = 0
        self.retransmissions = 0
        self.established_at: Optional[float] = None

        # Observability probes: cwnd and RTO step series, recorded at the
        # points where they change (established / ACK growth / fast
        # retransmit / timeout). Handles captured once; uninstrumented
        # connections pay one None check per potential change.
        registry = sim.metrics
        if registry is not None:
            role = "server" if passive else "client"
            path = (
                f"tcp.{role}.{local.address}:{local.port}-"
                f"{remote.address}:{remote.port}"
            )
            self._obs_cwnd = registry.timeseries(f"{path}.cwnd")
            self._obs_rto = registry.timeseries(f"{path}.rto")
            self._obs_cwnd_pts = self._obs_cwnd.points
            self._obs_rto_pts = self._obs_rto.points
        else:
            self._obs_cwnd = None
            self._obs_rto = None
            self._obs_cwnd_pts = None
            self._obs_rto_pts = None
        # Last values recorded, cached as plain attributes so the per-ACK
        # probe is two compares before any series work happens.
        self._obs_prev_cwnd = -1
        self._obs_prev_rto = -1.0

    # ------------------------------------------------------------------ #
    # public API

    @property
    def cwnd(self) -> int:
        """Current congestion window, bytes."""
        return self._cc.cwnd

    @property
    def congestion(self) -> CongestionControl:
        """The congestion controller (for inspection in tests)."""
        return self._cc

    @property
    def srtt(self) -> Optional[float]:
        """Smoothed RTT estimate, seconds."""
        return self._rtt.srtt

    @property
    def is_open(self) -> bool:
        """True until the connection fully closes or errors."""
        return self.state != CLOSED or not self._established_fired

    @property
    def unsent_bytes(self) -> int:
        """Stream bytes queued but not yet transmitted (send backlog)."""
        backlog = self._send_buffer.length - max(0, self._snd_nxt - 1)
        return max(0, backlog)

    def notify_when_writable(
        self, threshold: int, callback: Callable[[], None]
    ) -> None:
        """Call ``callback`` once the send backlog drops below
        ``threshold`` bytes (application-level backpressure; one waiter
        at a time — a new registration replaces the old)."""
        if self.unsent_bytes < threshold:
            self.sim.call_soon(callback)
            return
        self._write_waiter = (threshold, callback)

    def _check_write_waiter(self) -> None:
        waiter = self._write_waiter
        if waiter is None:
            return
        threshold, callback = waiter
        if self.unsent_bytes < threshold:
            self._write_waiter = None
            callback()

    def connect(self) -> None:
        """Begin the active-open handshake (client side).

        Raises:
            TransportError: if called on a passive or non-fresh connection.
        """
        if self.passive or self.state != CLOSED or self._snd_nxt != 0:
            raise TransportError(f"connect() on {self.state} connection")
        self.state = SYN_SENT
        self._send_segment("S", seq=0)
        self._snd_nxt = 1
        self._rtt_seq = 1
        self._rtt_time = self.sim.now
        self._arm_rto()

    def send(self, data: bytes) -> None:
        """Queue real bytes on the stream (transmitted as window allows)."""
        self._queue_piece(data)

    def send_virtual(self, length: int) -> None:
        """Queue ``length`` virtual bytes (content-free payload)."""
        self._queue_piece(int(length))

    def _queue_piece(self, piece: Piece) -> None:
        if self.state in (FIN_WAIT_1, FIN_WAIT_2, CLOSING, LAST_ACK) or (
            self._fin_queued
        ):
            raise ConnectionClosed("send() after close()")
        if self.state == CLOSED and not self.passive and self._snd_nxt != 0:
            raise ConnectionClosed("send() on closed connection")
        self._send_buffer.append(piece)
        self._try_send()
        self._flush_pending_ack()

    def close(self) -> None:
        """Half-close: FIN is sent once all queued data has been sent."""
        if self._fin_queued:
            return
        self._fin_queued = True
        self._try_send()
        self._flush_pending_ack()

    def abort(self) -> None:
        """Hard reset: sends RST and tears down immediately."""
        if self.state != CLOSED or not self._established_fired:
            self._send_segment("R", seq=self._snd_nxt)
        self._teardown(notify_close=False)

    # ------------------------------------------------------------------ #
    # segment arrival (called by the TransportHost demux)

    def segment_arrived(self, segment: TcpSegment) -> None:
        """Process one arriving segment."""
        self.segments_received += 1
        flags = segment.flags
        if flags == "A":
            # Pure-ACK / data fast path: every segment after the handshake
            # carries exactly "A", so the SYN/FIN/RST flag probes are
            # skipped for the steady state.
            self._peer_rwnd = segment.wnd
            self._handle_ack(segment)
            if segment.data_len:
                self._handle_data(segment)
            self._try_send()
            self._flush_pending_ack()
            return
        if "R" in flags:
            self._handle_rst()
            return
        self._peer_rwnd = segment.wnd
        if "S" in flags:
            self._handle_syn(segment)
        if "A" in flags:
            self._handle_ack(segment)
        if segment.data_len:
            self._handle_data(segment)
        if "F" in flags:
            self._handle_fin(segment)
        self._try_send()
        self._flush_pending_ack()

    # ------------------------------------------------------------------ #
    # handshake

    def _handle_syn(self, segment: TcpSegment) -> None:
        if self.passive and self.state == CLOSED:
            # Passive open: SYN arrived at a fresh server-side connection.
            self._rcv_nxt = 1
            self.state = SYN_RCVD
            self._send_segment("SA", seq=0, ack=1)
            self._snd_nxt = 1
            self._rtt_seq = 1
            self._rtt_time = self.sim.now
            self._arm_rto()
        elif self.state == SYN_SENT and "A" in segment.flags:
            self._rcv_nxt = 1
            self._ack_pending = True
            # ACK processing (below) moves snd_una past the SYN and
            # completes establishment.
        elif self.state == SYN_RCVD:
            # Duplicate SYN: our SYN-ACK was lost — resend it (a pure ACK
            # would leave a client that never saw the SYN-ACK stuck).
            self._send_segment("SA", seq=0, ack=1)
        elif self.state in _DATA_STATES:
            # Duplicate SYN-ACK (our handshake ACK was lost): re-ack.
            self._ack_pending = True

    def _become_established(self) -> None:
        if self._established_fired:
            return
        self._established_fired = True
        self.state = ESTABLISHED
        self.established_at = self.sim.now
        self._obs_record()
        if self._snd_una == self._snd_nxt:
            self._rto_timer.stop()
        if self.on_established is not None:
            self.on_established()

    def _obs_record(self) -> None:
        """Record cwnd/RTO step points (no-op when uninstrumented).

        Runs once per ACK on bulk transfers, so it is fully inlined:
        values are compared against cached previous ones, and only
        changes pay for a clock read and a point append.
        """
        if self._obs_cwnd is None:
            return
        cwnd = self._cc.cwnd
        rto = self._rtt.rto
        cwnd_changed = cwnd != self._obs_prev_cwnd
        if not cwnd_changed and rto == self._obs_prev_rto:
            return
        now = self.sim.now
        if cwnd_changed:
            self._obs_prev_cwnd = cwnd
            self._obs_cwnd_pts.append((now, float(cwnd)))
        if rto != self._obs_prev_rto:
            self._obs_prev_rto = rto
            self._obs_rto_pts.append((now, rto))

    # ------------------------------------------------------------------ #
    # ACK processing (sender side)

    def _handle_ack(self, segment: TcpSegment) -> None:
        ack = segment.ack
        if ack > self._snd_nxt:
            return
        if self.state == SYN_SENT and "S" not in segment.flags:
            # A bare ACK while we wait for a SYN-ACK (e.g. the server's
            # response to a duplicate SYN racing its resent SYN-ACK):
            # accepting it would stop the SYN retransmission timer and
            # strand the handshake. Ignore; the SYN-ACK carries the ack.
            return
        if segment.sack:
            self._merge_sack(segment.sack)
        if ack > self._snd_una:
            old_una = self._snd_una
            self._snd_una = ack
            self._dupacks = 0
            self._rexmit_next = max(self._rexmit_next, ack)
            self._trim_sacked()
            # Advance the acknowledged prefix of the stream (sequence 0 is
            # the SYN; the FIN sequence is past the stream end).
            stream_len = self._send_buffer.length
            new_offset = min(ack - 1, stream_len)
            old_offset = min(max(old_una - 1, 0), stream_len)
            if new_offset > old_offset:
                self._send_buffer.ack_to(new_offset)
            # RTT sample (Karn's rule: _rtt_seq is cleared on retransmit).
            if self._rtt_seq is not None and ack >= self._rtt_seq:
                self._rtt.add_sample(self.sim.now - self._rtt_time)
                self._rtt_seq = None
            # Handshake completion. Requires our SYN acked AND the peer's
            # SYN seen (rcv_nxt advanced) — a bare ACK reaching a
            # SYN_SENT client whose SYN-ACK was lost must not "establish"
            # a half-open connection.
            if (self.state in (SYN_SENT, SYN_RCVD) and ack >= 1
                    and self._rcv_nxt >= 1):
                self._become_established()
            # Recovery bookkeeping, then window growth.
            if self._in_recovery:
                if ack >= self._recover_seq:
                    self._in_recovery = False
                    self._cc.on_recovery_exit()
                else:
                    # Partial ACK: more holes remain; keep repairing from
                    # the new snd_una (SACK-clocked in _try_send).
                    self._rexmit_next = max(self._rexmit_next, ack)
                    self._arm_rto()
            if self._established_fired and new_offset > old_offset:
                self._cc.on_ack(new_offset - old_offset)
                self._obs_record()
            # Teardown progress.
            if self._fin_sent and ack == self._snd_nxt:
                self._fin_acked()
            # Timer management.
            if self._snd_una == self._snd_nxt:
                self._rto_timer.stop()
            else:
                self._arm_rto()
        elif (
            ack == self._snd_una
            and self._snd_nxt > self._snd_una
            and segment.data_len == 0
            and "S" not in segment.flags
            and "F" not in segment.flags
        ):
            self._dupacks += 1
            if (
                self._dupacks == self.config.dupack_threshold
                and not self._in_recovery
            ):
                self._fast_retransmit()

    def _fast_retransmit(self) -> None:
        self._in_recovery = True
        self._recover_seq = self._snd_nxt
        self._cc.on_fast_retransmit()
        self._obs_record()
        self._rexmit_next = self._snd_una
        self._rtt_seq = None
        self._arm_rto()
        if not self._sacked:
            # Dupacks without SACK information (e.g. pure-ACK peers):
            # fall back to retransmitting the head immediately.
            self.retransmissions += 1
            self._retransmit_head()
        # _try_send (called by segment_arrived after this) performs the
        # actual SACK-clocked retransmissions under the pipe limit.

    def _fin_acked(self) -> None:
        if self.state == FIN_WAIT_1:
            self.state = FIN_WAIT_2
        elif self.state == CLOSING:
            self._teardown(notify_close=True)
        elif self.state == LAST_ACK:
            self._teardown(notify_close=True)

    # ------------------------------------------------------------------ #
    # data and FIN (receiver side)

    def _handle_data(self, segment: TcpSegment) -> None:
        if self.state not in _DATA_STATES and self.state != CLOSE_WAIT:
            return
        offset = segment.seq - 1
        reasm = self._reasm
        if offset == reasm.next_offset and not reasm._fragments:
            # In-order fast path (the overwhelmingly common case): hand the
            # segment's piece list straight to the application instead of
            # copying it through the interval map. Ownership transfers
            # cleanly — the sender built the list fresh per segment and
            # segment recycling rebinds (never mutates) the pieces slot.
            ready = segment.pieces
            reasm.next_offset = offset + segment.data_len
        else:
            reasm.insert(offset, segment.pieces)
            ready = reasm.pop_ready()
        self._rcv_nxt = reasm.next_offset + 1
        self._ack_pending = True
        if ready:
            delivered = sum(
                len(p) if isinstance(p, (bytes, bytearray)) else p for p in ready
            )
            self.bytes_delivered += delivered
            if self.on_data is not None:
                self.on_data(ready)
        if self._peer_fin_seq is not None and self._peer_fin_seq == self._rcv_nxt:
            self._peer_fin_seq = None
            self._process_fin()

    def _handle_fin(self, segment: TcpSegment) -> None:
        fin_seq = segment.seq + segment.data_len
        self._ack_pending = True
        if fin_seq == self._rcv_nxt:
            self._process_fin()
        elif fin_seq > self._rcv_nxt:
            self._peer_fin_seq = fin_seq

    def _process_fin(self) -> None:
        self._rcv_nxt += 1
        self._ack_pending = True
        if self.state == ESTABLISHED:
            self.state = CLOSE_WAIT
            if self.on_remote_close is not None:
                self.on_remote_close()
        elif self.state == FIN_WAIT_1:
            # Our FIN is still unacked: simultaneous close.
            self.state = CLOSING
        elif self.state == FIN_WAIT_2:
            self._send_pure_ack()
            self._teardown(notify_close=True)

    # ------------------------------------------------------------------ #
    # transmission

    def _try_send(self) -> None:
        if self.state not in _SEND_STATES:
            return
        window = min(self._cc.cwnd, self._peer_rwnd)
        # Pipe accounting (RFC 6675 flavour): unsacked bytes below the
        # highest SACKed byte are presumed lost (they no longer occupy the
        # network) unless we have retransmitted them; see _pipe_bytes.
        # While loss evidence exists, holes are repaired before new data,
        # all under the same pipe < window limit.
        # Hole repair needs loss evidence: a formal recovery episode,
        # enough SACKed bytes above a hole (RFC 6675's IsLost heuristic),
        # or an RTO having declared the outstanding window lost.
        if (
            not self._in_recovery
            and not self._sacked
            and self._snd_una >= self._lost_edge
        ):
            # Loss-free fast path (the steady state): no scoreboard, no
            # declared losses — repairing is trivially off and the pipe
            # estimate collapses to plain flight (what _pipe_bytes
            # computes for this state, minus its method and helper calls).
            repairing = False
            pipe = self._snd_nxt - self._snd_una
        else:
            repairing = (
                self._in_recovery
                or self._snd_una < self._lost_edge
                or (
                    self._sacked_bytes()
                    >= self.config.dupack_threshold * self.config.mss
                )
            )
            pipe = self._pipe_bytes()
        while pipe < window:
            if repairing:
                hole = self._next_hole()
                if hole is not None:
                    seg_len = self._retransmit_at(*hole)
                    if seg_len <= 0:
                        break
                    self._rexmit_next = hole[0] + seg_len
                    pipe += seg_len
                    continue
            stream_sent = self._snd_nxt - 1
            available = self._send_buffer.length - stream_sent
            if available <= 0:
                break
            seg_len = min(self.config.mss, available, window - pipe)
            pieces = self._send_buffer.slice(stream_sent, seg_len)
            self._send_segment(
                "A",
                seq=self._snd_nxt,
                ack=self._rcv_nxt,
                pieces=pieces,
                data_len=seg_len,
            )
            self._snd_nxt += seg_len
            self.bytes_sent += seg_len
            pipe += seg_len
            if self._rtt_seq is None:
                self._rtt_seq = self._snd_nxt
                self._rtt_time = self.sim.now
            self._arm_rto_if_idle()
        # FIN once every stream byte has been transmitted.
        if (
            self._fin_queued
            and not self._fin_sent
            and self._snd_nxt - 1 == self._send_buffer.length
        ):
            self._send_segment("FA", seq=self._snd_nxt, ack=self._rcv_nxt)
            self._snd_nxt += 1
            self._fin_sent = True
            self.state = FIN_WAIT_1 if self.state == ESTABLISHED else LAST_ACK
            self._arm_rto_if_idle()
        self._check_write_waiter()

    def _retransmit_head(self) -> None:
        """Retransmit one segment starting at snd_una."""
        stream_len = self._send_buffer.length
        head_offset = self._snd_una - 1
        if self._snd_una == 0:
            # SYN (or SYN-ACK) retransmission.
            if self.state == SYN_SENT:
                self._send_segment("S", seq=0)
            elif self.state == SYN_RCVD:
                self._send_segment("SA", seq=0, ack=1)
            return
        if head_offset >= stream_len:
            if self._fin_sent:
                self._send_segment("FA", seq=self._snd_una, ack=self._rcv_nxt)
            return
        seg_len = min(
            self.config.mss, stream_len - head_offset, self._snd_nxt - self._snd_una
        )
        pieces = self._send_buffer.slice(head_offset, seg_len)
        self._send_segment(
            "A", seq=self._snd_una, ack=self._rcv_nxt, pieces=pieces, data_len=seg_len
        )

    def _retransmit_at(self, start_seq: int, max_end: int) -> int:
        """Retransmit one segment beginning at ``start_seq``; returns its
        length. ``max_end`` bounds the segment (the next SACKed byte)."""
        stream_len = self._send_buffer.length
        offset = start_seq - 1
        seg_len = min(
            self.config.mss,
            max_end - start_seq,
            stream_len - offset,
            self._snd_nxt - start_seq,
        )
        if seg_len <= 0:
            return 0
        pieces = self._send_buffer.slice(offset, seg_len)
        self.retransmissions += 1
        self._rexmit_out = _merge_range(
            self._rexmit_out, start_seq, start_seq + seg_len
        )
        self._send_segment(
            "A", seq=start_seq, ack=self._rcv_nxt, pieces=pieces, data_len=seg_len
        )
        return seg_len

    # ------------------------------------------------------------------ #
    # SACK scoreboard

    def _merge_sack(self, blocks: Tuple[Tuple[int, int], ...]) -> None:
        ranges = list(self._sacked)
        for start, end in blocks:
            start = max(start, self._snd_una)
            if end <= start:
                continue
            ranges = _merge_range(ranges, start, end)
            # SACKed data no longer counts as a retransmission in flight.
            self._rexmit_out = _subtract_range(self._rexmit_out, start, end)
        self._sacked = ranges

    def _trim_sacked(self) -> None:
        una = self._snd_una
        self._sacked = [
            (max(start, una), end) for start, end in self._sacked if end > una
        ]
        self._rexmit_out = _subtract_range(self._rexmit_out, 0, una)

    def _sacked_bytes(self) -> int:
        return sum(end - start for start, end in self._sacked)

    def _loss_bound(self) -> int:
        """Sequence below which unsacked bytes are presumed lost: the
        highest SACKed byte, or the RTO-declared lost edge."""
        high = self._sacked[-1][1] if self._sacked else 0
        return max(high, self._lost_edge)

    def _pipe_bytes(self) -> int:
        """Estimate of bytes currently occupying the network.

        Without loss evidence this is plain flight (snd_nxt - snd_una).
        Otherwise: everything above the loss bound is in flight; SACKed
        bytes sit in the peer's buffer; unsacked bytes below the bound are
        presumed lost — except the parts we have since retransmitted
        (RFC 6675's pipe algorithm, simplified; an RTO extends the bound
        over the whole outstanding window).
        """
        bound = max(self._loss_bound(), self._snd_una)
        above = max(0, self._snd_nxt - bound)
        rexmit = sum(end - start for start, end in self._rexmit_out)
        if bound <= self._snd_una:
            return self._snd_nxt - self._snd_una
        return above + rexmit

    def _next_hole(self) -> Optional[Tuple[int, int]]:
        """The next unretransmitted presumed-lost hole, as
        (start_seq, bound); None when no repairable hole remains."""
        bound = self._loss_bound()
        cursor = max(self._snd_una, self._rexmit_next)
        if cursor >= bound:
            return None
        for start, end in self._sacked:
            if start >= bound:
                break
            if cursor < start:
                return (cursor, min(start, bound))
            cursor = max(cursor, end)
        if cursor < bound:
            return (cursor, bound)
        return None

    def _build_sack(self) -> Tuple[Tuple[int, int], ...]:
        """SACK blocks for the out-of-order data we hold, lowest first.

        See TcpConfig.sack_blocks for why the default reports every range.
        """
        return tuple(
            (start + 1, end + 1)
            for start, end in self._reasm.ranges(self.config.sack_blocks)
        )

    def _on_rto(self) -> None:
        if self._snd_una == self._snd_nxt:
            return
        if self.state in (SYN_SENT, SYN_RCVD):
            self._syn_retries += 1
            if self._syn_retries > self.config.max_syn_retries:
                self._fail(TransportError(f"handshake to {self.remote} timed out"))
                return
        self._rtt.on_timeout()
        if self._established_fired:
            self._cc.on_timeout()
        self._obs_record()
        self._in_recovery = False
        self._dupacks = 0
        self._rexmit_next = 0
        # Everything previously retransmitted is assumed gone too, and the
        # whole outstanding window is now presumed lost: hole repair
        # restarts from snd_una under the collapsed window, skipping
        # SACKed ranges (go-back-N, SACK-aware).
        self._rexmit_out = []
        self._lost_edge = self._snd_nxt
        self._rtt_seq = None
        sent_before = self.segments_sent
        self._try_send()
        if self.segments_sent == sent_before:
            # Nothing repairable through the data path (e.g. only a FIN is
            # outstanding): fall back to retransmitting the head.
            self.retransmissions += 1
            self._retransmit_head()
        self._arm_rto()

    def _send_pure_ack(self) -> None:
        self._send_segment("A", seq=self._snd_nxt, ack=self._rcv_nxt)

    def _flush_pending_ack(self) -> None:
        if self._ack_pending:
            self._send_pure_ack()

    def _send_segment(
        self,
        flags: str,
        seq: int,
        ack: int = 0,
        pieces: Optional[List[Piece]] = None,
        data_len: int = 0,
    ) -> None:
        sack: tuple = ()
        if "A" in flags and "S" not in flags and self._reasm._fragments:
            sack = self._build_sack()
        # Pooled construction: pop and re-stamp free records instead of
        # running the constructors (see repro.net.packet.PacketPool for
        # the lifecycle contract). The MTU bound was checked once in
        # __init__, so re-stamping skips the per-packet size validation.
        pool = self._pool
        free_segments = pool.segments
        if free_segments:
            segment = free_segments.pop()
            segment._in_pool = False
            segment.flags = flags
            segment.seq = seq
            segment.ack = ack
            segment.pieces = pieces if pieces is not None else []
            segment.data_len = data_len
            segment.wnd = self._rcv_wnd
            segment.sack = sack
        else:
            segment = TcpSegment(
                flags,
                seq,
                ack,
                pieces if pieces is not None else [],
                data_len,
                self._rcv_wnd,
                sack,
            )
        local = self.local
        remote = self.remote
        free_packets = pool.packets
        if free_packets:
            packet = free_packets.pop()
            packet._in_pool = False
            packet.src = local.address
            packet.dst = remote.address
            packet.sport = local.port
            packet.dport = remote.port
            packet.protocol = "tcp"
            packet.payload = segment
            packet.size = self._header_bytes + data_len
            packet.ttl = 64
            packet.uid = next(_packet_ids)
        else:
            packet = Packet(
                local.address,
                remote.address,
                local.port,
                remote.port,
                "tcp",
                segment,
                self._header_bytes + data_len,
            )
        self.segments_sent += 1
        if "A" in flags:
            self._ack_pending = False
        self.host.send_packet(packet)

    # ------------------------------------------------------------------ #
    # timers / teardown

    def _arm_rto(self) -> None:
        self._rto_timer.start(self._rtt.rto)

    def _arm_rto_if_idle(self) -> None:
        if not self._rto_timer.armed:
            self._arm_rto()

    def _handle_rst(self) -> None:
        # The structured subclass lets error paths (and the chaos failure
        # taxonomy) distinguish a peer reset from other transport faults.
        self._fail(ConnectionReset(f"connection reset by {self.remote}"))

    def _fail(self, exc: Exception) -> None:
        self._teardown(notify_close=False)
        if self.on_error is not None:
            self.on_error(exc)

    def _teardown(self, notify_close: bool) -> None:
        self._rto_timer.stop()
        self.state = CLOSED
        self._established_fired = True
        self.host.connection_closed(self)
        if notify_close and self.on_close is not None:
            self.on_close()

    def __repr__(self) -> str:
        return (
            f"<TcpConnection {self.local} -> {self.remote} {self.state} "
            f"una={self._snd_una} nxt={self._snd_nxt} cwnd={self._cc.cwnd}>"
        )
