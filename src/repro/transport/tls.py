"""TLS as a latency/byte cost model (no cryptography).

Mahimahi records and replays HTTPS by terminating TLS at its
man-in-the-middle proxy; what matters to measurement is the *cost* of TLS —
handshake round trips and the certificate bytes crossing the emulated link —
not the cryptography. :class:`TlsClientSession` / :class:`TlsServerSession`
wrap a :class:`~repro.transport.tcp.TcpConnection` and exchange
realistically sized virtual flights (ClientHello, ServerHello+certificate,
Finished) before declaring the session established; afterwards application
data passes through unchanged.

This reproduces TLS 1.2's two extra round trips. Record framing overhead
(~1-2% of bytes) is deliberately not modelled; see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.transport.tcp import TcpConnection
from repro.transport.wire import Piece, piece_len


@dataclass(frozen=True)
class TlsConfig:
    """Sizes of the handshake flights, bytes.

    Defaults approximate a TLS 1.2 handshake with a typical 2-certificate
    chain.
    """

    client_hello_bytes: int = 300
    server_flight_bytes: int = 3400
    client_finished_bytes: int = 130
    server_finished_bytes: int = 60


class _TlsSession:
    """Shared plumbing: swallow handshake bytes, then pass data through."""

    def __init__(self, conn: TcpConnection, config: TlsConfig) -> None:
        self.conn = conn
        self.config = config
        self.established = False
        self.on_established: Optional[Callable[[], None]] = None
        self.on_data: Optional[Callable[[List[Piece]], None]] = None
        self._expecting = 0
        self._pending_app: List[Piece] = []
        conn.on_data = self._data_arrived

    def send(self, data: bytes) -> None:
        """Send application bytes (queued until the handshake completes —
        interleaving app data with handshake flights would corrupt the
        peer's stream framing)."""
        if self.established:
            self.conn.send(data)
        else:
            self._pending_app.append(data)

    def send_virtual(self, length: int) -> None:
        """Send virtual application bytes (queued until established)."""
        if self.established:
            self.conn.send_virtual(length)
        else:
            self._pending_app.append(int(length))

    def _data_arrived(self, pieces: List[Piece]) -> None:
        queue: List[Piece] = list(pieces)
        app: List[Piece] = []
        while queue:
            piece = queue.pop(0)
            if self.established:
                app.append(piece)
                continue
            # Consume handshake bytes; the remainder of a piece that spans
            # a flight boundary is pushed back and reconsidered (it may be
            # the next flight, or post-handshake application data).
            length = piece_len(piece)
            take = min(length, self._expecting)
            if take == 0:
                # Bytes arriving while no flight is expected: surface them
                # rather than spinning (defensive; a well-behaved peer never
                # sends ahead of the handshake protocol).
                app.append(piece)
                continue
            self._expecting -= take
            rest = length - take
            if rest:
                remainder: Piece = rest if isinstance(piece, int) else piece[take:]
                queue.insert(0, remainder)
            if take > 0 and self._expecting == 0:
                self._flight_complete()
        if app and self.on_data is not None:
            self.on_data(app)

    def _flight_complete(self) -> None:
        raise NotImplementedError

    def _become_established(self) -> None:
        self.established = True
        pending, self._pending_app = self._pending_app, []
        for piece in pending:
            if isinstance(piece, int):
                self.conn.send_virtual(piece)
            else:
                self.conn.send(piece)
        if self.on_established is not None:
            self.on_established()


class TlsClientSession(_TlsSession):
    """Client side: drives the handshake once TCP is established."""

    def __init__(self, conn: TcpConnection, config: Optional[TlsConfig] = None) -> None:
        super().__init__(conn, config if config is not None else TlsConfig())
        self._phase = "hello"
        if conn.established_at is not None:
            self._start()
        else:
            previous = conn.on_established
            def _chain() -> None:
                if previous is not None:
                    previous()
                self._start()
            conn.on_established = _chain

    def _start(self) -> None:
        self.conn.send_virtual(self.config.client_hello_bytes)
        self._expecting = self.config.server_flight_bytes
        self._phase = "await_server_flight"

    def _flight_complete(self) -> None:
        if self._phase == "await_server_flight":
            self.conn.send_virtual(self.config.client_finished_bytes)
            self._expecting = self.config.server_finished_bytes
            self._phase = "await_server_finished"
        elif self._phase == "await_server_finished":
            self._phase = "done"
            self._become_established()


class TlsServerSession(_TlsSession):
    """Server side: responds to the client's flights."""

    def __init__(self, conn: TcpConnection, config: Optional[TlsConfig] = None) -> None:
        super().__init__(conn, config if config is not None else TlsConfig())
        self._phase = "await_hello"
        self._expecting = self.config.client_hello_bytes

    def _flight_complete(self) -> None:
        if self._phase == "await_hello":
            self.conn.send_virtual(self.config.server_flight_bytes)
            self._expecting = self.config.client_finished_bytes
            self._phase = "await_finished"
        elif self._phase == "await_finished":
            self.conn.send_virtual(self.config.server_finished_bytes)
            self._phase = "done"
            self._become_established()
