"""Per-namespace transport host: socket tables and demux.

One :class:`TransportHost` attaches to each namespace that originates or
terminates traffic. It owns the TCP listener and connection tables, the UDP
socket table, and the ephemeral-port allocator, and it is the namespace's
``attach_transport`` sink: every packet locally delivered by the namespace
lands in :meth:`receive` and is dispatched to the right connection, listener
(spawning a passive connection), or UDP socket. Unmatched TCP packets get a
RST, like a real host.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.errors import PortInUse, TransportError
from repro.net.address import Endpoint, IPv4Address
from repro.net.namespace import NetworkNamespace
from repro.net.packet import Packet, PacketPool, tcp_packet
from repro.sim.simulator import Simulator
from repro.transport.tcp import TcpConfig, TcpConnection, TcpSegment
from repro.transport.udp import UdpSocket

_EPHEMERAL_FIRST = 49152
_EPHEMERAL_LAST = 65535

#: Connection-table key: raw 32-bit address values, not IPv4Address — the
#: demux probe runs once per delivered packet and int keys hash without a
#: Python __hash__/__eq__ frame.
ConnKey = Tuple[int, int, int, int]


class TcpListener:
    """A passive TCP socket: accepts connections on (address, port).

    ``on_connection(conn)`` fires when a new connection completes its
    handshake. Store the returned listener and call :meth:`close` to stop
    accepting.
    """

    def __init__(
        self,
        host: "TransportHost",
        address: Optional[IPv4Address],
        port: int,
        on_connection: Callable[[TcpConnection], None],
        config: Optional[TcpConfig],
    ) -> None:
        self.host = host
        self.address = address
        self.port = port
        self.on_connection = on_connection
        self.config = config
        self.accepted = 0

    def close(self) -> None:
        """Stop accepting new connections (existing ones are unaffected)."""
        self.host._remove_listener(self)

    def __repr__(self) -> str:
        bound = self.address if self.address is not None else "*"
        return f"<TcpListener {bound}:{self.port} accepted={self.accepted}>"


class TransportHost:
    """Transport layer for one namespace.

    Args:
        sim: the simulator.
        namespace: the namespace whose local deliveries this host handles.
        tcp_config: default config for connections created by this host.
    """

    def __init__(
        self,
        sim: Simulator,
        namespace: NetworkNamespace,
        tcp_config: Optional[TcpConfig] = None,
    ) -> None:
        self.sim = sim
        self.namespace = namespace
        self.tcp_config = tcp_config if tcp_config is not None else TcpConfig()
        namespace.attach_transport(self.receive)
        namespace.transport_host = self
        self._connections: Dict[ConnKey, TcpConnection] = {}
        self._listeners: Dict[Tuple[Optional[int], int], TcpListener] = {}
        self._udp_sockets: Dict[Tuple[int, int], UdpSocket] = {}
        self._next_ephemeral = _EPHEMERAL_FIRST
        self.rst_sent = 0
        # One packet/segment pool per simulator, shared by every host in
        # the world (packets recycle at the *receiving* host).
        pool = sim.packet_pool
        if pool is None:
            pool = sim.packet_pool = PacketPool()
        self._pool = pool

    @classmethod
    def ensure(
        cls,
        sim: Simulator,
        namespace: NetworkNamespace,
        tcp_config: Optional[TcpConfig] = None,
    ) -> "TransportHost":
        """The namespace's transport host, created on first use.

        A namespace has exactly one socket table; components that might
        share a namespace (proxies, DNS servers, applications) must go
        through this instead of constructing a second host.
        """
        existing = getattr(namespace, "transport_host", None)
        if existing is not None:
            return existing
        return cls(sim, namespace, tcp_config)

    # ------------------------------------------------------------------ #
    # TCP

    def listen(
        self,
        address,
        port: int,
        on_connection: Callable[[TcpConnection], None],
        config: Optional[TcpConfig] = None,
    ) -> TcpListener:
        """Open a passive socket on (address, port).

        ``address`` may be None (wildcard) or any address local to the
        namespace.

        Raises:
            PortInUse: if another listener holds the same binding.
        """
        addr = None if address is None else IPv4Address(address)
        key = (None if addr is None else addr._value, port)
        if key in self._listeners:
            raise PortInUse(f"already listening on {addr}:{port}")
        listener = TcpListener(self, addr, port, on_connection, config)
        self._listeners[key] = listener
        return listener

    def connect(
        self,
        remote: Endpoint,
        local_address: Optional[IPv4Address] = None,
        config: Optional[TcpConfig] = None,
    ) -> TcpConnection:
        """Open an active connection to ``remote``; returns immediately.

        Assign the connection's callbacks (``on_established`` et al.) before
        the simulator runs. The source address defaults to the address of
        the interface the route to ``remote`` uses (or the destination
        itself for namespace-local connections).
        """
        if local_address is None:
            local_address = self._source_address_for(remote.address)
        local = Endpoint(local_address, self._allocate_port(local_address))
        conn = TcpConnection(
            self.sim,
            self,
            local,
            remote,
            config if config is not None else self.tcp_config,
            passive=False,
        )
        self._connections[
            (local.address._value, local.port, remote.address._value, remote.port)
        ] = conn
        conn.connect()
        return conn

    def _source_address_for(self, destination: IPv4Address) -> IPv4Address:
        if self.namespace.is_local(destination):
            return destination
        route = self.namespace.routes.try_lookup(destination)
        if route is None:
            raise TransportError(f"{self.namespace.name}: no route to {destination}")
        return route.interface.primary_address

    def _allocate_port(self, address: IPv4Address) -> int:
        value = address._value
        for __ in range(_EPHEMERAL_LAST - _EPHEMERAL_FIRST + 1):
            port = self._next_ephemeral
            self._next_ephemeral += 1
            if self._next_ephemeral > _EPHEMERAL_LAST:
                self._next_ephemeral = _EPHEMERAL_FIRST
            in_use = any(
                key[0] == value and key[1] == port
                for key in self._connections
            )
            if not in_use and (value, port) not in self._udp_sockets:
                return port
        raise TransportError("ephemeral port range exhausted")

    def connection_closed(self, conn: TcpConnection) -> None:
        """Remove a terminated connection from the table (called by TCP)."""
        key = (
            conn.local.address._value,
            conn.local.port,
            conn.remote.address._value,
            conn.remote.port,
        )
        self._connections.pop(key, None)

    # ------------------------------------------------------------------ #
    # UDP

    def udp_socket(
        self,
        address,
        port: int = 0,
        on_datagram: Optional[Callable] = None,
    ) -> UdpSocket:
        """Bind a UDP socket; ``port=0`` picks an ephemeral port.

        Raises:
            PortInUse: on an explicit (address, port) collision.
        """
        addr = IPv4Address(address)
        if port == 0:
            port = self._allocate_port(addr)
        if (addr._value, port) in self._udp_sockets:
            raise PortInUse(f"UDP {addr}:{port} already bound")
        sock = UdpSocket(self, Endpoint(addr, port), on_datagram)
        self._udp_sockets[(addr._value, port)] = sock
        return sock

    def udp_socket_closed(self, sock: UdpSocket) -> None:
        """Remove a closed UDP socket (called by the socket)."""
        self._udp_sockets.pop((sock.local.address._value, sock.local.port), None)

    # ------------------------------------------------------------------ #
    # datapath

    def send_packet(self, packet: Packet) -> None:
        """Hand an outbound packet to the namespace's routing."""
        # Debug-only in-flight tracking: PacketPool.recycle asserts a
        # packet between here and the terminal demux is never recycled.
        assert packet.protocol != "tcp" or self._pool.mark_in_flight(packet)
        self.namespace.originate(packet)

    def receive(self, packet: Packet) -> None:
        """Demux one locally delivered packet."""
        if packet.protocol == "tcp":
            self._receive_tcp(packet)
        elif packet.protocol == "udp":
            self._receive_udp(packet)
        # Other protocols are silently dropped, like an unhandled proto.

    def _receive_tcp(self, packet: Packet) -> None:
        assert self._pool.mark_arrived(packet)
        conn = self._connections.get(
            (packet.dst._value, packet.dport, packet.src._value, packet.sport)
        )
        if conn is not None:
            segment: TcpSegment = packet.payload
            conn.segment_arrived(segment)
            # This is the terminal consumer of an in-flight TCP packet:
            # the reassembly buffer copied any payload pieces out during
            # segment_arrived, so both records go back to the pool. The
            # _in_pool flag makes a double recycle a no-op (see
            # repro.net.packet.PacketPool for the lifecycle contract).
            pool = self._pool
            if not packet._in_pool:
                packet._in_pool = True
                packet.payload = None
                pool.packets.append(packet)
            if not segment._in_pool:
                segment._in_pool = True
                segment.pieces = ()
                segment.sack = ()
                pool.segments.append(segment)
            return
        segment = packet.payload
        if "S" in segment.flags and "A" not in segment.flags:
            listener = self._listeners.get((packet.dst._value, packet.dport))
            if listener is None:
                listener = self._listeners.get((None, packet.dport))
            if listener is not None:
                self._accept(listener, packet)
                return
        if "R" not in segment.flags:
            self._send_rst(packet)

    def _accept(self, listener: TcpListener, packet: Packet) -> None:
        local = Endpoint(packet.dst, packet.dport)
        remote = Endpoint(packet.src, packet.sport)
        config = listener.config if listener.config is not None else self.tcp_config
        conn = TcpConnection(self.sim, self, local, remote, config, passive=True)
        self._connections[
            (local.address._value, local.port, remote.address._value, remote.port)
        ] = conn

        def _accepted() -> None:
            listener.accepted += 1
            listener.on_connection(conn)

        conn.on_established = _accepted
        conn.segment_arrived(packet.payload)

    def _send_rst(self, packet: Packet) -> None:
        segment: TcpSegment = packet.payload
        rst = TcpSegment("R", segment.ack, 0, [], 0, 0)
        reply = tcp_packet(packet.dst, packet.src, packet.dport, packet.sport, rst, 0)
        self.rst_sent += 1
        self.send_packet(reply)

    def _receive_udp(self, packet: Packet) -> None:
        sock = self._udp_sockets.get((packet.dst._value, packet.dport))
        if sock is None:
            return
        sock.datagram_arrived(packet)

    def _remove_listener(self, listener: TcpListener) -> None:
        address = listener.address
        key = (None if address is None else address._value, listener.port)
        self._listeners.pop(key, None)

    # ------------------------------------------------------------------ #
    # diagnostics

    @property
    def open_connections(self) -> int:
        """Number of live TCP connections in the table."""
        return len(self._connections)

    def __repr__(self) -> str:
        return (
            f"<TransportHost ns={self.namespace.name!r} "
            f"conns={len(self._connections)} listeners={len(self._listeners)}>"
        )
