"""Congestion control algorithms.

:class:`NewReno` is the default: slow start with an initial window of 10
segments (RFC 6928), AIMD congestion avoidance, window halving on fast
retransmit, and collapse to one segment on a retransmission timeout. The
page-load shapes in every figure — bandwidth ramps, loss recovery on
bounded queues — come from here.

:class:`FixedWindow` pins the window, which makes transfer times
closed-form computable; unit tests use it to assert exact timings.
"""

from __future__ import annotations


class CongestionControl:
    """Interface: a sender's congestion window policy (sizes in bytes)."""

    @property
    def cwnd(self) -> int:
        """Current congestion window in bytes."""
        raise NotImplementedError

    def on_ack(self, acked_bytes: int) -> None:
        """A cumulative ACK covered ``acked_bytes`` new bytes."""
        raise NotImplementedError

    def on_fast_retransmit(self) -> None:
        """Three duplicate ACKs: entering loss recovery."""
        raise NotImplementedError

    def on_recovery_exit(self) -> None:
        """Recovery completed (the retransmitted hole was filled)."""
        raise NotImplementedError

    def on_timeout(self) -> None:
        """The RTO fired."""
        raise NotImplementedError


class NewReno(CongestionControl):
    """Slow start + AIMD + multiplicative decrease (NewReno flavour).

    Args:
        mss: sender maximum segment size, bytes.
        initial_window_segments: IW in segments (RFC 6928 default 10).
        initial_ssthresh: initial slow-start threshold in bytes
            (effectively infinite by default).
    """

    def __init__(
        self,
        mss: int,
        initial_window_segments: int = 10,
        initial_ssthresh: int = 1 << 30,
    ) -> None:
        if mss <= 0:
            raise ValueError(f"mss must be positive, got {mss!r}")
        self.mss = mss
        self._iw = initial_window_segments * mss
        self._cwnd = self._iw
        self._ssthresh = initial_ssthresh
        self._in_recovery = False
        self._ca_accumulator = 0

    @property
    def cwnd(self) -> int:
        return self._cwnd

    @property
    def ssthresh(self) -> int:
        """Current slow-start threshold in bytes."""
        return self._ssthresh

    @property
    def in_slow_start(self) -> bool:
        """True while cwnd is below ssthresh (exponential growth phase)."""
        return self._cwnd < self._ssthresh

    @property
    def in_recovery(self) -> bool:
        """True between fast retransmit and recovery exit."""
        return self._in_recovery

    def on_ack(self, acked_bytes: int) -> None:
        if self._in_recovery:
            # Window is frozen during recovery; growth resumes on exit.
            return
        if self.in_slow_start:
            self._cwnd += acked_bytes
            return
        # Congestion avoidance: one MSS per window's worth of ACKed bytes.
        self._ca_accumulator += acked_bytes
        if self._ca_accumulator >= self._cwnd:
            self._ca_accumulator -= self._cwnd
            self._cwnd += self.mss

    def on_fast_retransmit(self) -> None:
        self._ssthresh = max(self._cwnd // 2, 2 * self.mss)
        self._cwnd = self._ssthresh
        self._in_recovery = True
        self._ca_accumulator = 0

    def on_recovery_exit(self) -> None:
        self._in_recovery = False

    def on_timeout(self) -> None:
        self._ssthresh = max(self._cwnd // 2, 2 * self.mss)
        self._cwnd = self.mss
        self._in_recovery = False
        self._ca_accumulator = 0

    def __repr__(self) -> str:
        phase = "ss" if self.in_slow_start else "ca"
        if self._in_recovery:
            phase = "recovery"
        return f"<NewReno cwnd={self._cwnd} ssthresh={self._ssthresh} {phase}>"


class FixedWindow(CongestionControl):
    """A constant congestion window (for deterministic unit tests)."""

    def __init__(self, window_bytes: int) -> None:
        if window_bytes <= 0:
            raise ValueError(f"window must be positive, got {window_bytes!r}")
        self._cwnd = window_bytes

    @property
    def cwnd(self) -> int:
        return self._cwnd

    def on_ack(self, acked_bytes: int) -> None:
        pass

    def on_fast_retransmit(self) -> None:
        pass

    def on_recovery_exit(self) -> None:
        pass

    def on_timeout(self) -> None:
        pass
