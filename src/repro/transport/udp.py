"""Minimal UDP sockets (DNS rides on these).

A :class:`UdpSocket` is a bound (address, port) endpoint with a
``sendto``/callback interface. Datagrams carry real bytes — DNS messages
are tiny and must be parsed — wrapped in :class:`UdpDatagram`.
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from repro.errors import ConnectionClosed
from repro.net.address import Endpoint
from repro.net.packet import Packet, udp_packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.transport.host import TransportHost


class UdpDatagram:
    """Payload of a "udp" packet: just bytes."""

    __slots__ = ("data",)

    def __init__(self, data: bytes) -> None:
        self.data = data

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"<UdpDatagram {len(self.data)}B>"


class UdpSocket:
    """A bound UDP endpoint.

    Assign ``on_datagram(data, source_endpoint)`` (or pass it at creation
    through :meth:`TransportHost.udp_socket`) to receive traffic.
    """

    def __init__(
        self,
        host: "TransportHost",
        local: Endpoint,
        on_datagram: Optional[Callable[[bytes, Endpoint], None]] = None,
    ) -> None:
        self.host = host
        self.local = local
        self.on_datagram = on_datagram
        self.closed = False
        self.datagrams_sent = 0
        self.datagrams_received = 0

    def sendto(self, data: bytes, remote: Endpoint) -> None:
        """Send one datagram.

        Raises:
            ConnectionClosed: if the socket has been closed.
        """
        if self.closed:
            raise ConnectionClosed("sendto() on closed UDP socket")
        packet = udp_packet(
            self.local.address,
            remote.address,
            self.local.port,
            remote.port,
            UdpDatagram(data),
            len(data),
        )
        self.datagrams_sent += 1
        self.host.send_packet(packet)

    def datagram_arrived(self, packet: Packet) -> None:
        """Entry point from the host demux."""
        if self.closed:
            return
        self.datagrams_received += 1
        if self.on_datagram is not None:
            datagram: UdpDatagram = packet.payload
            self.on_datagram(datagram.data, Endpoint(packet.src, packet.sport))

    def close(self) -> None:
        """Unbind the socket."""
        if not self.closed:
            self.closed = True
            self.host.udp_socket_closed(self)

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"<UdpSocket {self.local} {state}>"
