"""RTT estimation and retransmission-timeout policy (Jacobson/Karels).

Standard TCP timing: smoothed RTT and RTT variance updated per sample
(RFC 6298 constants), RTO = SRTT + 4 * RTTVAR clamped to [min_rto, max_rto],
exponential backoff on timeout, and Karn's rule (no samples from
retransmitted segments) enforced by the caller.
"""

from __future__ import annotations

from typing import Optional


class RttEstimator:
    """Jacobson/Karels RTT estimator with exponential RTO backoff.

    Args:
        min_rto: floor for the timeout, seconds. RFC 6298 says 1 s; real
            stacks (and the latencies Mahimahi emulates) want lower, so the
            default follows Linux's 200 ms.
        max_rto: ceiling for the backed-off timeout.
        initial_rto: timeout to use before the first sample.
    """

    ALPHA = 0.125
    BETA = 0.25
    K = 4.0

    def __init__(
        self,
        min_rto: float = 0.2,
        max_rto: float = 60.0,
        initial_rto: float = 1.0,
    ) -> None:
        if not 0 < min_rto <= max_rto:
            raise ValueError("need 0 < min_rto <= max_rto")
        self.min_rto = min_rto
        self.max_rto = max_rto
        self._initial_rto = initial_rto
        self._srtt: Optional[float] = None
        self._rttvar = 0.0
        self._backoff = 1
        self.samples = 0
        self._rto = self._compute_rto()

    @property
    def srtt(self) -> Optional[float]:
        """Smoothed RTT, or None before the first sample."""
        return self._srtt

    @property
    def rttvar(self) -> float:
        """RTT variance estimate."""
        return self._rttvar

    def add_sample(self, rtt: float) -> None:
        """Feed one RTT measurement (resets any timeout backoff)."""
        if rtt < 0.0:
            raise ValueError(f"negative RTT sample: {rtt!r}")
        if self._srtt is None:
            self._srtt = rtt
            self._rttvar = rtt / 2.0
        else:
            delta = rtt - self._srtt
            self._rttvar = (1 - self.BETA) * self._rttvar + self.BETA * abs(delta)
            self._srtt = (1 - self.ALPHA) * self._srtt + self.ALPHA * rtt
        self._backoff = 1
        self.samples += 1
        self._rto = self._compute_rto()

    def _compute_rto(self) -> float:
        if self._srtt is None:
            base = self._initial_rto
        else:
            base = self._srtt + self.K * self._rttvar
        base = max(self.min_rto, min(self.max_rto, base))
        return min(self.max_rto, base * self._backoff)

    @property
    def rto(self) -> float:
        """Current retransmission timeout, including any backoff.

        Cached: recomputed only when the estimator state changes
        (:meth:`add_sample` / :meth:`on_timeout`), because timer arming
        and observability probes read it on every ACK.
        """
        return self._rto

    def on_timeout(self) -> None:
        """Double the timeout (called when the RTO timer fires)."""
        self._backoff = min(self._backoff * 2, 64)
        self._rto = self._compute_rto()

    def __repr__(self) -> str:
        srtt = f"{self._srtt * 1000:.1f}ms" if self._srtt is not None else "-"
        return f"<RttEstimator srtt={srtt} rto={self.rto * 1000:.1f}ms>"
