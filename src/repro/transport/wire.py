"""Mixed real/virtual byte streams and the TCP stream buffers.

A stream *piece* is either ``bytes`` (real data — HTTP headers, small
payloads that must be parsed) or a non-negative ``int`` (that many virtual
bytes — response bodies whose content is irrelevant to timing). All
sequence arithmetic treats both identically; only the HTTP layer ever looks
inside real pieces.

:class:`SendBuffer` holds the outbound stream with absolute offsets and
serves arbitrary byte-range slices, so retransmissions need no per-segment
copies. :class:`ReassemblyBuffer` is the receive side: an interval map that
tolerates duplication, reordering, and partial overlap, releasing in-order
pieces to the application.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Optional, Tuple, Union

Piece = Union[bytes, int]


def piece_len(piece: Piece) -> int:
    """Byte length of one piece."""
    if isinstance(piece, (bytes, bytearray)):
        return len(piece)
    if isinstance(piece, int):
        if piece < 0:
            raise ValueError(f"virtual piece length must be >= 0: {piece!r}")
        return piece
    raise TypeError(f"not a stream piece: {piece!r}")


def pieces_len(pieces: List[Piece]) -> int:
    """Total byte length of a piece list."""
    return sum(piece_len(p) for p in pieces)


def piece_slice(piece: Piece, start: int, end: int) -> Piece:
    """Slice one piece by byte range (``0 <= start <= end <= len``)."""
    if isinstance(piece, (bytes, bytearray)):
        return bytes(piece[start:end])
    return end - start


def pieces_slice(pieces: List[Piece], start: int, end: int) -> List[Piece]:
    """Slice a piece list by byte range, skipping empty fragments.

    ``start``/``end`` are offsets relative to the beginning of ``pieces``;
    out-of-range ends are clamped.
    """
    if start < 0:
        raise ValueError(f"negative slice start: {start!r}")
    result: List[Piece] = []
    offset = 0
    for piece in pieces:
        if offset >= end:
            break
        length = piece_len(piece)
        lo = max(start - offset, 0)
        hi = min(end - offset, length)
        if lo < hi:
            result.append(piece_slice(piece, lo, hi))
        offset += length
    return result


def pieces_to_bytes(pieces: List[Piece], fill: bytes = b"\x00") -> bytes:
    """Materialize a piece list as real bytes (virtual bytes become fill).

    Only used by tests and by code paths that genuinely need content.
    """
    parts = []
    for piece in pieces:
        if isinstance(piece, (bytes, bytearray)):
            parts.append(bytes(piece))
        else:
            parts.append(fill * piece)
    return b"".join(parts)


class SendBuffer:
    """Outbound stream with absolute offsets and an acknowledged prefix.

    Appended pieces accumulate at increasing offsets; :meth:`slice` serves
    any byte range at or beyond the acknowledged prefix, which is advanced
    by :meth:`ack_to` (releasing memory for real pieces).
    """

    __slots__ = ("_starts", "_pieces", "_length", "_acked")

    def __init__(self) -> None:
        self._starts: List[int] = []
        self._pieces: List[Piece] = []
        self._length = 0
        self._acked = 0

    @property
    def length(self) -> int:
        """Total bytes ever appended (the stream's current end offset)."""
        return self._length

    @property
    def acked(self) -> int:
        """Offset of the acknowledged prefix."""
        return self._acked

    @property
    def unacked_bytes(self) -> int:
        """Bytes appended but not yet acknowledged."""
        return self._length - self._acked

    def append(self, piece: Piece) -> None:
        """Add a piece to the end of the stream (zero-length is a no-op)."""
        length = piece_len(piece)
        if length == 0:
            return
        self._starts.append(self._length)
        self._pieces.append(piece)
        self._length += length

    def slice(self, start: int, length: int) -> List[Piece]:
        """Return pieces covering ``[start, start + length)``.

        Raises:
            ValueError: if the range reaches below the acked prefix or
                beyond the appended data.
        """
        end = start + length
        if start < self._acked:
            raise ValueError(f"slice start {start} below acked prefix {self._acked}")
        if end > self._length:
            raise ValueError(f"slice end {end} beyond stream end {self._length}")
        if length == 0:
            return []
        index = bisect_right(self._starts, start) - 1
        result: List[Piece] = []
        while index < len(self._pieces):
            piece_start = self._starts[index]
            if piece_start >= end:
                break
            piece = self._pieces[index]
            lo = max(start - piece_start, 0)
            hi = min(end - piece_start, piece_len(piece))
            if lo < hi:
                result.append(piece_slice(piece, lo, hi))
            index += 1
        return result

    def ack_to(self, offset: int) -> None:
        """Advance the acknowledged prefix (never backwards)."""
        if offset <= self._acked:
            return
        if offset > self._length:
            raise ValueError(f"ack {offset} beyond stream end {self._length}")
        self._acked = offset
        # Release fully acked pieces from the front.
        drop = 0
        while drop < len(self._pieces):
            end = self._starts[drop] + piece_len(self._pieces[drop])
            if end <= offset:
                drop += 1
            else:
                break
        if drop:
            del self._starts[:drop]
            del self._pieces[:drop]


class ReassemblyBuffer:
    """Receive-side interval map delivering in-order stream pieces.

    ``insert`` accepts any (offset, pieces) fragment — duplicated,
    reordered, or partially overlapping previously received data —
    and ``pop_ready`` releases whatever is now contiguous from
    :attr:`next_offset`.
    """

    __slots__ = ("next_offset", "_fragments")

    def __init__(self) -> None:
        self.next_offset = 0
        # Non-overlapping stored fragments: sorted list of (start, end, pieces).
        self._fragments: List[Tuple[int, int, List[Piece]]] = []

    @property
    def buffered_bytes(self) -> int:
        """Bytes held out of order, not yet deliverable."""
        return sum(end - start for start, end, __ in self._fragments)

    def ranges(self, limit: Optional[int] = None) -> List[Tuple[int, int]]:
        """The out-of-order (start, end) offset ranges held, lowest first.

        Used by TCP to build SACK blocks; ``limit`` caps the count.
        """
        out = [(start, end) for start, end, __ in self._fragments]
        if limit is not None:
            out = out[:limit]
        return out

    def insert(self, offset: int, pieces: List[Piece]) -> None:
        """Store a fragment of the stream starting at ``offset``."""
        length = pieces_len(pieces)
        start, end = offset, offset + length
        if end <= self.next_offset:
            return
        if start < self.next_offset:
            pieces = pieces_slice(pieces, self.next_offset - start, length)
            start = self.next_offset
        # Clip the incoming fragment into the gaps between stored fragments.
        gaps = self._gaps(start, end)
        new_fragments = []
        for gap_start, gap_end in gaps:
            part = pieces_slice(pieces, gap_start - start, gap_end - start)
            if part:
                new_fragments.append((gap_start, gap_end, part))
        if new_fragments:
            self._fragments.extend(new_fragments)
            self._fragments.sort(key=lambda frag: frag[0])

    def _gaps(self, start: int, end: int) -> List[Tuple[int, int]]:
        """Sub-ranges of [start, end) not covered by stored fragments."""
        gaps = []
        cursor = start
        for frag_start, frag_end, __ in self._fragments:
            if frag_end <= cursor:
                continue
            if frag_start >= end:
                break
            if frag_start > cursor:
                gaps.append((cursor, min(frag_start, end)))
            cursor = max(cursor, frag_end)
            if cursor >= end:
                break
        if cursor < end:
            gaps.append((cursor, end))
        return gaps

    def pop_ready(self) -> List[Piece]:
        """Remove and return all pieces now contiguous at ``next_offset``."""
        ready: List[Piece] = []
        while self._fragments and self._fragments[0][0] == self.next_offset:
            __, end, pieces = self._fragments.pop(0)
            ready.extend(pieces)
            self.next_offset = end
        return ready
