"""repro — a Python reproduction of Mahimahi (SIGCOMM 2014).

Mahimahi is a lightweight toolkit for reproducible web measurement: it
records websites and replays them under emulated network conditions, as a
set of arbitrarily composable shells. This package rebuilds the toolkit —
and every substrate it rides on (network namespaces, TCP, HTTP, DNS) — as
a deterministic discrete-event simulation.

Quick start::

    from repro import (
        Browser, HostMachine, ShellStack, Simulator, generate_site,
    )

    site = generate_site("example.com", seed=1)
    store = site.to_recorded_site()

    sim = Simulator(seed=42)
    machine = HostMachine(sim)
    stack = ShellStack(machine)
    stack.add_replay(store)          # mm-webreplay
    stack.add_link(14, 14)           # mm-link (14 Mbit/s each way)
    stack.add_delay(0.040)           # mm-delay 40

    browser = Browser(sim, stack.transport, stack.resolver_endpoint,
                      machine=machine)
    result = browser.load(site.page)
    sim.run_until(lambda: result.complete)
    print(f"page load time: {result.page_load_time * 1000:.0f} ms")

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
reproduced tables and figures.
"""

from repro.browser import Browser, BrowserConfig, PageLoadResult, PageModel, Resource, Url
from repro.chaos import FaultPlan
from repro.core import (
    DelayShell,
    HostMachine,
    LinkShell,
    MachineProfile,
    RecordShell,
    ReplayShell,
    Shell,
    ShellStack,
)
from repro.corpus import alexa_corpus, corpus_statistics, generate_site, named_site
from repro.errors import ReproError
from repro.linkem import (
    DropTailQueue,
    PacketDeliveryTrace,
    cellular_trace,
    constant_rate_trace,
)
from repro.measure import Sample, run_page_loads
from repro.record import RecordedSite, RequestMatcher, RequestResponsePair
from repro.sim import Simulator
from repro.web import Internet

__version__ = "1.0.0"

__all__ = [
    "Browser",
    "BrowserConfig",
    "DelayShell",
    "DropTailQueue",
    "FaultPlan",
    "HostMachine",
    "Internet",
    "LinkShell",
    "MachineProfile",
    "PacketDeliveryTrace",
    "PageLoadResult",
    "PageModel",
    "RecordShell",
    "RecordedSite",
    "ReplayShell",
    "ReproError",
    "RequestMatcher",
    "RequestResponsePair",
    "Resource",
    "Sample",
    "Shell",
    "ShellStack",
    "Simulator",
    "Url",
    "alexa_corpus",
    "cellular_trace",
    "constant_rate_trace",
    "corpus_statistics",
    "generate_site",
    "named_site",
    "run_page_loads",
    "__version__",
]
