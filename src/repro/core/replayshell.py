"""ReplayShell: ``mm-webreplay <recorded-folder>``.

Mirrors a recorded website while preserving its multi-origin nature:

* one web server per distinct (IP, port) pair seen during recording,
  bound to the *same* IP and port on a per-IP virtual interface inside
  the shell's namespace;
* every server holds the entire recorded content and answers through the
  request matcher (Mahimahi's CGI script);
* a namespace-local DNS server resolves every recorded hostname to its
  recorded IP, so unmodified applications work transparently.

``single_server=True`` reproduces the paper's Table 2 / Figure 3 ablation:
all hostnames resolve to one IP and a single server (per port) serves
everything. The penalty comes from server-side contention — one server's
bounded CGI throughput queues under the browser's parallel request load
where twenty servers would not — so it bites exactly where the paper
found it to: at high link speeds, where nothing else hides the queueing.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.base import Shell
from repro.core.machine import HostMachine
from repro.dns.server import DnsServer
from repro.errors import ShellError
from repro.http.message import HttpRequest, HttpResponse
from repro.http.server import HttpServer
from repro.net.address import AddressAllocator, Endpoint, IPv4Address
from repro.net.interface import Interface
from repro.net.namespace import NetworkNamespace
from repro.record.matcher import RequestMatcher
from repro.record.store import RecordedSite
from repro.sim.simulator import Simulator

#: Default per-request server compute: fork/exec of the CGI script.
DEFAULT_SERVER_PROCESSING = 0.005

#: The CGI script compares each request against every recorded pair, so
#: its cost scales with the size of the recorded site (seconds per pair).
DEFAULT_SERVER_PER_PAIR = 0.00003

#: Default concurrent CGI slots per replay server (one Apache's effective
#: CGI throughput is a few hundred requests/second). One server bound by
#: this queues under a browser's parallel request burst where twenty
#: servers would not — the single-server penalty of Table 2.
DEFAULT_SERVER_WORKERS = 2

#: Default DNS lookup latency inside the namespace (dnsmasq is fast).
DEFAULT_DNS_PROCESSING = 0.0002


class ReplayShell(Shell):
    """Replay a recorded site with multi-origin preservation.

    Args:
        sim: the simulator.
        parent: enclosing namespace.
        allocator: shared shell address allocator.
        site: the recorded site to mirror.
        machine: host machine whose profile scales server compute times
            (optional; without it, compute delays are unjittered).
        single_server: serve all content from one server instead of one
            per recorded origin (the paper's ablation).
        server_processing: base seconds of server compute per request.
        server_workers: concurrent request slots per server (Apache
            prefork's initial pool); the contention source in
            single-server mode.
        protocol: "http/1.1" (default) or "mux" — replay over the
            SPDY-style multiplexed transport (the browser must be
            configured to match; see BrowserConfig.protocol).
        name: shell/namespace name.
    """

    def __init__(
        self,
        sim: Simulator,
        parent: NetworkNamespace,
        allocator: AddressAllocator,
        site: RecordedSite,
        machine: Optional[HostMachine] = None,
        single_server: bool = False,
        server_processing: float = DEFAULT_SERVER_PROCESSING,
        server_workers: int = DEFAULT_SERVER_WORKERS,
        protocol: str = "http/1.1",
        name: str = "replayshell",
    ) -> None:
        super().__init__(sim, parent, allocator, name)
        if len(site) == 0:
            if site.damage is not None:
                raise ShellError(
                    f"recorded site {site.name!r} has no loadable pairs: "
                    f"all {len(site.damage)} pair file(s) are damaged "
                    f"(run mm-fsck on {site.damage.directory})"
                )
            raise ShellError(f"recorded site {site.name!r} is empty")
        if protocol not in ("http/1.1", "mux"):
            raise ShellError(f"unknown replay protocol: {protocol!r}")
        self.site = site
        self.machine = machine
        self.single_server = single_server
        self.protocol = protocol
        damaged = 0 if site.damage is None else len(site.damage)
        self.matcher = RequestMatcher(site.pairs, damaged_pairs=damaged)
        # Graceful degradation is only honest if it is *visible*: a site
        # salvaged by a tolerant load serves what survives, and the
        # losses land in the obs artifact instead of vanishing.
        if sim.metrics is not None:
            sim.metrics.counter("replayshell.store.pairs_loaded").add(
                len(site)
            )
            if damaged:
                sim.metrics.counter(
                    "replayshell.store.pairs_damaged"
                ).add(damaged)
        self._server_processing = (
            server_processing + DEFAULT_SERVER_PER_PAIR * len(site)
        )

        hostmap = site.hostnames()
        origins = sorted(site.origins())
        if single_server:
            # Everything binds to one IP; one server per recorded port.
            anchor_ip = origins[0][0]
            ports = sorted({port for __, port in origins})
            serve_points = [(anchor_ip, port) for port in ports]
            zone: Dict[str, List[IPv4Address]] = {
                host: [anchor_ip] for host in hostmap
            }
        else:
            serve_points = origins
            zone = {host: [ip] for host, ip in hostmap.items()}

        server_class = HttpServer
        if protocol == "mux":
            from repro.http.mux import MuxHttpServer
            server_class = MuxHttpServer
        self.servers: List = []
        bound: set = set()
        for index, (ip, port) in enumerate(serve_points):
            if ip not in bound:
                iface = Interface(f"origin{index}")
                self.namespace.add_interface(iface)
                iface.add_address(ip, 32)
                bound.add(ip)
            self.servers.append(server_class(
                sim, self.transport, ip, port,
                handler=self._handle,
                processing_time=self._processing_time,
                tls=(port == 443),
                max_workers=server_workers,
            ))

        # Namespace-local DNS (Mahimahi runs dnsmasq inside the shell).
        __, dns_addr, __unused = allocator.allocate_subnet()
        dns_iface = Interface("dns0")
        self.namespace.add_interface(dns_iface)
        dns_iface.add_address(dns_addr, 32)
        self.dns = DnsServer(
            sim, self.transport, dns_addr, zone,
            processing_time=DEFAULT_DNS_PROCESSING,
        )

    @property
    def resolver_endpoint(self) -> Endpoint:
        """Where applications inside the shell should send DNS queries."""
        return self.dns.endpoint

    @property
    def server_count(self) -> int:
        """Number of web servers spawned (1-2 in single-server mode)."""
        return len(self.servers)

    def _handle(self, request: HttpRequest) -> HttpResponse:
        return self.matcher.match(request).response

    def _processing_time(self, request: HttpRequest) -> float:
        if self.machine is not None:
            return self.machine.compute_time(
                self._server_processing,
                key=f"cgi:{request.host}:{request.uri}",
            )
        return self._server_processing
