"""LossShell: ``mm-loss <direction> <loss-rate>``.

Part of the Mahimahi toolkit alongside the shells the demo paper
describes: every packet crossing the boundary in an afflicted direction is
dropped independently with the given probability. Composes with the other
shells (``mm-loss downlink 0.01 mm-link ...``) to study loss-recovery
behaviour under emulated links.
"""

from __future__ import annotations

from repro.core.base import Shell
from repro.errors import ShellError
from repro.linkem.delay import LossPipe
from repro.net.address import AddressAllocator
from repro.net.namespace import NetworkNamespace
from repro.net.pipe import InstantPipe
from repro.sim.simulator import Simulator


class LossShell(Shell):
    """Independent random packet loss around a private namespace.

    Args:
        sim: the simulator.
        parent: enclosing namespace.
        allocator: shared shell address allocator.
        downlink_loss: drop probability, parent->child direction.
        uplink_loss: drop probability, child->parent direction.
        name: shell/namespace name.

    Loss draws come from the simulation's named streams, so runs stay
    reproducible.
    """

    def __init__(
        self,
        sim: Simulator,
        parent: NetworkNamespace,
        allocator: AddressAllocator,
        downlink_loss: float = 0.0,
        uplink_loss: float = 0.0,
        name: str = "lossshell",
    ) -> None:
        for rate in (downlink_loss, uplink_loss):
            if not 0.0 <= rate <= 1.0:
                raise ShellError(f"loss rate must be in [0, 1]: {rate!r}")
        rng = sim.streams.stream(f"loss:{name}")
        downlink = (LossPipe(sim, downlink_loss, rng)
                    if downlink_loss > 0.0 else InstantPipe(sim))
        uplink = (LossPipe(sim, uplink_loss, rng)
                  if uplink_loss > 0.0 else InstantPipe(sim))
        super().__init__(sim, parent, allocator, name, downlink, uplink)
        self.downlink_loss = downlink_loss
        self.uplink_loss = uplink_loss
