"""LossShell: ``mm-loss <direction> <loss-rate>``.

Part of the Mahimahi toolkit alongside the shells the demo paper
describes: every packet crossing the boundary in an afflicted direction is
dropped independently with the given probability. Composes with the other
shells (``mm-loss downlink 0.01 mm-link ...``) to study loss-recovery
behaviour under emulated links.

Besides independent (Bernoulli) loss, a direction can run a
Gilbert–Elliott bursty-loss model instead: pass a
:class:`repro.chaos.plan.GilbertElliottClause` as ``downlink_ge`` /
``uplink_ge``. This is a thin re-export of the chaos subsystem's GE
machinery — ``mm-loss downlink ge ...`` and a one-clause ``mm-chaos``
plan drop exactly the same packets for the same seed.
"""

from __future__ import annotations

from repro.core.base import Shell
from repro.errors import ShellError
from repro.linkem.delay import LossPipe
from repro.net.address import AddressAllocator
from repro.net.namespace import NetworkNamespace
from repro.net.pipe import InstantPipe
from repro.sim.simulator import Simulator


class LossShell(Shell):
    """Independent random packet loss around a private namespace.

    Args:
        sim: the simulator.
        parent: enclosing namespace.
        allocator: shared shell address allocator.
        downlink_loss: drop probability, parent->child direction.
        uplink_loss: drop probability, child->parent direction.
        downlink_ge: a :class:`repro.chaos.plan.GilbertElliottClause`
            for bursty loss on the downlink (exclusive with
            ``downlink_loss``).
        uplink_ge: likewise for the uplink.
        name: shell/namespace name.

    Loss draws come from the simulation's named streams, so runs stay
    reproducible.
    """

    def __init__(
        self,
        sim: Simulator,
        parent: NetworkNamespace,
        allocator: AddressAllocator,
        downlink_loss: float = 0.0,
        uplink_loss: float = 0.0,
        downlink_ge=None,
        uplink_ge=None,
        name: str = "lossshell",
    ) -> None:
        for rate in (downlink_loss, uplink_loss):
            if not 0.0 <= rate <= 1.0:
                raise ShellError(f"loss rate must be in [0, 1]: {rate!r}")
        if downlink_ge is not None and downlink_loss > 0.0:
            raise ShellError("downlink: pick Bernoulli loss or GE, not both")
        if uplink_ge is not None and uplink_loss > 0.0:
            raise ShellError("uplink: pick Bernoulli loss or GE, not both")
        rng = sim.streams.stream(f"loss:{name}")
        downlink = self._build_pipe(
            sim, rng, downlink_loss, downlink_ge, f"loss:{name}:downlink"
        )
        uplink = self._build_pipe(
            sim, rng, uplink_loss, uplink_ge, f"loss:{name}:uplink"
        )
        super().__init__(sim, parent, allocator, name, downlink, uplink)
        self.downlink_loss = downlink_loss
        self.uplink_loss = uplink_loss
        self.downlink_ge = downlink_ge
        self.uplink_ge = uplink_ge

    @staticmethod
    def _build_pipe(sim, rng, loss: float, ge, stream_name: str):
        if ge is not None:
            # Imported lazily: repro.core is imported by repro.chaos.shell,
            # so a top-level import here would be a cycle.
            from repro.chaos.pipes import ChaosPipe
            from repro.chaos.plan import GilbertElliottClause

            if not isinstance(ge, GilbertElliottClause):
                raise ShellError(
                    f"GE mode wants a GilbertElliottClause, got {ge!r}"
                )
            # A dedicated stream per GE direction: the two-state chain
            # draws twice per packet, and sharing the Bernoulli stream
            # would couple the directions' sequences.
            return ChaosPipe(sim, [ge], sim.streams.stream(stream_name))
        if loss > 0.0:
            return LossPipe(sim, loss, rng)
        return InstantPipe(sim)
