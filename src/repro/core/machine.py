"""Host machines: the thing Table 1 varies.

The paper's reproducibility claim is that Mahimahi's measurements barely
change across host machines. What differs between two hosts is *compute
speed* (every CPU-bound cost — browser parsing, server handling, DNS
lookups — scales with it) and *timing noise* (scheduling jitter on each of
those costs). :class:`MachineProfile` captures both; every simulated
compute delay is issued through :meth:`compute_time`.

:class:`HostMachine` bundles a profile with the host namespace and the
shell address allocator — the root every shell stack hangs off.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.net.address import AddressAllocator
from repro.net.namespace import NetworkNamespace
from repro.sim.simulator import Simulator


@dataclass(frozen=True)
class MachineProfile:
    """A host machine's timing characteristics.

    Attributes:
        name: label used in reports ("Machine 1").
        cpu_factor: multiplier on every compute delay (1.0 = reference
            machine; 1.05 = 5% slower).
        jitter_stddev: relative standard deviation of per-operation timing
            noise (OS scheduling, cache effects). Applied as a truncated
            Gaussian factor around 1.0, independently per operation.
        trial_jitter_stddev: relative standard deviation of the *per-run*
            host condition (background load, thermal state) — one factor
            drawn per HostMachine and applied to every compute delay of
            that run. This correlated component is what gives repeated
            page loads their percent-scale spread (Table 1's standard
            deviations); the per-operation component alone averages out
            across a page's many resources.
    """

    name: str = "machine"
    cpu_factor: float = 1.0
    jitter_stddev: float = 0.015
    trial_jitter_stddev: float = 0.035

    def compute_time(self, base_seconds: float, rng: random.Random) -> float:
        """Turn an idealized compute cost into this machine's actual cost."""
        if base_seconds <= 0.0:
            return 0.0
        noise = rng.gauss(1.0, self.jitter_stddev)
        # Truncate: a compute delay can jitter, not become negative or
        # implausibly short.
        noise = max(0.5, noise)
        return base_seconds * self.cpu_factor * noise

    @classmethod
    def reference(cls) -> "MachineProfile":
        """The baseline machine."""
        return cls(name="reference", cpu_factor=1.0)


class HostMachine:
    """A host: namespace root, address allocator, and machine profile.

    Args:
        sim: the simulator.
        profile: timing profile (default: the reference machine).
        name: namespace name for diagnostics.

    Every shell stack for one measurement run is built under
    ``machine.namespace`` using ``machine.allocator``, and all compute
    delays draw jitter from ``machine.rng`` (a named stream, so two
    machines in one simulation have independent but reproducible noise).
    """

    def __init__(
        self,
        sim: Simulator,
        profile: Optional[MachineProfile] = None,
        name: str = "host",
    ) -> None:
        self.sim = sim
        self.profile = profile if profile is not None else MachineProfile.reference()
        self.namespace = NetworkNamespace(sim, name)
        self.allocator = AddressAllocator()
        self.name = name
        self.rng = sim.streams.stream(f"machine:{name}:{self.profile.name}")
        # The run's host condition: drawn once, applied to every compute
        # delay (see MachineProfile.trial_jitter_stddev).
        self.trial_factor = max(
            0.8, self.rng.gauss(1.0, self.profile.trial_jitter_stddev))

    def compute_time(self, base_seconds: float, key: Optional[str] = None) -> float:
        """Host-adjusted compute delay (profile factor + jitter).

        Args:
            base_seconds: the idealized cost.
            key: optional stable identity of the operation (a request URI,
                a resource URL). Keyed draws use a dedicated stream per
                key, so two experiment arms doing the same work draw the
                *same* jitter regardless of event interleaving — common
                random numbers, the variance-reduction that makes sub-
                percent comparisons (Figure 2) measurable. Unkeyed draws
                share one sequential stream.
        """
        if key is None:
            rng = self.rng
        else:
            rng = self.sim.streams.stream(
                f"machine:{self.name}:{self.profile.name}:{key}")
        return self.trial_factor * self.profile.compute_time(base_seconds, rng)

    def __repr__(self) -> str:
        return f"<HostMachine {self.profile.name} cpu={self.profile.cpu_factor}>"
