"""Shell composition: nesting shells like Mahimahi command lines.

``mm-webreplay site mm-link up down mm-delay 40 <browser>`` becomes::

    stack = ShellStack(machine)
    replay = stack.add_replay(site)
    stack.add_link(uplink=14, downlink=14)
    stack.add_delay(0.040)
    # run the browser in stack.namespace, resolving via replay DNS

Each shell nests inside the previous one's namespace; the application runs
in the innermost. The stack tracks the replay shell's resolver endpoint so
browsers can be pointed at it with no extra wiring.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.delayshell import DelayShell
from repro.core.linkshell import LinkShell
from repro.core.machine import HostMachine
from repro.core.recordshell import RecordShell
from repro.core.replayshell import ReplayShell
from repro.errors import ShellError
from repro.linkem.overhead import OverheadModel
from repro.linkem.queues import DropTailQueue
from repro.net.address import Endpoint
from repro.net.namespace import NetworkNamespace
from repro.record.store import RecordedSite
from repro.transport.host import TransportHost


class ShellStack:
    """A chain of nested shells under one host machine.

    Args:
        machine: the host everything runs on (provides the root namespace,
            the address allocator, and the timing profile).
    """

    def __init__(self, machine: HostMachine) -> None:
        self.machine = machine
        self.shells: List = []
        self._names_used: dict = {}

    # ------------------------------------------------------------------ #
    # building

    def add_replay(
        self,
        site: RecordedSite,
        single_server: bool = False,
        **kwargs,
    ) -> ReplayShell:
        """Nest a ReplayShell inside the current innermost namespace."""
        shell = ReplayShell(
            self.machine.sim, self.namespace, self.machine.allocator,
            site, machine=self.machine, single_server=single_server,
            name=self._name("replayshell"), **kwargs,
        )
        self.shells.append(shell)
        return shell

    def add_record(self, store: RecordedSite, **kwargs) -> RecordShell:
        """Nest a RecordShell inside the current innermost namespace."""
        shell = RecordShell(
            self.machine.sim, self.namespace, self.machine.allocator,
            store, name=self._name("recordshell"), **kwargs,
        )
        self.shells.append(shell)
        return shell

    def add_delay(
        self,
        one_way_delay: float,
        overhead: Optional[OverheadModel] = None,
    ) -> DelayShell:
        """Nest a DelayShell inside the current innermost namespace."""
        shell = DelayShell(
            self.machine.sim, self.namespace, self.machine.allocator,
            one_way_delay, overhead=overhead, name=self._name("delayshell"),
        )
        self.shells.append(shell)
        return shell

    def add_loss(
        self,
        downlink_loss: float = 0.0,
        uplink_loss: float = 0.0,
        downlink_ge=None,
        uplink_ge=None,
    ):
        """Nest a LossShell inside the current innermost namespace."""
        from repro.core.lossshell import LossShell

        shell = LossShell(
            self.machine.sim, self.namespace, self.machine.allocator,
            downlink_loss=downlink_loss, uplink_loss=uplink_loss,
            downlink_ge=downlink_ge, uplink_ge=uplink_ge,
            name=self._name("lossshell"),
        )
        self.shells.append(shell)
        return shell

    def add_chaos(self, plan):
        """Nest a ChaosShell driven by ``plan`` (a FaultPlan).

        Link-layer clauses (outage, GE loss, corruption, reorder,
        SYN blackhole) act on the new shell's boundary. Server and DNS
        clauses are wired into the stack's ReplayShell: one shared
        :class:`~repro.chaos.inject.ServerFaultInjector` across all its
        origin servers (clauses match by request arrival order
        site-wide) and one
        :class:`~repro.chaos.inject.DnsFaultInjector` on its DNS server.

        Raises:
            ShellError: if the plan has server/DNS clauses but the stack
                has no ReplayShell to host them.
        """
        from repro.chaos import ChaosShell
        from repro.chaos.inject import DnsFaultInjector, ServerFaultInjector

        shell = ChaosShell(
            self.machine.sim, self.namespace, self.machine.allocator,
            plan, name=self._name("chaosshell"),
        )
        self.shells.append(shell)
        server_clauses = plan.server_clauses
        dns_clauses = plan.dns_clauses
        if server_clauses or dns_clauses:
            replay = next(
                (s for s in self.shells if isinstance(s, ReplayShell)), None
            )
            if replay is None:
                raise ShellError(
                    "plan has server/DNS fault clauses but the stack has "
                    "no ReplayShell to inject them into"
                )
            if server_clauses:
                injector = ServerFaultInjector(
                    self.machine.sim, server_clauses,
                    obs_path=f"chaos.{shell.name}.server",
                )
                shell.server_injector = injector
                for server in replay.servers:
                    server.fault_injector = injector
            if dns_clauses:
                dns_injector = DnsFaultInjector(
                    self.machine.sim, dns_clauses,
                    obs_path=f"chaos.{shell.name}.dns",
                )
                shell.dns_injector = dns_injector
                replay.dns.fault_injector = dns_injector
        return shell

    def add_link(
        self,
        uplink,
        downlink,
        uplink_queue: Optional[DropTailQueue] = None,
        downlink_queue: Optional[DropTailQueue] = None,
        overhead: Optional[OverheadModel] = None,
    ) -> LinkShell:
        """Nest a LinkShell inside the current innermost namespace."""
        shell = LinkShell(
            self.machine.sim, self.namespace, self.machine.allocator,
            uplink, downlink,
            uplink_queue=uplink_queue, downlink_queue=downlink_queue,
            overhead=overhead, name=self._name("linkshell"),
        )
        self.shells.append(shell)
        return shell

    def _name(self, base: str) -> str:
        count = self._names_used.get(base, 0)
        self._names_used[base] = count + 1
        return base if count == 0 else f"{base}-{count}"

    # ------------------------------------------------------------------ #
    # where things run

    @property
    def namespace(self) -> NetworkNamespace:
        """The innermost namespace (where the application runs)."""
        if self.shells:
            return self.shells[-1].namespace
        return self.machine.namespace

    @property
    def transport(self) -> TransportHost:
        """Transport host of the innermost namespace."""
        if self.shells:
            return self.shells[-1].transport
        return TransportHost.ensure(self.machine.sim, self.machine.namespace)

    @property
    def resolver_endpoint(self) -> Endpoint:
        """The DNS endpoint applications should resolve against.

        Raises:
            ShellError: if the stack contains no ReplayShell (use the
                live-web model's resolver instead).
        """
        for shell in self.shells:
            if isinstance(shell, ReplayShell):
                return shell.resolver_endpoint
        raise ShellError("no ReplayShell in this stack to resolve against")

    def __repr__(self) -> str:
        chain = " > ".join(type(s).__name__ for s in self.shells) or "(empty)"
        return f"<ShellStack {chain}>"
