"""RecordShell: ``mm-webrecord <output-folder> <app>``.

The application runs inside the shell's private namespace; a transparent
man-in-the-middle proxy runs on the *parent* side (the "host machine" in
Figure 1a), with REDIRECT rules steering the namespace's outbound HTTP(S)
through it. Every request-response pair the proxy observes lands in the
recorded site, one record per exchange. Recording is transparent: the
application needs no proxy configuration.
"""

from __future__ import annotations

from repro.core.base import Shell
from repro.net.address import AddressAllocator, Endpoint
from repro.net.namespace import NetworkNamespace
from repro.record.proxy import PROXY_PORT, RecordingProxy, Redirector
from repro.record.store import RecordedSite
from repro.sim.simulator import Simulator
from repro.transport.host import TransportHost


class RecordShell(Shell):
    """Record all HTTP(S) traffic leaving a private namespace.

    Args:
        sim: the simulator.
        parent: enclosing namespace (the proxy binds here, on the shell's
            parent-side veth address).
        allocator: shared shell address allocator.
        store: recorded site that receives every observed pair.
        name: shell/namespace name.

    Run the application (browser, HTTP client, anything) inside
    ``shell.namespace``; read the recording from ``store``.
    """

    def __init__(
        self,
        sim: Simulator,
        parent: NetworkNamespace,
        allocator: AddressAllocator,
        store: RecordedSite,
        name: str = "recordshell",
    ) -> None:
        super().__init__(sim, parent, allocator, name)
        self.store = store
        proxy_endpoint = Endpoint(self.parent_address, PROXY_PORT)
        self.redirector = Redirector(
            parent, proxy_endpoint, watch_interface=self.veth.iface_a
        )
        parent_transport = TransportHost.ensure(sim, parent)
        self.proxy = RecordingProxy(
            sim, parent_transport, self.parent_address, store, self.redirector
        )

    @property
    def pairs_recorded(self) -> int:
        """Exchanges captured so far."""
        return self.proxy.pairs_recorded
