"""The paper's contribution: Mahimahi's composable shells.

Each shell creates a private network namespace joined to its parent by a
veth pair, NATs traffic leaving the namespace, and interposes its
emulation on the veth — so shells nest arbitrarily, exactly like running
``mm-webreplay mm-link up.trace down.trace mm-delay 40 <app>``:

* :class:`~repro.core.delayshell.DelayShell` — fixed per-packet one-way
  delay in each direction.
* :class:`~repro.core.linkshell.LinkShell` — trace-driven link emulation.
* :class:`~repro.core.replayshell.ReplayShell` — multi-origin site replay:
  one web server per recorded IP/port, bound to the recorded addresses,
  plus a namespace-local DNS server.
* :class:`~repro.core.recordshell.RecordShell` — transparent MITM
  recording of all HTTP(S) leaving the namespace.

:class:`~repro.core.machine.HostMachine` models the host a measurement
runs on (CPU speed factor + timing jitter — Table 1's subject), and
:mod:`~repro.core.compose` builds the canonical stacks the paper's
experiments use.
"""

from repro.core.base import Shell
from repro.core.compose import ShellStack
from repro.core.delayshell import DelayShell
from repro.core.linkshell import LinkShell
from repro.core.lossshell import LossShell
from repro.core.machine import HostMachine, MachineProfile
from repro.core.recordshell import RecordShell
from repro.core.replayshell import ReplayShell

__all__ = [
    "DelayShell",
    "HostMachine",
    "LinkShell",
    "LossShell",
    "MachineProfile",
    "RecordShell",
    "ReplayShell",
    "Shell",
    "ShellStack",
]
