"""DelayShell: ``mm-delay <one-way-delay-ms>``.

All packets crossing the shell boundary are held in a queue — one per
direction — and released after the user-specified one-way delay, enforcing
a fixed per-packet delay. A 0 ms DelayShell is the paper's probe for the
toolkit's own overhead (Figure 2).
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import Shell
from repro.errors import ShellError
from repro.linkem.delay import DelayPipe
from repro.linkem.overhead import OverheadModel
from repro.net.address import AddressAllocator
from repro.net.namespace import NetworkNamespace
from repro.sim.simulator import Simulator


class DelayShell(Shell):
    """A fixed one-way-delay link around a private namespace.

    Args:
        sim: the simulator.
        parent: enclosing namespace.
        allocator: shared shell address allocator.
        one_way_delay: seconds of delay each direction (``mm-delay 40``
            is ``one_way_delay=0.040``).
        overhead: per-packet forwarding cost; defaults to the calibrated
            mm-delay cost (pass ``OverheadModel.none()`` for an ideal
            delay element).
        name: shell/namespace name.
    """

    def __init__(
        self,
        sim: Simulator,
        parent: NetworkNamespace,
        allocator: AddressAllocator,
        one_way_delay: float,
        overhead: Optional[OverheadModel] = None,
        name: str = "delayshell",
    ) -> None:
        if one_way_delay < 0.0:
            raise ShellError(f"negative delay: {one_way_delay!r}")
        self.one_way_delay = one_way_delay
        downlink = DelayPipe(sim, one_way_delay, overhead)
        uplink = DelayPipe(sim, one_way_delay, overhead)
        super().__init__(sim, parent, allocator, name, downlink, uplink)
