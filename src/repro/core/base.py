"""The shell base class: namespace + veth + NAT plumbing.

Constructing a shell under a parent namespace does exactly what launching
a Mahimahi shell does:

1. create a private child namespace;
2. allocate a /30 from 100.64.0.0/10 and join parent and child with a
   veth pair, the shell's emulation pipes riding on it;
3. default-route the child's traffic up through the veth;
4. masquerade (source-NAT) traffic the child forwards on behalf of any
   shells nested deeper inside it.

The child namespace gets a :class:`~repro.transport.host.TransportHost`,
so applications (and replay servers, proxies, DNS) can run inside it
directly.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ShellError
from repro.net.address import AddressAllocator, IPv4Address
from repro.net.namespace import NetworkNamespace
from repro.net.nat import Nat
from repro.net.pipe import PacketPipe
from repro.net.veth import VethPair
from repro.sim.simulator import Simulator
from repro.transport.host import TransportHost


class Shell:
    """One composable shell: a namespace behind an emulated veth.

    Args:
        sim: the simulator.
        parent: namespace this shell nests inside (a HostMachine's
            namespace, or another shell's ``namespace``).
        allocator: the /30 source for veth addressing (shared across the
            whole stack so addresses never collide).
        name: shell name; also names the namespace and interfaces.
        downlink: pipe carrying parent->child traffic (toward the app).
        uplink: pipe carrying child->parent traffic.

    Subclasses build their emulation pipes and pass them up. ``None``
    means an instant (unemulated) pipe.
    """

    def __init__(
        self,
        sim: Simulator,
        parent: NetworkNamespace,
        allocator: AddressAllocator,
        name: str,
        downlink: Optional[PacketPipe] = None,
        uplink: Optional[PacketPipe] = None,
    ) -> None:
        if parent is None:
            raise ShellError(f"shell {name!r} needs a parent namespace")
        self.sim = sim
        self.parent = parent
        self.name = name
        self.namespace = NetworkNamespace(sim, name)
        self.subnet, parent_addr, child_addr = allocator.allocate_subnet()
        self.veth = VethPair(
            sim, parent, self.namespace,
            f"{name}-egress", f"{name}-ingress",
            pipe_ab=downlink, pipe_ba=uplink,
        )
        self.parent_address: IPv4Address = self.veth.iface_a.add_address(
            parent_addr, 30
        )
        self.child_address: IPv4Address = self.veth.iface_b.add_address(
            child_addr, 30
        )
        self.namespace.routes.add_default(self.veth.iface_b, via=parent_addr)
        nat = Nat(self.namespace)
        nat.masquerade_on(self.veth.iface_b)
        self.transport = TransportHost(sim, self.namespace)

    @property
    def downlink_pipe(self) -> PacketPipe:
        """The parent->child emulation pipe."""
        return self.veth.pipe_ab

    @property
    def uplink_pipe(self) -> PacketPipe:
        """The child->parent emulation pipe."""
        return self.veth.pipe_ba

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name!r} "
            f"{self.parent_address} <-> {self.child_address}>"
        )
