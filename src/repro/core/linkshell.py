"""LinkShell: ``mm-link <uplink.trace> <downlink.trace>``.

Packets entering the link go straight into the uplink or downlink queue;
the queue drains according to the corresponding packet-delivery trace —
each trace line one MTU-sized delivery opportunity, byte budgets carrying
partially-sent packets across opportunities, the trace repeating when
exhausted. Queues are unbounded by default (mm-link's default); bounded
drop-tail queues turn on loss.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.base import Shell
from repro.linkem.overhead import OverheadModel
from repro.linkem.trace import (
    ConstantRateSchedule,
    FileTraceSchedule,
    PacketDeliveryTrace,
)
from repro.linkem.tracelink import TracePipe
from repro.net.address import AddressAllocator
from repro.net.namespace import NetworkNamespace
from repro.sim.simulator import Simulator

TraceLike = Union[PacketDeliveryTrace, float]


def _make_schedule(trace: TraceLike, start_time: float):
    """A trace object becomes a file schedule; a number is Mbit/s."""
    if isinstance(trace, PacketDeliveryTrace):
        return FileTraceSchedule(trace, start_time)
    return ConstantRateSchedule(float(trace) * 1e6, start_time)


class LinkShell(Shell):
    """A trace-driven link around a private namespace.

    Args:
        sim: the simulator.
        parent: enclosing namespace.
        allocator: shared shell address allocator.
        uplink: trace (or constant rate in Mbit/s) for child->parent.
        downlink: trace (or constant rate in Mbit/s) for parent->child.
        uplink_queue / downlink_queue: queue disciplines — DropTailQueue
            or CoDelQueue (default: unbounded drop-tail, like mm-link).
        overhead: per-packet forwarding cost; defaults to the calibrated
            mm-link cost.
        name: shell/namespace name.
    """

    def __init__(
        self,
        sim: Simulator,
        parent: NetworkNamespace,
        allocator: AddressAllocator,
        uplink: TraceLike,
        downlink: TraceLike,
        uplink_queue: Optional[object] = None,
        downlink_queue: Optional[object] = None,
        overhead: Optional[OverheadModel] = None,
        name: str = "linkshell",
    ) -> None:
        start = sim.now
        down_pipe = TracePipe(
            sim, _make_schedule(downlink, start), downlink_queue, overhead,
            obs_path=f"{name}.downlink",
        )
        up_pipe = TracePipe(
            sim, _make_schedule(uplink, start), uplink_queue, overhead,
            obs_path=f"{name}.uplink",
        )
        super().__init__(sim, parent, allocator, name, down_pipe, up_pipe)

    @property
    def downlink_queue(self):
        """The downlink (toward the app) buffer."""
        return self.downlink_pipe.queue

    @property
    def uplink_queue(self):
        """The uplink (toward the parent) buffer."""
        return self.uplink_pipe.queue
