"""A persistent-connection HTTP/1.1 client.

One :class:`HttpClient` wraps one TCP connection to one origin and issues
requests serially (no pipelining — matching the browsers of the paper's
era, which open parallel connections instead). The browser model's
per-origin pools are built from these.

TLS is supported through the cost model in :mod:`repro.transport.tls`: pass
``tls=True`` and the request stream starts after the handshake flights.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.errors import (
    ConnectionClosed,
    ConnectionReset,
    HttpParseError,
    ResetMidTransfer,
    TruncatedBody,
)
from repro.http.message import HttpRequest, HttpResponse
from repro.http.parser import HttpParser
from repro.http.serialize import serialize_request
from repro.net.address import Endpoint
from repro.sim.simulator import Simulator
from repro.transport.host import TransportHost
from repro.transport.tls import TlsClientSession, TlsConfig

ResponseCallback = Callable[[HttpResponse], None]
ErrorCallback = Callable[[Exception], None]


class HttpClient:
    """One HTTP connection to one origin.

    Args:
        sim: the simulator.
        transport: the local namespace's transport host.
        origin: server endpoint to connect to.
        tls: model a TLS handshake before the first request.
        tls_config: handshake sizes when ``tls`` is set.

    Requests are queued with :meth:`request` and issued strictly one at a
    time; the connection is reusable immediately after each response
    (keep-alive). ``on_error`` (assignable) receives transport failures and
    fails all outstanding requests.
    """

    def __init__(
        self,
        sim: Simulator,
        transport: TransportHost,
        origin: Endpoint,
        tls: bool = False,
        tls_config: Optional[TlsConfig] = None,
    ) -> None:
        self.sim = sim
        self.origin = origin
        self.tls = tls
        self.on_error: Optional[ErrorCallback] = None
        self.on_idle: Optional[Callable[[], None]] = None
        self.requests_sent = 0
        self.responses_received = 0
        self._queue: Deque[Tuple[HttpRequest, ResponseCallback]] = deque()
        self._inflight: Optional[Tuple[HttpRequest, ResponseCallback]] = None
        self._parser = HttpParser("response")
        self._parser.on_message = self._response_arrived
        self._ready = False
        self._closed = False
        # Timing capture for waterfall observability (plain floats, always
        # on — reading the clock costs nothing and schedules nothing).
        self.created_at = sim.now
        self.ready_at: Optional[float] = None
        #: (sent_at, first_byte_at, done_at) of the most recently completed
        #: request, refreshed just before its response callback fires.
        self.last_timing: Optional[Tuple[float, float, float]] = None
        self._sent_at: Optional[float] = None
        self._first_byte_at: Optional[float] = None
        # Response bytes received for the in-flight request — the byte
        # offset reported by structured mid-transfer errors.
        self._bytes_received = 0

        self.conn = transport.connect(origin)
        self.conn.on_error = self._failed
        self.conn.on_remote_close = self._remote_closed
        if tls:
            self._tls = TlsClientSession(self.conn, tls_config)
            self._tls.on_established = self._became_ready
            self._tls.on_data = self._data
        else:
            self._tls = None
            self.conn.on_established = self._became_ready
            self.conn.on_data = self._data

    # ------------------------------------------------------------------ #
    # public API

    @property
    def ready(self) -> bool:
        """True once the transport (and TLS, if any) is established."""
        return self._ready

    @property
    def busy(self) -> bool:
        """True while a request is outstanding or queued."""
        return self._inflight is not None or bool(self._queue)

    @property
    def closed(self) -> bool:
        """True once the connection is unusable."""
        return self._closed

    def request(
        self, request: HttpRequest, on_response: ResponseCallback
    ) -> None:
        """Queue a request; ``on_response`` fires with the full response.

        Raises:
            ConnectionClosed: if the connection has already failed/closed.
        """
        if self._closed:
            raise ConnectionClosed(f"connection to {self.origin} is closed")
        self._queue.append((request, on_response))
        self._pump()

    def close(self) -> None:
        """Close the connection (outstanding requests fail)."""
        if self._closed:
            return
        self._closed = True
        try:
            self.conn.close()
        except ConnectionClosed:
            pass
        self._fail_outstanding(ConnectionClosed("client closed connection"))

    # ------------------------------------------------------------------ #
    # internals

    def _became_ready(self) -> None:
        self._ready = True
        self.ready_at = self.sim.now
        self._pump()

    def _pump(self) -> None:
        if not self._ready or self._closed or self._inflight is not None:
            return
        if not self._queue:
            return
        request, callback = self._queue.popleft()
        self._inflight = (request, callback)
        self._sent_at = self.sim.now
        self._first_byte_at = None
        self._bytes_received = 0
        self._parser.expect(request.method)
        sender = self._tls if self._tls is not None else self.conn
        for piece in serialize_request(request):
            if isinstance(piece, int):
                sender.send_virtual(piece)
            else:
                sender.send(piece)
        self.requests_sent += 1

    def _data(self, pieces) -> None:
        if self._inflight is not None:
            if self._first_byte_at is None:
                self._first_byte_at = self.sim.now
            for piece in pieces:
                self._bytes_received += (
                    len(piece) if isinstance(piece, (bytes, bytearray))
                    else piece
                )
        self._parser.feed(pieces)

    def _response_arrived(self, response: HttpResponse) -> None:
        self.responses_received += 1
        inflight = self._inflight
        self._inflight = None
        if self._sent_at is not None:
            now = self.sim.now
            first = self._first_byte_at if self._first_byte_at is not None else now
            self.last_timing = (self._sent_at, first, now)
            self._sent_at = None
            self._first_byte_at = None
        if (response.headers.get("Connection") or "").lower() == "close":
            self._closed = True
        if inflight is not None:
            inflight[1](response)
        if not self._closed:
            self._pump()
        if not self.busy and self.on_idle is not None:
            self.on_idle()

    def _inflight_url(self) -> Optional[str]:
        """The in-flight request's URL (None when idle)."""
        if self._inflight is None:
            return None
        request = self._inflight[0]
        host = request.headers.get("Host") or str(self.origin)
        scheme = "https" if self.tls else "http"
        return f"{scheme}://{host}{request.uri}"

    def _remote_closed(self) -> None:
        # Server closed: a close-delimited body (if any) is now complete.
        try:
            self._parser.finish()
        except HttpParseError as exc:
            # Mid-message close: surface a structured truncation error
            # carrying the URL and byte offset, so failure taxonomies
            # can tell a short read from a generic parse problem.
            self._failed(TruncatedBody(
                str(exc), url=self._inflight_url(),
                bytes_received=self._bytes_received,
            ))
            return
        except Exception as exc:
            self._failed(exc)
            return
        self._closed = True
        self._fail_outstanding(ConnectionClosed(
            f"{self.origin} closed the connection"))

    def _failed(self, exc: Exception) -> None:
        if isinstance(exc, ConnectionReset) and self._inflight is not None:
            exc = ResetMidTransfer(
                str(exc), url=self._inflight_url(),
                bytes_received=self._bytes_received,
            )
        self._closed = True
        self._fail_outstanding(exc)
        if self.on_error is not None:
            self.on_error(exc)

    def _fail_outstanding(self, exc: Exception) -> None:
        outstanding = []
        if self._inflight is not None:
            outstanding.append(self._inflight)
            self._inflight = None
        outstanding.extend(self._queue)
        self._queue.clear()
        for __, callback in outstanding:
            if isinstance(callback, FailableCallback):
                callback.fail(exc)

    def __repr__(self) -> str:
        state = "closed" if self._closed else ("ready" if self._ready else "connecting")
        return f"<HttpClient {self.origin} {state} sent={self.requests_sent}>"


class FailableCallback:
    """Optional wrapper: a response callback that also wants failures.

    Pass an instance as ``on_response`` to receive ``fail(exc)`` when the
    connection dies with the request outstanding.
    """

    def __init__(
        self, on_response: ResponseCallback, on_failure: ErrorCallback
    ) -> None:
        self._on_response = on_response
        self._on_failure = on_failure

    def __call__(self, response: HttpResponse) -> None:
        self._on_response(response)

    def fail(self, exc: Exception) -> None:
        self._on_failure(exc)
