"""A SPDY-style multiplexed HTTP transport.

The paper's opening use case is "network protocol designers who seek to
understand the application-level impact of new multiplexing protocols" —
in 2014 that meant SPDY. This module implements such a protocol over the
simulated TCP: one connection per origin carrying many concurrent request
streams, responses interleaved frame by frame.

Framing (text headers for debuggability; sizes comparable to SPDY's
binary frames):

    MUX <stream-id> <type> <payload-length> <fin>\\n

followed by ``payload-length`` bytes. Types: ``H`` (a serialized HTTP
message — headers block) and ``D`` (body data). ``fin=1`` closes the
stream. Response bodies are sliced into :data:`FRAME_CHUNK`-byte DATA
frames and written round-robin across active streams, which is what gives
multiplexing its bandwidth-sharing behaviour on a bottleneck.

:class:`MuxClientSession` replaces a pool of six
:class:`~repro.http.client.HttpClient` connections;
:class:`MuxHttpServer` is the server half (ReplayShell spawns these when
constructed with ``protocol="mux"``).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.errors import ConnectionClosed, HttpParseError
from repro.http.client import FailableCallback
from repro.http.message import HttpRequest, HttpResponse
from repro.http.parser import HttpParser, _PieceBuffer
from repro.http.serialize import serialize_request, serialize_response
from repro.net.address import Endpoint, IPv4Address
from repro.sim.simulator import Simulator
from repro.transport.host import TransportHost
from repro.transport.tcp import TcpConnection
from repro.transport.tls import TlsClientSession, TlsConfig, TlsServerSession
from repro.transport.wire import Piece, piece_len, pieces_len

#: Bytes of response body per DATA frame (SPDY implementations used
#: 4-16 KB; interleaving granularity on the wire).
FRAME_CHUNK = 8 * 1024


class _FrameCodec:
    """Shared incremental frame reader/writer."""

    def __init__(self) -> None:
        self._buffer = _PieceBuffer()
        self._pending_header: Optional[tuple] = None
        self._payload: List[Piece] = []

    @staticmethod
    def encode(stream_id: int, frame_type: str, payload: List[Piece],
               fin: bool) -> List[Piece]:
        length = pieces_len(payload)
        header = f"MUX {stream_id} {frame_type} {length} {int(fin)}\n"
        return [header.encode("ascii")] + list(payload)

    def feed(self, pieces: List[Piece], on_frame) -> None:
        """Consume bytes; call ``on_frame(stream_id, type, payload, fin)``
        for each complete frame."""
        for piece in pieces:
            self._buffer.push(piece)
        while True:
            if self._pending_header is None:
                line = self._buffer.read_line()
                if line is None:
                    return
                parts = line.decode("ascii", "replace").split()
                if len(parts) != 5 or parts[0] != "MUX":
                    raise HttpParseError(f"bad mux frame header: {line!r}")
                try:
                    header = (int(parts[1]), parts[2], int(parts[3]),
                              parts[4] == "1")
                except ValueError:
                    raise HttpParseError(
                        f"bad mux frame header: {line!r}") from None
                self._pending_header = header
                self._payload = []
            stream_id, frame_type, length, fin = self._pending_header
            got = self._buffer.read_up_to(length - pieces_len(self._payload))
            self._payload.extend(got)
            if pieces_len(self._payload) < length:
                return
            payload = self._payload
            self._pending_header = None
            self._payload = []
            on_frame(stream_id, frame_type, payload, fin)


class MuxClientSession:
    """Client half: one multiplexed connection to one origin.

    Mirrors :class:`~repro.http.client.HttpClient`'s interface (``request``,
    ``busy``, ``closed``, ``on_error``) but never queues behind an
    outstanding response — streams are concurrent.
    """

    def __init__(
        self,
        sim: Simulator,
        transport: TransportHost,
        origin: Endpoint,
        tls: bool = False,
        tls_config: Optional[TlsConfig] = None,
    ) -> None:
        self.sim = sim
        self.origin = origin
        self.on_error: Optional[Callable[[Exception], None]] = None
        self.requests_sent = 0
        self.responses_received = 0
        self._codec = _FrameCodec()
        self._next_stream = 1
        self._streams: Dict[int, "_ClientStream"] = {}
        self._ready = False
        self._closed = False
        self._queue: Deque[tuple] = deque()

        self.conn = transport.connect(origin)
        self.conn.on_error = self._failed
        self.conn.on_remote_close = lambda: self._failed(
            ConnectionClosed(f"{origin} closed the mux connection"))
        if tls:
            self._tls = TlsClientSession(self.conn, tls_config)
            self._tls.on_established = self._became_ready
            self._tls.on_data = self._data
            self._sender = self._tls
        else:
            self._tls = None
            self.conn.on_established = self._became_ready
            self.conn.on_data = self._data
            self._sender = self.conn

    @property
    def ready(self) -> bool:
        """True once the transport is established."""
        return self._ready

    @property
    def busy(self) -> bool:
        """Streams outstanding? (A mux session is never head-of-line
        blocked, but callers may still want to know.)"""
        return bool(self._streams) or bool(self._queue)

    @property
    def closed(self) -> bool:
        """True once the connection has failed or been closed."""
        return self._closed

    @property
    def active_streams(self) -> int:
        """Streams with a response still outstanding."""
        return len(self._streams)

    def request(self, request: HttpRequest, on_response) -> None:
        """Open a new stream for ``request``; responses may arrive in any
        order relative to other streams."""
        if self._closed:
            raise ConnectionClosed(f"mux session to {self.origin} is closed")
        if not self._ready:
            self._queue.append((request, on_response))
            return
        self._send_request(request, on_response)

    def close(self) -> None:
        """Close the session (outstanding streams fail)."""
        if self._closed:
            return
        self._closed = True
        try:
            self.conn.close()
        except ConnectionClosed:
            pass
        self._fail_streams(ConnectionClosed("mux session closed"))

    # ------------------------------------------------------------------ #

    def _became_ready(self) -> None:
        self._ready = True
        while self._queue:
            request, on_response = self._queue.popleft()
            self._send_request(request, on_response)

    def _send_request(self, request: HttpRequest, on_response) -> None:
        stream_id = self._next_stream
        self._next_stream += 2  # odd ids, like SPDY clients
        self._streams[stream_id] = _ClientStream(request, on_response)
        payload = serialize_request(request)
        self._write(_FrameCodec.encode(stream_id, "H", payload, fin=True))
        self.requests_sent += 1

    def _write(self, pieces: List[Piece]) -> None:
        for piece in pieces:
            if isinstance(piece, int):
                self._sender.send_virtual(piece)
            else:
                self._sender.send(piece)

    def _data(self, pieces: List[Piece]) -> None:
        try:
            self._codec.feed(pieces, self._frame)
        except HttpParseError as exc:
            self._failed(exc)

    def _frame(self, stream_id: int, frame_type: str,
               payload: List[Piece], fin: bool) -> None:
        stream = self._streams.get(stream_id)
        if stream is None:
            return  # reset/unknown stream: ignore
        if frame_type == "H":
            stream.parser.feed(payload)
        elif frame_type == "D":
            stream.parser.feed(payload)
        if fin:
            messages = stream.parser.pop_messages()
            del self._streams[stream_id]
            self.responses_received += 1
            if messages:
                stream.on_response(messages[0])
            else:
                self._stream_failed(stream, HttpParseError(
                    "stream finished without a complete response"))

    def _stream_failed(self, stream: "_ClientStream", exc: Exception) -> None:
        if isinstance(stream.on_response, FailableCallback):
            stream.on_response.fail(exc)

    def _failed(self, exc: Exception) -> None:
        if self._closed:
            return
        self._closed = True
        self._fail_streams(exc)
        if self.on_error is not None:
            self.on_error(exc)

    def _fail_streams(self, exc: Exception) -> None:
        streams = list(self._streams.values())
        self._streams.clear()
        pending = list(self._queue)
        self._queue.clear()
        for stream in streams:
            self._stream_failed(stream, exc)
        for __, on_response in pending:
            if isinstance(on_response, FailableCallback):
                on_response.fail(exc)


class _ClientStream:
    __slots__ = ("request", "on_response", "parser")

    def __init__(self, request: HttpRequest, on_response) -> None:
        self.request = request
        self.on_response = on_response
        self.parser = HttpParser("response")
        self.parser.expect(request.method)


class MuxHttpServer:
    """Server half: accepts mux connections, answers via a handler.

    Interface matches :class:`~repro.http.server.HttpServer` (handler,
    processing_time, bounded workers), so ReplayShell can spawn either.
    """

    def __init__(
        self,
        sim: Simulator,
        transport: TransportHost,
        address,
        port: int,
        handler: Callable[[HttpRequest], HttpResponse],
        processing_time=None,
        tls: bool = False,
        tls_config: Optional[TlsConfig] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        from repro.http.server import WorkerPool

        self.sim = sim
        self.address = IPv4Address(address)
        self.port = port
        self.handler = handler
        self.processing_time = processing_time
        self.tls = tls
        self.tls_config = tls_config
        self.requests_served = 0
        self.connections_accepted = 0
        self._pool = WorkerPool(sim, max_workers)
        self._listener = transport.listen(self.address, port, self._accept)

    @property
    def peak_backlog(self) -> int:
        """Deepest worker-pool backlog observed."""
        return self._pool.peak_backlog

    def close(self) -> None:
        """Stop accepting connections."""
        self._listener.close()

    def _accept(self, conn: TcpConnection) -> None:
        self.connections_accepted += 1
        _MuxServerConnection(self, conn)


class _MuxServerConnection:
    """One accepted mux connection: streams in, interleaved frames out."""

    def __init__(self, server: MuxHttpServer, conn: TcpConnection) -> None:
        self.server = server
        self.conn = conn
        self._codec = _FrameCodec()
        self._parsers: Dict[int, HttpParser] = {}
        # Streams with body bytes left to write: round-robin queue of
        # [stream_id, remaining_pieces] entries.
        self._write_queue: Deque[list] = deque()
        self._pumping = False
        if server.tls:
            self._tls = TlsServerSession(conn, server.tls_config)
            self._tls.on_data = self._data
            self._sender = self._tls
        else:
            self._tls = None
            self._sender = conn
            conn.on_data = self._data
        conn.on_error = lambda exc: None
        conn.on_remote_close = lambda: None

    def _data(self, pieces: List[Piece]) -> None:
        try:
            self._codec.feed(pieces, self._frame)
        except HttpParseError:
            self.conn.abort()

    def _frame(self, stream_id: int, frame_type: str,
               payload: List[Piece], fin: bool) -> None:
        parser = self._parsers.get(stream_id)
        if parser is None:
            parser = HttpParser("request")
            self._parsers[stream_id] = parser
        parser.feed(payload)
        if fin:
            messages = parser.pop_messages()
            del self._parsers[stream_id]
            if not messages:
                return
            request = messages[0]
            delay = 0.0
            if self.server.processing_time is not None:
                delay = self.server.processing_time(request)
            self.server._pool.submit(
                lambda: self._respond(stream_id, request), delay)

    def _respond(self, stream_id: int, request: HttpRequest) -> None:
        if self.conn.state == "CLOSED":
            return
        response = self.server.handler(request)
        self.server.requests_served += 1
        # The headers block promises the body length; the body itself
        # follows in interleaved DATA frames on the same stream.
        headers = response.headers.copy()
        body_pieces = response.body.pieces
        if response.body.length:
            headers.set("Content-Length", str(response.body.length))
        head = serialize_response(HttpResponse(
            response.status, response.reason, headers, body=None,
            version=response.version,
        ))
        fin_now = not body_pieces
        self._write(_FrameCodec.encode(stream_id, "H", head, fin=fin_now))
        if body_pieces:
            self._write_queue.append([stream_id, list(body_pieces)])
            self._pump()

    def _write(self, pieces: List[Piece]) -> None:
        for piece in pieces:
            if isinstance(piece, int):
                self._sender.send_virtual(piece)
            else:
                self._sender.send(piece)

    def _pump(self) -> None:
        """Round-robin DATA frames across active streams, under TCP
        backpressure.

        Writing every queued frame at once would serialize streams in the
        unbounded TCP send buffer (head-of-line blocking — the very thing
        multiplexing exists to avoid); instead the pump keeps only a small
        window of frames in the send backlog and resumes when TCP reports
        the backlog drained.
        """
        if self._pumping:
            return
        self._pumping = True
        try:
            high_water = 4 * FRAME_CHUNK
            while self._write_queue:
                if self.conn.unsent_bytes >= high_water:
                    self.conn.notify_when_writable(
                        2 * FRAME_CHUNK, self._pump)
                    return
                entry = self._write_queue.popleft()
                stream_id, remaining = entry
                frame, rest = _take(remaining, FRAME_CHUNK)
                fin = not rest
                self._write(_FrameCodec.encode(stream_id, "D", frame, fin))
                if rest:
                    entry[1] = rest
                    self._write_queue.append(entry)
        finally:
            self._pumping = False


def _take(pieces: List[Piece], limit: int):
    """Split ``pieces`` into (first ``limit`` bytes, remainder)."""
    taken: List[Piece] = []
    count = 0
    index = 0
    while index < len(pieces) and count < limit:
        piece = pieces[index]
        length = piece_len(piece)
        if count + length <= limit:
            taken.append(piece)
            count += length
            index += 1
        else:
            cut = limit - count
            if isinstance(piece, int):
                taken.append(cut)
                pieces[index] = piece - cut
            else:
                taken.append(piece[:cut])
                pieces[index] = piece[cut:]
            count = limit
    return taken, pieces[index:]
