"""HTTP/1.x message serialization to stream pieces.

Serialization returns a list of stream pieces: one real-bytes block for the
start line and headers, followed by the body's pieces (real or virtual).
The byte count on the wire is identical either way, which is the invariant
that lets bodies stay virtual without affecting timing.
"""

from __future__ import annotations

from typing import List

from repro.http.message import Headers, HttpRequest, HttpResponse
from repro.http.status import BODILESS_STATUSES
from repro.transport.wire import Piece


def serialize_headers(first_line: str, headers: Headers) -> bytes:
    """Render the start line and header block, including the blank line."""
    lines = [first_line]
    lines.extend(f"{name}: {value}" for name, value in headers)
    lines.append("")
    lines.append("")
    return "\r\n".join(lines).encode("latin-1")


def _with_content_length(headers: Headers, body_length: int) -> Headers:
    """Ensure framing headers exist for a body of ``body_length`` bytes."""
    if "Transfer-Encoding" in headers:
        return headers
    if headers.get("Content-Length") is not None:
        return headers
    if body_length == 0:
        return headers
    fixed = headers.copy()
    fixed.set("Content-Length", str(body_length))
    return fixed


def serialize_request(request: HttpRequest) -> List[Piece]:
    """Serialize a request to stream pieces."""
    headers = _with_content_length(request.headers, request.body.length)
    first_line = f"{request.method} {request.uri} {request.version}"
    pieces: List[Piece] = [serialize_headers(first_line, headers)]
    pieces.extend(request.body.pieces)
    return pieces


def serialize_response(response: HttpResponse) -> List[Piece]:
    """Serialize a response to stream pieces.

    Responses that must not carry a body (1xx, 204, 304) are serialized
    without one regardless of the attached Body.
    """
    if response.status in BODILESS_STATUSES:
        first_line = (
            f"{response.version} {response.status} {response.reason}"
        )
        return [serialize_headers(first_line, response.headers)]
    headers = _with_content_length(response.headers, response.body.length)
    first_line = f"{response.version} {response.status} {response.reason}"
    pieces: List[Piece] = [serialize_headers(first_line, headers)]
    pieces.extend(response.body.pieces)
    return pieces


def message_wire_length(pieces: List[Piece]) -> int:
    """Total on-wire bytes of a serialized message."""
    total = 0
    for piece in pieces:
        total += len(piece) if isinstance(piece, (bytes, bytearray)) else piece
    return total
