"""HTTP status codes and reason phrases."""

from __future__ import annotations

_REASONS = {
    100: "Continue",
    101: "Switching Protocols",
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    206: "Partial Content",
    301: "Moved Permanently",
    302: "Found",
    303: "See Other",
    304: "Not Modified",
    307: "Temporary Redirect",
    308: "Permanent Redirect",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    410: "Gone",
    411: "Length Required",
    413: "Payload Too Large",
    414: "URI Too Long",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
    505: "HTTP Version Not Supported",
}


def reason_phrase(status: int) -> str:
    """The standard reason phrase for ``status`` ("Unknown" if unlisted)."""
    return _REASONS.get(status, "Unknown")


#: Statuses whose responses never carry a body (RFC 7230 §3.3.3).
BODILESS_STATUSES = frozenset({204, 304}) | frozenset(range(100, 200))
