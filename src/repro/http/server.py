"""An HTTP/1.1 server on the simulated transport.

One :class:`HttpServer` binds one (address, port) — ReplayShell spawns one
per recorded origin, exactly as Mahimahi spawns one Apache per distinct
IP/port pair. The handler is a callable ``handler(request) -> HttpResponse``;
per-request processing time (the Apache+CGI cost in the paper's setup)
comes from an optional ``processing_time(request) -> seconds`` callable so
machine profiles can scale it.

A server's request processing runs on a bounded worker pool
(``max_workers``): at most that many requests are "in the CPU" at once,
the rest queue FIFO across connections. This is the contention that makes
single-server replay slow — one Apache handling a hundred parallel
requests queues where twenty Apaches would not — the mechanism behind the
paper's Table 2 ablation.

Persistent connections are the default; ``Connection: close`` on a request
closes after the response, like Apache's keep-alive handling. Pipelined
requests are answered in order.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro.http.message import Headers, HttpRequest, HttpResponse
from repro.http.parser import HttpParser
from repro.http.serialize import serialize_response
from repro.net.address import IPv4Address
from repro.sim.simulator import Simulator
from repro.transport.host import TransportHost
from repro.transport.tcp import TcpConnection
from repro.transport.tls import TlsConfig, TlsServerSession

Handler = Callable[[HttpRequest], HttpResponse]
ProcessingTime = Callable[[HttpRequest], float]


def _split_pieces(pieces, limit: int):
    """Split a serialized-piece list at ``limit`` bytes.

    Pieces are real bytes or virtual byte counts (ints); both split
    exactly, so the prefix carries precisely ``limit`` on-wire bytes
    (or everything, if shorter).
    """
    sent, rest = [], []
    budget = limit
    for piece in pieces:
        size = len(piece) if isinstance(piece, (bytes, bytearray)) else piece
        if budget <= 0:
            rest.append(piece)
        elif size <= budget:
            sent.append(piece)
            budget -= size
        else:
            if isinstance(piece, (bytes, bytearray)):
                sent.append(piece[:budget])
                rest.append(piece[budget:])
            else:
                sent.append(budget)
                rest.append(size - budget)
            budget = 0
    return sent, rest


class WorkerPool:
    """Bounded-concurrency request processing (the Apache+CGI model).

    ``submit(work, delay)`` runs ``work`` after ``delay`` seconds of
    processing, with at most ``max_workers`` jobs in service; excess jobs
    queue FIFO. ``max_workers=None`` means unbounded.

    With an observability registry attached to ``sim`` and an
    ``obs_path``, the pool records ``<path>.occupancy`` and
    ``<path>.backlog`` step series at every submit/finish — the
    server-contention signal behind the paper's Table 2 ablation — plus a
    ``<path>.latency`` histogram of per-request sojourn times (queue wait
    + processing), the server-side tail-latency signal the load runner
    folds into its capacity curves.
    """

    def __init__(
        self,
        sim: Simulator,
        max_workers: Optional[int],
        obs_path: Optional[str] = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers!r}")
        self.sim = sim
        self.max_workers = max_workers
        self.peak_backlog = 0
        self._active_workers = 0
        self._backlog: Deque = deque()
        registry = sim.metrics
        if registry is not None and obs_path is not None:
            self._obs_occupancy = registry.timeseries(f"{obs_path}.occupancy")
            self._obs_backlog = registry.timeseries(f"{obs_path}.backlog")
            self._obs_latency = registry.histogram(f"{obs_path}.latency")
        else:
            self._obs_occupancy = None
            self._obs_backlog = None
            self._obs_latency = None

    def _obs_record(self) -> None:
        if self._obs_occupancy is not None:
            now = self.sim.now
            self._obs_occupancy.record(now, self._active_workers)
            self._obs_backlog.record(now, len(self._backlog))

    def submit(self, work: Callable[[], None], delay: float) -> None:
        """Run ``work`` after ``delay`` of processing, respecting the
        worker limit (excess jobs queue FIFO)."""
        if (self.max_workers is not None
                and self._active_workers >= self.max_workers):
            self._backlog.append((work, delay, self.sim.now))
            if len(self._backlog) > self.peak_backlog:
                self.peak_backlog = len(self._backlog)
            self._obs_record()
            return
        self._start_worker(work, delay, self.sim.now)

    def _start_worker(
        self, work: Callable[[], None], delay: float, submitted: float
    ) -> None:
        self._active_workers += 1
        self._obs_record()
        if delay > 0.0:
            self.sim.schedule(delay, self._finish_worker, work, submitted)
        else:
            self._finish_worker(work, submitted)

    def _finish_worker(self, work: Callable[[], None], submitted: float) -> None:
        if self._obs_latency is not None:
            self._obs_latency.observe(self.sim.now - submitted)
        try:
            work()
        finally:
            self._active_workers -= 1
            self._obs_record()
            if self._backlog:
                next_work, next_delay, next_submitted = self._backlog.popleft()
                self._start_worker(next_work, next_delay, next_submitted)


class HttpServer:
    """An HTTP server bound to one (address, port).

    Args:
        sim: the simulator.
        transport: the namespace's transport host.
        address: local address to bind (must be local to the namespace).
        port: TCP port.
        handler: maps a request to a response.
        processing_time: seconds of simulated server compute per request
            (default: none). Called per request, so it can depend on the
            resource or draw jitter.
        tls: terminate a (cost-model) TLS session on each connection.
        tls_config: handshake sizes when ``tls`` is set.
        max_workers: concurrent request-processing slots (None =
            unbounded). Requests beyond this queue FIFO server-wide.
    """

    def __init__(
        self,
        sim: Simulator,
        transport: TransportHost,
        address,
        port: int,
        handler: Handler,
        processing_time: Optional[ProcessingTime] = None,
        tls: bool = False,
        tls_config: Optional[TlsConfig] = None,
        max_workers: Optional[int] = None,
        fault_injector=None,
    ) -> None:
        self.sim = sim
        self.transport = transport
        self.address = IPv4Address(address)
        self.port = port
        self.handler = handler
        self.processing_time = processing_time
        self.tls = tls
        self.tls_config = tls_config
        self.max_workers = max_workers
        #: Optional :class:`repro.chaos.inject.ServerFaultInjector`;
        #: assignable after construction (``ShellStack.add_chaos`` wires
        #: one shared injector across all of a replay's servers).
        self.fault_injector = fault_injector
        self.requests_served = 0
        self.connections_accepted = 0
        self.faults_injected = 0
        self.pool = WorkerPool(
            sim, max_workers,
            obs_path=f"http.server.{self.address}:{port}",
        )
        self._listener = transport.listen(
            self.address, port, self._accept
        )

    @property
    def peak_backlog(self) -> int:
        """Deepest worker-pool backlog observed."""
        return self.pool.peak_backlog

    def submit(self, work: Callable[[], None], delay: float) -> None:
        """Run ``work`` on the worker pool (see :class:`WorkerPool`)."""
        self.pool.submit(work, delay)

    def close(self) -> None:
        """Stop accepting connections."""
        self._listener.close()

    def _accept(self, conn: TcpConnection) -> None:
        self.connections_accepted += 1
        _ServerConnection(self, conn)

    def __repr__(self) -> str:
        return (
            f"<HttpServer {self.address}:{self.port} "
            f"served={self.requests_served}>"
        )


class _ServerConnection:
    """Per-connection request loop."""

    def __init__(self, server: HttpServer, conn: TcpConnection) -> None:
        self.server = server
        self.conn = conn
        self.parser = HttpParser("request")
        self.parser.on_message = self._request_arrived
        # Responses must go out in request order even if processing times
        # differ; each entry is [request, response-or-None, close-after].
        self._pending: Deque[list] = deque()
        self._closing = False
        self._stalled = False
        if server.tls:
            self._tls = TlsServerSession(conn, server.tls_config)
            self._tls.on_data = self._data
            self._sender = self._tls
        else:
            self._tls = None
            self._sender = conn
            conn.on_data = self._data
        conn.on_remote_close = self._remote_closed
        conn.on_error = lambda exc: None

    def _data(self, pieces) -> None:
        self.parser.feed(pieces)

    def _request_arrived(self, request: HttpRequest) -> None:
        close_after = (
            (request.headers.get("Connection") or "").lower() == "close"
            or request.version == "HTTP/1.0"
        )
        # Entry: [request, response-or-None, close-after, fault-or-None].
        entry = [request, None, close_after, None]
        self._pending.append(entry)
        delay = 0.0
        if self.server.processing_time is not None:
            delay = self.server.processing_time(request)
        self.server.submit(lambda: self._process(entry), delay)

    def _process(self, entry: list) -> None:
        request = entry[0]
        injector = self.server.fault_injector
        fault = injector.fault_for(request) if injector is not None else None
        if fault is not None:
            self.server.faults_injected += 1
            if fault.kind == "error-burst":
                # The backend is failing, not slow: answer for it without
                # invoking the handler, like a tripped circuit breaker.
                entry[1] = HttpResponse(
                    fault.status,
                    headers=Headers([("Content-Length", "0")]),
                )
                self._flush()
                return
            entry[3] = fault
        entry[1] = self.server.handler(request)
        self._flush()

    def _flush(self) -> None:
        while (not self._stalled and self._pending
                and self._pending[0][1] is not None):
            entry = self._pending[0]
            __, response, close_after, fault = entry
            if self.conn.state == "CLOSED":
                return
            self._pending.popleft()
            if fault is not None:
                self._apply_fault(response, close_after, fault)
                return
            self._send_pieces(serialize_response(response))
            self.server.requests_served += 1
            if close_after:
                self._closing = True
                self.conn.close()
                return

    def _send_pieces(self, pieces) -> None:
        for piece in pieces:
            if isinstance(piece, int):
                self._sender.send_virtual(piece)
            else:
                self._sender.send(piece)

    # ------------------------------------------------------------------ #
    # fault injection (repro.chaos server clauses)

    def _apply_fault(self, response, close_after: bool, fault) -> None:
        """Serve ``response`` under a stall/truncate/reset clause.

        The serialized response is split after the headers plus
        ``fault.after_bytes`` of body; what happens to the remainder
        depends on the clause kind (see ServerFaultClause).
        """
        pieces = serialize_response(response)
        head, body = pieces[:1], pieces[1:]
        sent_body, rest = _split_pieces(body, fault.after_bytes)
        self._send_pieces(head)
        self._send_pieces(sent_body)
        if fault.kind == "reset":
            self._closing = True
            self.conn.abort()
            return
        if fault.kind == "truncate":
            # Headers advertised the full Content-Length; closing early
            # gives the client a short read mid-body.
            self._closing = True
            self.conn.close()
            return
        # "stall": the worker wedges for fault.stall seconds, then the
        # rest of the response (and the connection's queue) proceeds.
        self._stalled = True
        self.server.sim.schedule(
            fault.stall, self._resume_stalled, rest, close_after
        )

    def _resume_stalled(self, rest, close_after: bool) -> None:
        self._stalled = False
        if self.conn.state == "CLOSED":
            return
        self._send_pieces(rest)
        self.server.requests_served += 1
        if close_after:
            self._closing = True
            self.conn.close()
            return
        self._flush()

    def _remote_closed(self) -> None:
        # Client half-closed; answer what is pending, then close our side.
        if not self._pending and not self._closing:
            self._closing = True
            try:
                self.conn.close()
            except Exception:
                pass
