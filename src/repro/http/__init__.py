"""HTTP/1.1: messages, incremental parsing, client and server.

This is the protocol Mahimahi records and replays. Headers are real bytes
on the wire (they must round-trip through recording, matching, and replay);
bodies are virtual bytes by default (length-only — content does not affect
timing). The parser is incremental and symmetric: RecordShell's proxy uses
it to reconstruct request/response pairs from a byte stream, exactly as
Mahimahi embeds an HTTP parser in its proxy.
"""

from repro.http.body import Body
from repro.http.client import HttpClient
from repro.http.message import Headers, HttpRequest, HttpResponse
from repro.http.parser import HttpParser
from repro.http.serialize import serialize_request, serialize_response
from repro.http.server import HttpServer
from repro.http.status import reason_phrase

__all__ = [
    "Body",
    "Headers",
    "HttpClient",
    "HttpParser",
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
    "reason_phrase",
    "serialize_request",
    "serialize_response",
]
