"""Message bodies: real bytes or counted virtual bytes.

A :class:`Body` is what an HTTP message carries. Bodies created from real
``bytes`` keep their content (needed for recorded HTML whose structure the
browser model scans); virtual bodies know only their length, which is all
the transport needs to reproduce timing. The distinction never leaks into
timing — both serialize to the same number of on-wire bytes.
"""

from __future__ import annotations

from typing import List

from repro.transport.wire import Piece, piece_len


class Body:
    """An HTTP message body.

    Create with :meth:`from_bytes` (content preserved), :meth:`virtual`
    (length-only), or :meth:`empty`.
    """

    __slots__ = ("_pieces", "_length")

    def __init__(self, pieces: List[Piece]) -> None:
        self._pieces = [p for p in pieces if piece_len(p) > 0]
        self._length = sum(piece_len(p) for p in self._pieces)

    @classmethod
    def empty(cls) -> "Body":
        """A zero-length body."""
        return cls([])

    @classmethod
    def from_bytes(cls, data: bytes) -> "Body":
        """A body with real content."""
        return cls([data])

    @classmethod
    def virtual(cls, length: int) -> "Body":
        """A content-free body of ``length`` bytes."""
        if length < 0:
            raise ValueError(f"body length must be >= 0, got {length!r}")
        return cls([length])

    @property
    def length(self) -> int:
        """Total byte length."""
        return self._length

    @property
    def pieces(self) -> List[Piece]:
        """The underlying stream pieces (copy)."""
        return list(self._pieces)

    @property
    def is_fully_real(self) -> bool:
        """True when every byte of content is available."""
        return all(isinstance(p, (bytes, bytearray)) for p in self._pieces)

    def as_bytes(self) -> bytes:
        """Materialize the content.

        Raises:
            ValueError: if any part of the body is virtual.
        """
        if not self.is_fully_real:
            raise ValueError("body contains virtual bytes; no content to return")
        return b"".join(bytes(p) for p in self._pieces)

    def __len__(self) -> int:
        return self._length

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Body):
            return NotImplemented
        if self._length != other._length:
            return False
        if self.is_fully_real and other.is_fully_real:
            return self.as_bytes() == other.as_bytes()
        # Virtual bodies compare by length alone.
        return True

    def __repr__(self) -> str:
        kind = "real" if self.is_fully_real else "virtual"
        return f"<Body {self._length}B {kind}>"
