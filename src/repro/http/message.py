"""HTTP message model: headers, requests, responses.

:class:`Headers` is an ordered, case-insensitive multimap, because recorded
sites round-trip through serialization and the matcher compares header
values (``Host`` especially). Requests and responses are plain data objects;
all wire concerns live in :mod:`repro.http.serialize` and
:mod:`repro.http.parser`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from repro.errors import HttpProtocolError
from repro.http.body import Body


class Headers:
    """Ordered, case-insensitive HTTP header multimap.

    Iteration yields (name, value) pairs in insertion order with original
    name casing preserved; lookups are case-insensitive.
    """

    __slots__ = ("_items",)

    def __init__(self, items: Optional[Iterable[Tuple[str, str]]] = None) -> None:
        self._items: List[Tuple[str, str]] = []
        if items is not None:
            for name, value in items:
                self.add(name, value)

    def add(self, name: str, value: str) -> None:
        """Append a header field (duplicates allowed, order kept)."""
        if not name or any(c in name for c in ":\r\n"):
            raise HttpProtocolError(f"invalid header name: {name!r}")
        if "\r" in value or "\n" in value:
            raise HttpProtocolError(f"invalid header value: {value!r}")
        self._items.append((name, value))

    def set(self, name: str, value: str) -> None:
        """Replace all fields named ``name`` with a single value."""
        self.remove(name)
        self.add(name, value)

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """First value for ``name`` (case-insensitive), or ``default``."""
        lowered = name.lower()
        for item_name, value in self._items:
            if item_name.lower() == lowered:
                return value
        return default

    def get_all(self, name: str) -> List[str]:
        """All values for ``name`` in order."""
        lowered = name.lower()
        return [v for n, v in self._items if n.lower() == lowered]

    def remove(self, name: str) -> None:
        """Drop every field named ``name``; no-op if absent."""
        lowered = name.lower()
        self._items = [(n, v) for n, v in self._items if n.lower() != lowered]

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Headers):
            return NotImplemented
        def normalize(items):
            return [(n.lower(), v) for n, v in items]
        return normalize(self._items) == normalize(other._items)

    def copy(self) -> "Headers":
        """A detached copy."""
        return Headers(self._items)

    def __repr__(self) -> str:
        return f"Headers({self._items!r})"


class HttpRequest:
    """An HTTP/1.x request."""

    __slots__ = ("method", "uri", "version", "headers", "body")

    def __init__(
        self,
        method: str,
        uri: str,
        headers: Optional[Headers] = None,
        body: Optional[Body] = None,
        version: str = "HTTP/1.1",
    ) -> None:
        self.method = method
        self.uri = uri
        self.version = version
        self.headers = headers if headers is not None else Headers()
        self.body = body if body is not None else Body.empty()

    @property
    def host(self) -> Optional[str]:
        """The Host header value (without port), or None."""
        host = self.headers.get("Host")
        if host is None:
            return None
        return host.split(":", 1)[0]

    @property
    def host_port(self) -> Optional[int]:
        """Port from the Host header, if one is present."""
        host = self.headers.get("Host")
        if host is None or ":" not in host:
            return None
        port_text = host.split(":", 1)[1]
        return int(port_text) if port_text.isdigit() else None

    @property
    def path(self) -> str:
        """The URI without its query string."""
        return self.uri.split("?", 1)[0]

    @property
    def query(self) -> str:
        """The query string (no leading '?'), empty if none."""
        parts = self.uri.split("?", 1)
        return parts[1] if len(parts) == 2 else ""

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HttpRequest):
            return NotImplemented
        return (
            self.method == other.method
            and self.uri == other.uri
            and self.version == other.version
            and self.headers == other.headers
            and self.body == other.body
        )

    def __repr__(self) -> str:
        return f"<HttpRequest {self.method} {self.uri} {self.version}>"


class HttpResponse:
    """An HTTP/1.x response."""

    __slots__ = ("status", "reason", "version", "headers", "body")

    def __init__(
        self,
        status: int,
        reason: Optional[str] = None,
        headers: Optional[Headers] = None,
        body: Optional[Body] = None,
        version: str = "HTTP/1.1",
    ) -> None:
        from repro.http.status import reason_phrase

        self.status = status
        self.reason = reason if reason is not None else reason_phrase(status)
        self.version = version
        self.headers = headers if headers is not None else Headers()
        self.body = body if body is not None else Body.empty()

    @property
    def content_length(self) -> Optional[int]:
        """Parsed Content-Length header, or None."""
        value = self.headers.get("Content-Length")
        if value is None or not value.strip().isdigit():
            return None
        return int(value.strip())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HttpResponse):
            return NotImplemented
        return (
            self.status == other.status
            and self.version == other.version
            and self.headers == other.headers
            and self.body == other.body
        )

    def __repr__(self) -> str:
        return (
            f"<HttpResponse {self.status} {self.reason} "
            f"body={self.body.length}B>"
        )
