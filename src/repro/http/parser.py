"""Incremental HTTP/1.x parser over mixed real/virtual streams.

The parser consumes stream pieces as the transport delivers them and emits
complete :class:`~repro.http.message.HttpRequest` /
:class:`~repro.http.message.HttpResponse` objects. Header sections must be
real bytes (our serializer guarantees that); bodies may be any mix — the
parser only counts virtual bytes through body regions.

Framing supported: Content-Length, chunked transfer encoding, bodiless
statuses, HEAD responses, and close-delimited bodies (via :meth:`finish`).
RecordShell's proxy runs one request parser and one response parser per
intercepted connection, pairing their outputs.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.errors import HttpParseError
from repro.http.body import Body
from repro.http.message import Headers, HttpRequest, HttpResponse
from repro.http.status import BODILESS_STATUSES
from repro.transport.wire import Piece, piece_len

_MAX_HEADER_BYTES = 64 * 1024

_START = "start-line"
_HEADERS = "headers"
_BODY_CL = "body-content-length"
_CHUNK_SIZE = "chunk-size"
_CHUNK_DATA = "chunk-data"
_CHUNK_CRLF = "chunk-crlf"
_TRAILERS = "trailers"
_BODY_CLOSE = "body-close-delimited"


class _PieceBuffer:
    """FIFO of stream pieces with line- and byte-oriented reads."""

    def __init__(self) -> None:
        self._pieces: Deque[Piece] = deque()
        self._real_head = bytearray()

    def push(self, piece: Piece) -> None:
        if piece_len(piece) == 0:
            return
        self._pieces.append(piece)

    def _fill_real_head(self) -> None:
        # Move leading real pieces into the line-scan buffer.
        while self._pieces and isinstance(self._pieces[0], (bytes, bytearray)):
            self._real_head.extend(self._pieces.popleft())

    def read_line(self) -> Optional[bytes]:
        """One CRLF- (or LF-) terminated line, without the terminator.

        Returns None if no complete line is buffered yet.

        Raises:
            HttpParseError: if virtual bytes appear where a line is needed,
                or the pending header text exceeds the size limit.
        """
        self._fill_real_head()
        index = self._real_head.find(b"\n")
        if index == -1:
            if self._pieces:
                raise HttpParseError(
                    "virtual bytes encountered while parsing header text"
                )
            if len(self._real_head) > _MAX_HEADER_BYTES:
                raise HttpParseError("header section exceeds 64 KiB")
            return None
        line = bytes(self._real_head[:index])
        del self._real_head[: index + 1]
        return line.rstrip(b"\r")

    def read_up_to(self, limit: int) -> List[Piece]:
        """Consume and return at most ``limit`` buffered bytes as pieces."""
        out: List[Piece] = []
        remaining = limit
        if self._real_head and remaining > 0:
            take = min(len(self._real_head), remaining)
            out.append(bytes(self._real_head[:take]))
            del self._real_head[:take]
            remaining -= take
        while remaining > 0 and self._pieces:
            piece = self._pieces.popleft()
            length = piece_len(piece)
            if length <= remaining:
                out.append(piece)
                remaining -= length
            else:
                if isinstance(piece, int):
                    out.append(remaining)
                    self._pieces.appendleft(piece - remaining)
                else:
                    out.append(bytes(piece[:remaining]))
                    self._pieces.appendleft(piece[remaining:])
                remaining = 0
        return out

    @property
    def buffered(self) -> int:
        """Total bytes currently buffered."""
        return len(self._real_head) + sum(piece_len(p) for p in self._pieces)


class HttpParser:
    """Incremental parser for a one-direction HTTP/1.x stream.

    Args:
        kind: "request" or "response".

    Feed transport deliveries with :meth:`feed`; completed messages queue up
    in :attr:`messages` (or use the ``on_message`` callback attribute).
    For a response parser, push the method of each outstanding request with
    :meth:`expect` so HEAD responses frame correctly.
    """

    def __init__(self, kind: str) -> None:
        if kind not in ("request", "response"):
            raise ValueError(f"kind must be 'request' or 'response': {kind!r}")
        self.kind = kind
        self.messages: List = []
        self.on_message = None
        self._buffer = _PieceBuffer()
        self._state = _START
        self._expected_methods: Deque[str] = deque()
        self._reset_message_state()
        self._finished = False

    def _reset_message_state(self) -> None:
        self._start_line: Optional[str] = None
        self._headers = Headers()
        self._body_pieces: List[Piece] = []
        self._body_remaining = 0
        self._current_method = "GET"

    # ------------------------------------------------------------------ #
    # public API

    def expect(self, method: str) -> None:
        """(Response parsers) note the method of an outstanding request."""
        self._expected_methods.append(method.upper())

    def feed(self, pieces: List[Piece]) -> None:
        """Consume newly arrived stream pieces; emits completed messages."""
        if self._finished:
            raise HttpParseError("feed() after finish()")
        for piece in pieces:
            self._buffer.push(piece)
        self._advance()

    def finish(self) -> None:
        """Signal end-of-stream (connection closed by the peer).

        Completes a close-delimited response body; raises if the stream
        ends mid-message otherwise.
        """
        if self._finished:
            return
        self._finished = True
        if self._state == _BODY_CLOSE:
            self._emit()
            self._state = _START
            return
        if self._state != _START or self._buffer.buffered:
            raise HttpParseError("stream ended mid-message")

    # ------------------------------------------------------------------ #
    # state machine

    def _advance(self) -> None:
        progressing = True
        while progressing:
            progressing = False
            if self._state == _START:
                line = self._buffer.read_line()
                if line is None:
                    return
                if not line:
                    # Tolerate stray blank lines between messages.
                    progressing = True
                    continue
                self._start_line = line.decode("latin-1")
                self._state = _HEADERS
                progressing = True
            elif self._state == _HEADERS:
                line = self._buffer.read_line()
                if line is None:
                    return
                if line:
                    self._header_line(line)
                else:
                    self._headers_complete()
                progressing = True
            elif self._state == _BODY_CL:
                progressing = self._consume_body()
            elif self._state == _BODY_CLOSE:
                self._body_pieces.extend(
                    self._buffer.read_up_to(self._buffer.buffered)
                )
                return
            elif self._state == _CHUNK_SIZE:
                line = self._buffer.read_line()
                if line is None:
                    return
                self._chunk_size_line(line)
                progressing = True
            elif self._state == _CHUNK_DATA:
                progressing = self._consume_chunk_data()
            elif self._state == _CHUNK_CRLF:
                line = self._buffer.read_line()
                if line is None:
                    return
                if line:
                    raise HttpParseError("missing CRLF after chunk data")
                self._state = _CHUNK_SIZE
                progressing = True
            elif self._state == _TRAILERS:
                line = self._buffer.read_line()
                if line is None:
                    return
                if not line:
                    self._emit()
                    self._state = _START
                progressing = True

    def _header_line(self, line: bytes) -> None:
        text = line.decode("latin-1")
        if ":" not in text:
            raise HttpParseError(f"malformed header line: {text!r}")
        name, __, value = text.partition(":")
        if not name.strip() or name != name.strip():
            raise HttpParseError(f"malformed header name: {name!r}")
        self._headers.add(name, value.strip())

    def _headers_complete(self) -> None:
        if self.kind == "response":
            self._current_method = (
                self._expected_methods.popleft()
                if self._expected_methods else "GET"
            )
        framing = self._body_framing()
        if framing == "none":
            self._emit()
            self._state = _START
        elif framing == "chunked":
            self._state = _CHUNK_SIZE
        elif framing == "close":
            self._state = _BODY_CLOSE
        else:
            self._body_remaining = int(framing)
            if self._body_remaining == 0:
                self._emit()
                self._state = _START
            else:
                self._state = _BODY_CL

    def _body_framing(self) -> str:
        """Decide body framing per RFC 7230 §3.3.3 (simplified)."""
        if self.kind == "response":
            status = self._parse_status_line()[1]
            if status in BODILESS_STATUSES or self._current_method == "HEAD":
                return "none"
        te = self._headers.get("Transfer-Encoding")
        if te is not None and "chunked" in te.lower():
            return "chunked"
        cl = self._headers.get("Content-Length")
        if cl is not None:
            cl = cl.strip()
            if not cl.isdigit():
                raise HttpParseError(f"bad Content-Length: {cl!r}")
            return cl
        if self.kind == "request":
            return "none"
        return "close"

    def _consume_body(self) -> bool:
        got = self._buffer.read_up_to(self._body_remaining)
        if not got:
            return False
        self._body_pieces.extend(got)
        self._body_remaining -= sum(piece_len(p) for p in got)
        if self._body_remaining == 0:
            self._emit()
            self._state = _START
            return True
        return False

    def _chunk_size_line(self, line: bytes) -> None:
        text = line.decode("latin-1").split(";", 1)[0].strip()
        try:
            size = int(text, 16)
        except ValueError:
            raise HttpParseError(f"bad chunk size: {text!r}") from None
        if size == 0:
            self._state = _TRAILERS
        else:
            self._body_remaining = size
            self._state = _CHUNK_DATA

    def _consume_chunk_data(self) -> bool:
        got = self._buffer.read_up_to(self._body_remaining)
        if not got:
            return False
        self._body_pieces.extend(got)
        self._body_remaining -= sum(piece_len(p) for p in got)
        if self._body_remaining == 0:
            self._state = _CHUNK_CRLF
            return True
        return False

    # ------------------------------------------------------------------ #
    # emission

    def _parse_status_line(self):
        assert self._start_line is not None
        parts = self._start_line.split(" ", 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise HttpParseError(f"malformed status line: {self._start_line!r}")
        version = parts[0]
        status = int(parts[1])
        reason = parts[2] if len(parts) == 3 else ""
        return version, status, reason

    def _emit(self) -> None:
        body = Body(self._body_pieces)
        if self.kind == "request":
            parts = (self._start_line or "").split(" ")
            if len(parts) != 3:
                raise HttpParseError(
                    f"malformed request line: {self._start_line!r}"
                )
            method, uri, version = parts
            message = HttpRequest(method, uri, self._headers, body, version)
        else:
            version, status, reason = self._parse_status_line()
            message = HttpResponse(status, reason, self._headers, body, version)
        self._reset_message_state()
        self.messages.append(message)
        if self.on_message is not None:
            self.on_message(message)

    def pop_messages(self) -> List:
        """Drain and return the completed-message queue."""
        out = self.messages
        self.messages = []
        return out
