"""Exception hierarchy for the Mahimahi reproduction.

Every error raised intentionally by this package derives from
:class:`ReproError`, so callers can catch one base class at an API boundary.
The subtree mirrors the package layout: simulation-kernel errors, network
substrate errors, transport errors, HTTP errors, and record/replay errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SimulationError(ReproError):
    """Errors from the discrete-event kernel (bad schedule, stopped sim)."""


class ClockError(SimulationError):
    """An operation would move the virtual clock backwards."""


class NetworkError(ReproError):
    """Base class for network-substrate errors."""


class AddressError(NetworkError):
    """Malformed or unparseable IPv4 address / CIDR prefix."""


class AddressPoolExhausted(NetworkError):
    """The address allocator ran out of free subnets or addresses."""


class RoutingError(NetworkError):
    """No route to the destination from this namespace."""


class InterfaceError(NetworkError):
    """Interface misconfiguration (duplicate name, not attached, down)."""


class NamespaceError(NetworkError):
    """Namespace misconfiguration or cross-namespace violation."""


class TransportError(ReproError):
    """Base class for transport-layer errors."""


class ConnectionReset(TransportError):
    """The peer reset the connection."""


class ConnectionClosed(TransportError):
    """Operation on a connection that is already closed."""


class PortInUse(TransportError):
    """bind() asked for an (ip, port) pair already bound in the namespace."""


class TimeoutError_(TransportError):
    """A transport-level timeout fired (connect or idle timeout)."""


class HttpError(ReproError):
    """Base class for HTTP errors."""


class HttpParseError(HttpError):
    """The byte stream is not a well-formed HTTP/1.x message."""


class HttpProtocolError(HttpError):
    """Semantically invalid HTTP usage (e.g. body on a bodiless response)."""


class HttpTransferError(HttpError):
    """A transfer died mid-response.

    Structured so the failure taxonomy (:mod:`repro.measure.robustness`)
    can classify it: carries the failing URL and the byte offset into the
    response at which the transfer broke.

    Args:
        message: human-readable description.
        url: the URL whose transfer failed (None when unknown).
        bytes_received: response bytes received before the failure.
    """

    def __init__(
        self, message: str, url: "str | None" = None, bytes_received: int = 0
    ) -> None:
        super().__init__(message)
        self.url = url
        self.bytes_received = bytes_received

    def __reduce__(self):
        # Default Exception pickling restores only ``args``; these errors
        # ride back from ParallelRunner workers inside PageLoadResults,
        # so the structured fields must survive the round trip.
        return (type(self), (self.args[0], self.url, self.bytes_received))

    def __str__(self) -> str:
        parts = [self.args[0]]
        if self.url is not None:
            parts.append(f"url={self.url}")
        parts.append(f"at byte {self.bytes_received}")
        return f"{parts[0]} ({', '.join(parts[1:])})"


class ResetMidTransfer(HttpTransferError):
    """The server reset the connection while a response was in flight."""


class TruncatedBody(HttpTransferError):
    """The connection closed before the response body was complete."""


class DnsError(ReproError):
    """DNS resolution failure (NXDOMAIN, malformed message)."""


class RecordError(ReproError):
    """Base class for record-store errors."""


class StoreFormatError(RecordError):
    """A recorded-site directory or pair file does not match the format."""


class StoreIntegrityError(StoreFormatError):
    """A recorded pair file is damaged (checksum/size mismatch, truncated).

    A subclass of :class:`StoreFormatError` so strict loaders that catch
    format errors also catch integrity failures; ``mm-fsck`` distinguishes
    the two when classifying damage.
    """


class BlobMissingError(StoreIntegrityError):
    """A content-addressed site references a blob the CAS does not hold.

    The dangling-reference case: the pair file is intact but its body
    cannot be materialised. ``mm-fsck`` reports it as ``missing`` damage
    against the blob path.
    """


class BlobCorruptError(StoreIntegrityError):
    """A CAS blob's bytes no longer hash to its own address.

    Content addressing makes this check free of metadata: the file name
    *is* the expected BLAKE2 digest, so bitrot is detectable from the
    blob alone.
    """


class JournalError(ReproError):
    """A trial journal cannot be read, or belongs to a different sweep.

    Raised by :class:`repro.measure.journal.TrialJournal` when a resume is
    attempted against a journal whose run key does not match the requested
    sweep configuration, or whose header is unreadable.
    """


class FabricError(ReproError):
    """Campaign-fabric failure (``repro.fabric``): a backend could not
    spawn a worker, a campaign lost trials past its retry budget, or a
    coordinator was misconfigured."""


class ProtocolError(FabricError):
    """The fabric wire protocol saw a malformed frame (bad magic, bad
    checksum, truncated length prefix, or an out-of-sequence message)."""


class ProtocolTimeout(ProtocolError):
    """A fabric peer missed a read or write deadline.

    A subclass of :class:`ProtocolError` so every existing broken-stream
    path (coordinator reader threads, worker conversations) treats a
    silent half-open connection exactly like a torn one: the peer is
    retired and its trials reassigned, never waited on forever.
    """


class NoMatchingResponse(RecordError):
    """The replay matcher found no recorded response for a request."""


class TraceError(ReproError):
    """Malformed packet-delivery trace file."""


class ShellError(ReproError):
    """Shell construction or composition error."""


class ChaosError(ReproError):
    """Malformed fault plan or fault clause (``repro.chaos``)."""


class BrowserError(ReproError):
    """Page-load failure inside the browser model."""


class CorpusError(ReproError):
    """Corpus generation or loading failure."""


class AnalysisError(ReproError):
    """Base class for determinism-analysis errors (``repro.analysis``)."""


class DeterminismError(AnalysisError):
    """Two replays of the same seeded scenario diverged.

    Raised by :func:`repro.analysis.sanitizer.check_determinism`; the
    message pinpoints the first divergent event with both runs' context.
    """
