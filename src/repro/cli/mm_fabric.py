"""``mm-fabric`` — run sweeps across the measurement fabric.

Subcommands::

    mm-fabric run --factory MOD:ATTR --trials N [--kwargs JSON]
                  [--shards K] [--backend local|subprocess|remote]
                  [--host H]... [--ssh CMD] [--timeout S] [--retries R]
                  [--worker-retries R] [--journal PATH] [--run-key KEY]
                  [--capture-digest] [--progress-deadline S]
                  [--heartbeat S] [--io-deadline S] [--spawn-retries R]
                  [--quarantine-after K] [--speculate]
                  [--speculate-copies N] [--artifact PATH] [--json]
    mm-fabric worker
    mm-fabric ship SRC DEST [--json]

``run`` shards the sweep's trial indices across workers and merges the
streamed outcomes by trial index — the output (sample, combined
event-stream digest, journal) is byte-identical to a serial
``run_supervised`` of the same sweep, for any ``--shards`` and any
``--backend``. ``--factory`` names a scenario-factory *builder*
(e.g. ``repro.fabric.scenarios:replay_smoke``); ``--kwargs`` is a JSON
object of its arguments.

Robustness knobs: ``--heartbeat`` turns on worker liveness beats so the
``--progress-deadline`` watchdog kills only wedged workers, never
slow-but-alive ones; ``--io-deadline`` bounds every protocol read/write;
``--spawn-retries`` retries failed spawns with capped seeded backoff and
``--quarantine-after`` benches a host after that many consecutive
crashes (the sweep degrades to the surviving shards); ``--speculate``
duplicates straggler trials on idle workers, first outcome wins. None of
these change results: every knob preserves byte-identity to serial.

When a run resumes from ``--journal``, corrupt journal lines are dropped
(their trials re-run) and surfaced as the ``journal_records_dropped``
count in both output modes. ``--artifact`` writes the fabric counters
and gauges as a ``repro.obs`` JSONL artifact for ``mm-report fabric``.

Exit codes: ``0`` — sweep complete (every trial produced an outcome);
``1`` — incomplete (crashed trials remain after retries/degradation);
``2`` — usage or toolkit error before/while running.

``worker`` is the fabric worker entry point: it speaks the wire protocol
on stdin/stdout and is what the subprocess and remote backends launch.
Never run it by hand — it expects a coordinator on the other end.

``ship`` copies a recorded corpus to a destination as site manifests
plus the missing-blob delta against the destination's content-addressed
store (``<DEST>/.cas``): blobs the destination already holds are never
re-transferred.
"""

from __future__ import annotations

import json
import os
import sys
from typing import List, Optional

from repro.cli.common import CliError, ShellSpec, main_wrapper
from repro.fabric.backend import (
    LocalBackend,
    RemoteBackend,
    SubprocessBackend,
)
from repro.fabric.coordinator import run_fabric
from repro.fabric.sync import ship_corpus
from repro.fabric.worker import FactorySpec, worker_loop
from repro.measure.journal import run_key as make_run_key
from repro.measure.runner import DEFAULT_TRIAL_TIMEOUT

USAGE = ("usage: mm-fabric run --factory MOD:ATTR --trials N [options] "
         "| mm-fabric worker | mm-fabric ship SRC DEST [--json]")


def run(argv: List[str], specs: List[ShellSpec]) -> int:
    if specs:
        raise CliError("mm-fabric cannot nest inside other shells")
    if not argv:
        raise CliError(USAGE)
    command, rest = argv[0], argv[1:]
    if command == "run":
        return _run(rest)
    if command == "worker":
        return _worker(rest)
    if command == "ship":
        return _ship(rest)
    raise CliError(USAGE)


def _run(argv: List[str]) -> int:
    factory_spec: Optional[str] = None
    kwargs_json = "{}"
    trials: Optional[int] = None
    shards = 2
    backend_name = "subprocess"
    hosts: List[str] = []
    ssh = "ssh"
    timeout = DEFAULT_TRIAL_TIMEOUT
    retries = 1
    worker_retries = 1
    journal: Optional[str] = None
    key: Optional[str] = None
    capture_digest = False
    progress_deadline: Optional[float] = None
    heartbeat: Optional[float] = None
    io_deadline: Optional[float] = None
    spawn_retries = 2
    quarantine_after = 3
    speculate = False
    speculate_copies = 1
    artifact: Optional[str] = None
    as_json = False
    rest = list(argv)
    while rest:
        flag = rest.pop(0)
        if flag == "--factory":
            factory_spec = rest.pop(0)
        elif flag == "--kwargs":
            kwargs_json = rest.pop(0)
        elif flag == "--trials":
            trials = int(rest.pop(0))
        elif flag == "--shards":
            shards = int(rest.pop(0))
        elif flag == "--backend":
            backend_name = rest.pop(0)
        elif flag == "--host":
            hosts.append(rest.pop(0))
        elif flag == "--ssh":
            ssh = rest.pop(0)
        elif flag == "--timeout":
            timeout = float(rest.pop(0))
        elif flag == "--retries":
            retries = int(rest.pop(0))
        elif flag == "--worker-retries":
            worker_retries = int(rest.pop(0))
        elif flag == "--journal":
            journal = rest.pop(0)
        elif flag == "--run-key":
            key = rest.pop(0)
        elif flag == "--capture-digest":
            capture_digest = True
        elif flag == "--progress-deadline":
            progress_deadline = float(rest.pop(0))
        elif flag == "--heartbeat":
            heartbeat = float(rest.pop(0))
        elif flag == "--io-deadline":
            io_deadline = float(rest.pop(0))
        elif flag == "--spawn-retries":
            spawn_retries = int(rest.pop(0))
        elif flag == "--quarantine-after":
            quarantine_after = int(rest.pop(0))
        elif flag == "--speculate":
            speculate = True
        elif flag == "--speculate-copies":
            speculate_copies = int(rest.pop(0))
        elif flag == "--artifact":
            artifact = rest.pop(0)
        elif flag == "--json":
            as_json = True
        else:
            raise CliError(f"{USAGE}\nunknown option {flag!r}")
    if factory_spec is None or trials is None:
        raise CliError(USAGE)
    try:
        kwargs = json.loads(kwargs_json)
    except json.JSONDecodeError as exc:
        raise CliError(f"--kwargs is not valid JSON: {exc}")
    if not isinstance(kwargs, dict):
        raise CliError("--kwargs must be a JSON object")
    spec = FactorySpec(factory_spec, kwargs)
    if key is None and journal is not None:
        key = make_run_key(factory=factory_spec, kwargs=kwargs_json,
                           trials=trials, timeout=timeout)

    if backend_name == "local":
        backend = LocalBackend(spec.resolve())
    elif backend_name == "subprocess":
        backend = SubprocessBackend(spec)
    elif backend_name == "remote":
        if not hosts:
            raise CliError("--backend remote needs at least one --host")
        # The SSH-shaped stub drives one host; shard-per-host fan-out
        # rides on the same protocol (DESIGN.md §13).
        backend = RemoteBackend(hosts[0], spec,
                                ssh_command=ssh.split())
    else:
        raise CliError(f"unknown backend {backend_name!r} "
                       f"(expected local, subprocess, or remote)")

    result = run_fabric(
        backend, trials, shards=shards, timeout=timeout,
        retries=retries, worker_retries=worker_retries,
        journal=journal, run_key=key, capture_digest=capture_digest,
        progress_deadline=progress_deadline, heartbeat=heartbeat,
        io_deadline=io_deadline, spawn_retries=spawn_retries,
        quarantine_after=quarantine_after, speculate=speculate,
        speculate_copies=speculate_copies,
    )
    counters = {name: c.value
                for name, c in sorted(result.metrics.counters.items())}
    gauges = {name: g.value
              for name, g in sorted(result.metrics.gauges.items())}
    dropped = counters.get("fabric.journal_records_dropped", 0)
    if artifact is not None:
        from repro.obs import write_artifact

        write_artifact(artifact, registry=result.metrics, meta={
            "tool": "mm-fabric", "factory": factory_spec,
            "trials": trials, "shards": shards, "backend": backend_name,
        })
    if as_json:
        print(json.dumps({
            "sweep": result.to_dict(),
            "fabric": {"counters": counters, "gauges": gauges},
            "journal_records_dropped": dropped,
            "quarantined_hosts": dict(result.quarantined_hosts or {}),
        }, indent=2, sort_keys=True))
    else:
        counts = result.counts()
        print(f"fabric: {trials} trial(s) over {result.shards} shard(s), "
              f"backend {backend_name}")
        print("outcomes: " + "  ".join(
            f"{state}={counts[state]}" for state in
            ("ok", "retried", "quarantined", "crashed")))
        if result.digest is not None:
            print(f"combined digest: {result.digest}")
        rate = gauges.get("fabric.trials_per_s")
        if rate:
            print(f"throughput: {rate:.2f} trials/s "
                  f"({counters.get('fabric.workers_spawned', 0)} worker(s), "
                  f"{counters.get('fabric.worker_crashes', 0)} crash(es))")
        if dropped:
            print(f"journal: dropped {dropped} corrupt record(s) on "
                  f"resume (their trials were re-run)")
        if result.quarantined_hosts:
            benched = ", ".join(
                f"{host} ({crashes} crash(es))" for host, crashes in
                sorted(result.quarantined_hosts.items()))
            print(f"quarantined hosts: {benched}")
    return 0 if result.complete else 1


def _worker(argv: List[str]) -> int:
    if argv:
        raise CliError(f"{USAGE}\nworker takes no arguments")
    # The protocol owns the real stdout. Point fd 1 at stderr so any
    # stray print inside scenario code lands in the log, not the frame
    # stream (the magic check would catch it, but loudly and fatally).
    protocol_out = os.fdopen(os.dup(1), "wb")
    os.dup2(2, 1)
    return worker_loop(sys.stdin.buffer, protocol_out)


def _ship(argv: List[str]) -> int:
    as_json = False
    positional: List[str] = []
    rest = list(argv)
    while rest:
        flag = rest.pop(0)
        if flag == "--json":
            as_json = True
        elif flag.startswith("-"):
            raise CliError(f"{USAGE}\nunknown option {flag!r}")
        else:
            positional.append(flag)
    if len(positional) != 2:
        raise CliError(USAGE)
    source, dest = positional
    if not os.path.isdir(source):
        raise CliError(f"not a corpus directory: {source!r}")
    report = ship_corpus(source, dest)
    if as_json:
        print(json.dumps({
            "sites": report.sites,
            "refs": report.refs,
            "blobs_transferred": report.blobs_transferred,
            "blobs_deduped": report.blobs_deduped,
            "bytes_transferred": report.bytes_transferred,
        }, indent=2, sort_keys=True))
    else:
        print(f"shipped {report.sites} site(s) to {dest}")
        print(f"blobs: {report.blobs_transferred} transferred "
              f"({report.bytes_transferred} bytes), "
              f"{report.blobs_deduped} already present")
    return 0


main = main_wrapper(run)

if __name__ == "__main__":
    sys.exit(main())
